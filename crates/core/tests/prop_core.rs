//! Property-based tests for the inference engine's load-bearing math.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbp_core::delta::{delta_entropy, merge_delta, vertex_move_delta, DeltaScratch};
use sbp_core::mcmc::mh_sweep;
use sbp_core::merge::{apply_merges, MergeCandidate};
use sbp_core::{Blockmodel, StorageKind};
use sbp_graph::Graph;

/// (num vertices, weighted edges, assignment, num blocks).
type GraphAssignment = (usize, Vec<(u32, u32, i64)>, Vec<u32>, usize);

/// Random small graph + a valid assignment into `c` blocks.
fn arb_graph_and_assignment() -> impl Strategy<Value = GraphAssignment> {
    (4usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1i64..4), 1..80);
        (2usize..5).prop_flat_map(move |c| {
            let assignment = proptest::collection::vec(0..c as u32, n);
            (Just(n), edges.clone(), assignment, Just(c))
        })
    })
}

proptest! {
    /// The sparse ΔS for ANY vertex move equals a full entropy recompute.
    #[test]
    fn sparse_move_delta_equals_recompute(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        vsel in 0usize..24,
        tosel in 0u32..5,
    ) {
        let g = Graph::from_edges(n, edges);
        let bm = Blockmodel::from_assignment(&g, assignment, c);
        let v = (vsel % n) as u32;
        let to = tosel % c as u32;
        let d = vertex_move_delta(&g, &bm, v, to);
        let ds = delta_entropy(&bm, &d);
        let mut after = bm.clone();
        after.move_vertex(&g, v, to);
        let exact = after.entropy() - bm.entropy();
        prop_assert!((ds - exact).abs() < 1e-8, "sparse {ds} vs exact {exact}");
    }

    /// The sparse ΔS for ANY block merge equals a full recompute.
    #[test]
    fn sparse_merge_delta_equals_recompute(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        from_sel in 0u32..5,
        to_sel in 0u32..5,
    ) {
        let g = Graph::from_edges(n, edges);
        let bm = Blockmodel::from_assignment(&g, assignment.clone(), c);
        let from = from_sel % c as u32;
        let to = to_sel % c as u32;
        prop_assume!(from != to);
        let d = merge_delta(&bm, from, to);
        let ds = delta_entropy(&bm, &d);
        let merged: Vec<u32> = assignment
            .iter()
            .map(|&b| if b == from { to } else { b })
            .collect();
        let after = Blockmodel::from_assignment(&g, merged, c);
        let exact = after.entropy() - bm.entropy();
        prop_assert!((ds - exact).abs() < 1e-8, "sparse {ds} vs exact {exact}");
    }

    /// Incremental maintenance == from-scratch rebuild after any move
    /// sequence (the EDiSt exactness invariant).
    #[test]
    fn blockmodel_invariant_under_random_moves(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        moves in proptest::collection::vec((0usize..24, 0u32..5), 0..30),
    ) {
        let g = Graph::from_edges(n, edges);
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        for (vsel, tosel) in moves {
            bm.move_vertex(&g, (vsel % n) as u32, tosel % c as u32);
        }
        prop_assert!(bm.validate(&g).is_ok());
    }

    /// The final state after applying the same move set is independent of
    /// application order — the property EDiSt's correctness rests on.
    #[test]
    fn move_application_order_does_not_matter(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        targets in proptest::collection::vec(0u32..5, 24),
    ) {
        let g = Graph::from_edges(n, edges);
        // One final target per vertex (vertex-disjoint moves, as in EDiSt).
        let finals: Vec<u32> = (0..n).map(|v| targets[v % targets.len()] % c as u32).collect();
        let mut fwd = Blockmodel::from_assignment(&g, assignment.clone(), c);
        for v in 0..n as u32 {
            fwd.move_vertex(&g, v, finals[v as usize]);
        }
        let mut rev = Blockmodel::from_assignment(&g, assignment, c);
        for v in (0..n as u32).rev() {
            rev.move_vertex(&g, v, finals[v as usize]);
        }
        prop_assert_eq!(fwd.assignment(), rev.assignment());
        prop_assert!((fwd.entropy() - rev.entropy()).abs() < 1e-9);
    }

    /// apply_merges is insensitive to the input order of candidates
    /// (it sorts internally with a total order) — the EDiSt determinism
    /// requirement for allgathered candidate lists.
    #[test]
    fn apply_merges_order_insensitive(
        (n, edges, _assignment, _c) in arb_graph_and_assignment(),
        pairs in proptest::collection::vec((0u32..24, 0u32..24, -10.0f64..0.0), 1..12),
        target in 0usize..8,
    ) {
        let g = Graph::from_edges(n, edges);
        let bm = Blockmodel::identity(&g);
        let cands: Vec<MergeCandidate> = pairs
            .iter()
            .filter(|(a, b, _)| (*a as usize) < n && (*b as usize) < n && a != b)
            .map(|&(block, tgt, delta_s)| MergeCandidate { block, target: tgt, delta_s })
            .collect();
        let mut shuffled = cands.clone();
        shuffled.reverse();
        let a = apply_merges(&bm, cands, target);
        let b = apply_merges(&bm, shuffled, target);
        prop_assert_eq!(a, b);
    }

    /// Entropy is label-invariant: permuting block labels leaves S fixed.
    #[test]
    fn entropy_label_invariant(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
    ) {
        let g = Graph::from_edges(n, edges);
        let bm = Blockmodel::from_assignment(&g, assignment.clone(), c);
        // Rotate labels by one.
        let rotated: Vec<u32> = assignment.iter().map(|&b| (b + 1) % c as u32).collect();
        let bm2 = Blockmodel::from_assignment(&g, rotated, c);
        prop_assert!((bm.entropy() - bm2.entropy()).abs() < 1e-9);
        prop_assert!(
            (bm.description_length() - bm2.description_length()).abs() < 1e-9
        );
    }

    /// MH sweeps never corrupt the blockmodel, whatever the graph.
    #[test]
    fn mh_sweep_preserves_invariants(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, edges);
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        let vertices: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..3 {
            mh_sweep(&g, &mut bm, &vertices, 3.0, &mut rng);
        }
        prop_assert!(bm.validate(&g).is_ok());
    }

    /// Compaction preserves the partition structure (same cells, denser
    /// labels) and therefore the entropy.
    #[test]
    fn compaction_preserves_entropy(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
    ) {
        let g = Graph::from_edges(n, edges);
        let bm = Blockmodel::from_assignment(&g, assignment, c);
        let compact = bm.compacted(&g);
        prop_assert!(compact.num_blocks() <= c);
        prop_assert!((bm.entropy() - compact.entropy()).abs() < 1e-9);
    }

    /// The dense and sparse matrix representations agree on `get` and
    /// `entropy` for any graph and assignment — the adaptive storage layer
    /// must be observationally invisible.
    #[test]
    fn dense_and_sparse_agree_on_get_and_entropy(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
    ) {
        let g = Graph::from_edges(n, edges);
        let dense = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Dense);
        let sparse = Blockmodel::from_assignment_with(
            &g, assignment, c, StorageKind::Sparse);
        prop_assert_eq!(dense.storage_kind(), StorageKind::Dense);
        prop_assert_eq!(sparse.storage_kind(), StorageKind::Sparse);
        for r in 0..c as u32 {
            for col in 0..c as u32 {
                prop_assert_eq!(dense.get(r, col), sparse.get(r, col), "cell ({}, {})", r, col);
            }
            prop_assert_eq!(dense.d_out(r), sparse.d_out(r));
            prop_assert_eq!(dense.d_in(r), sparse.d_in(r));
        }
        prop_assert!((dense.entropy() - sparse.entropy()).abs() < 1e-9);
        prop_assert!(
            (dense.description_length() - sparse.description_length()).abs() < 1e-9
        );
    }

    /// Both representations produce the same ΔS for any vertex move and
    /// any block merge (within floating-point tolerance).
    #[test]
    fn dense_and_sparse_agree_on_delta_entropy(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        vsel in 0usize..24,
        tosel in 0u32..5,
        merge_from in 0u32..5,
        merge_to in 0u32..5,
    ) {
        let g = Graph::from_edges(n, edges);
        let dense = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Dense);
        let sparse = Blockmodel::from_assignment_with(
            &g, assignment, c, StorageKind::Sparse);
        let v = (vsel % n) as u32;
        let to = tosel % c as u32;
        let dd = vertex_move_delta(&g, &dense, v, to);
        let ds = vertex_move_delta(&g, &sparse, v, to);
        prop_assert!(
            (delta_entropy(&dense, &dd) - delta_entropy(&sparse, &ds)).abs() < 1e-9
        );
        let (mf, mt) = (merge_from % c as u32, merge_to % c as u32);
        if mf != mt {
            let dd = merge_delta(&dense, mf, mt);
            let ds = merge_delta(&sparse, mf, mt);
            prop_assert!(
                (delta_entropy(&dense, &dd) - delta_entropy(&sparse, &ds)).abs() < 1e-9
            );
        }
    }

    /// After any shared move sequence, both representations hold identical
    /// state: same assignment, same cells, same entropy, both valid.
    #[test]
    fn dense_and_sparse_agree_under_move_sequences(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        moves in proptest::collection::vec((0usize..24, 0u32..5), 0..30),
    ) {
        let g = Graph::from_edges(n, edges);
        let mut dense = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Dense);
        let mut sparse = Blockmodel::from_assignment_with(
            &g, assignment, c, StorageKind::Sparse);
        for (vsel, tosel) in moves {
            let (v, to) = ((vsel % n) as u32, tosel % c as u32);
            dense.move_vertex(&g, v, to);
            sparse.move_vertex(&g, v, to);
        }
        prop_assert_eq!(dense.assignment(), sparse.assignment());
        for r in 0..c as u32 {
            for col in 0..c as u32 {
                prop_assert_eq!(dense.get(r, col), sparse.get(r, col), "cell ({}, {})", r, col);
            }
        }
        prop_assert!((dense.entropy() - sparse.entropy()).abs() < 1e-9);
        prop_assert!(dense.validate(&g).is_ok());
        prop_assert!(sparse.validate(&g).is_ok());
    }

    /// Canonical-line tentpole, part 1: building the same logical block
    /// matrix through different move histories (a fresh rebuild vs an
    /// arbitrary detour-and-return move sequence) yields **identical
    /// canonical line iteration** — exact sequences, not sorted-equal —
    /// plus bit-identical entropy sums and bit-identical ΔS under
    /// `DeltaScratch`. This is the property that extends the sharded ≡
    /// monolithic EDiSt guarantee beyond dense storage.
    #[test]
    fn canonical_iteration_is_move_history_invariant(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        detours in proptest::collection::vec((0usize..24, 0u32..5), 1..25),
        probe in (0usize..24, 0u32..5),
    ) {
        let g = Graph::from_edges(n, edges);
        let fresh = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Sparse);
        // Same logical state, different storage history: detour every
        // scripted vertex through a temporary block and back home.
        let mut detoured = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Sparse);
        for &(vsel, tosel) in &detours {
            let v = (vsel % n) as u32;
            let home = detoured.block_of(v);
            detoured.move_vertex(&g, v, tosel % c as u32);
            detoured.move_vertex(&g, v, home);
        }
        prop_assert_eq!(fresh.assignment(), detoured.assignment());
        for line in 0..c as u32 {
            let a: Vec<_> = fresh.row_iter(line).collect();
            let b: Vec<_> = detoured.row_iter(line).collect();
            prop_assert_eq!(&a, &b, "row {} depends on move history", line);
            prop_assert!(a.is_sorted(), "row {} not canonical", line);
            let a: Vec<_> = fresh.col_iter(line).collect();
            let b: Vec<_> = detoured.col_iter(line).collect();
            prop_assert_eq!(&a, &b, "col {} depends on move history", line);
            prop_assert!(a.is_sorted(), "col {} not canonical", line);
        }
        prop_assert_eq!(fresh.entropy().to_bits(), detoured.entropy().to_bits());
        prop_assert_eq!(
            fresh.description_length().to_bits(),
            detoured.description_length().to_bits()
        );
        // ΔS and the Hastings correction consume line iteration; with the
        // canonical order they must agree to the bit, not within an
        // epsilon.
        let (v, to) = ((probe.0 % n) as u32, probe.1 % c as u32);
        let mut s1 = DeltaScratch::new();
        let mut s2 = DeltaScratch::new();
        s1.vertex_move_delta(&g, &fresh, v, to);
        s2.vertex_move_delta(&g, &detoured, v, to);
        prop_assert_eq!(
            s1.delta_entropy(&fresh).to_bits(),
            s2.delta_entropy(&detoured).to_bits()
        );
        prop_assert_eq!(
            s1.hastings_correction(&g, &fresh, v).to_bits(),
            s2.hastings_correction(&g, &detoured, v).to_bits()
        );
    }

    /// Canonical-line tentpole, part 2: sparse line iteration reproduces
    /// the dense row/column scan order element for element, and the f64
    /// entropy sum is therefore bit-identical across representations.
    #[test]
    fn canonical_sparse_iteration_matches_dense_line_order(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
    ) {
        let g = Graph::from_edges(n, edges);
        let dense = Blockmodel::from_assignment_with(
            &g, assignment.clone(), c, StorageKind::Dense);
        let sparse = Blockmodel::from_assignment_with(
            &g, assignment, c, StorageKind::Sparse);
        for line in 0..c as u32 {
            prop_assert_eq!(
                dense.row_iter(line).collect::<Vec<_>>(),
                sparse.row_iter(line).collect::<Vec<_>>(),
                "row {} order differs across representations", line
            );
            prop_assert_eq!(
                dense.col_iter(line).collect::<Vec<_>>(),
                sparse.col_iter(line).collect::<Vec<_>>(),
                "col {} order differs across representations", line
            );
        }
        prop_assert_eq!(dense.entropy().to_bits(), sparse.entropy().to_bits());
        prop_assert_eq!(
            dense.description_length().to_bits(),
            sparse.description_length().to_bits()
        );
    }

    /// SIMD ≡ scalar to the bit on the proptest-sized graphs: every
    /// vertex-move ΔS, Hastings correction, and entropy sum produced by
    /// the production (runtime-dispatched) kernels equals the forced-
    /// scalar twin exactly. On non-AVX2 hardware both paths are scalar
    /// and the property holds trivially.
    #[test]
    fn simd_and_scalar_paths_are_bit_identical(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        probes in proptest::collection::vec((0usize..24, 0u32..5), 1..12),
    ) {
        let g = Graph::from_edges(n, edges);
        for kind in [StorageKind::Dense, StorageKind::Sparse] {
            let bm = Blockmodel::from_assignment_with(
                &g, assignment.clone(), c, kind);
            prop_assert_eq!(bm.entropy().to_bits(), bm.entropy_scalar().to_bits());
            let mut s = DeltaScratch::new();
            for &(vsel, tosel) in &probes {
                let (v, to) = ((vsel % n) as u32, tosel % c as u32);
                s.vertex_move_delta(&g, &bm, v, to);
                prop_assert_eq!(
                    s.delta_entropy(&bm).to_bits(),
                    s.delta_entropy_scalar(&bm).to_bits()
                );
                prop_assert_eq!(
                    s.hastings_correction(&g, &bm, v).to_bits(),
                    s.hastings_correction_scalar(&g, &bm, v).to_bits()
                );
            }
        }
    }

    /// The reusable scratch never leaks state between proposals: a fresh
    /// scratch and a heavily reused one agree on every evaluation, under
    /// both representations.
    #[test]
    fn scratch_reuse_is_stateless(
        (n, edges, assignment, c) in arb_graph_and_assignment(),
        probes in proptest::collection::vec((0usize..24, 0u32..5), 1..20),
    ) {
        let g = Graph::from_edges(n, edges);
        for kind in [StorageKind::Dense, StorageKind::Sparse] {
            let bm = Blockmodel::from_assignment_with(
                &g, assignment.clone(), c, kind);
            let mut reused = DeltaScratch::new();
            for &(vsel, tosel) in &probes {
                let (v, to) = ((vsel % n) as u32, tosel % c as u32);
                reused.vertex_move_delta(&g, &bm, v, to);
                let ds_reused = reused.delta_entropy(&bm);
                let h_reused = reused.hastings_correction(&g, &bm, v);
                let mut fresh = DeltaScratch::new();
                fresh.vertex_move_delta(&g, &bm, v, to);
                let ds_fresh = fresh.delta_entropy(&bm);
                let h_fresh = fresh.hastings_correction(&g, &bm, v);
                prop_assert!((ds_reused - ds_fresh).abs() < 1e-12);
                prop_assert!((h_reused - h_fresh).abs() < 1e-12);
            }
        }
    }
}

/// Deterministic xorshift stream for the fixed-C SIMD identity fixtures
/// (independent of the rand shim's algorithm).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Random blocky graph with `2·C` vertices: community edges, cross noise,
/// a few self-loops and multi-arcs, labels covering all of `0..C`.
fn synth_graph(c: usize, seed: u64) -> (Graph, Vec<u32>) {
    let n = 2 * c;
    let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let assignment: Vec<u32> = (0..n).map(|v| (v % c) as u32).collect();
    let mut edges = Vec::new();
    for v in 0..n as u32 {
        // One intra-community edge per vertex, plus noise.
        let peer = (v + c as u32) % n as u32;
        edges.push((v, peer, 1 + (rng.next() % 4) as i64));
        if rng.next().is_multiple_of(3) {
            let u = (rng.next() % n as u64) as u32;
            edges.push((v, u, 1 + (rng.next() % 2) as i64));
        }
        if rng.next().is_multiple_of(17) {
            edges.push((v, v, 2));
        }
    }
    (Graph::from_edges(n, edges), assignment)
}

/// Satellite coverage: SIMD ≡ scalar `to_bits` equality for
/// delta_entropy (direct and cells paths), hastings, and entropy at
/// block counts spanning single-chunk dense (8, 64), multi-chunk dense
/// (169), and the sparse regime's dense-forced twin (512) — under both
/// storage representations.
#[test]
fn simd_bit_identity_at_fixed_block_counts() {
    for &c in &[8usize, 64, 169, 512] {
        for seed in 0..2u64 {
            let (g, assignment) = synth_graph(c, seed);
            let n = g.num_vertices();
            let mut rng = XorShift(seed | 1);
            for kind in [StorageKind::Dense, StorageKind::Sparse] {
                let bm = Blockmodel::from_assignment_with(&g, assignment.clone(), c, kind);
                assert_eq!(
                    bm.entropy().to_bits(),
                    bm.entropy_scalar().to_bits(),
                    "entropy C={c} seed={seed} kind={kind:?}"
                );
                let mut s = DeltaScratch::new();
                for _ in 0..12 {
                    let v = (rng.next() % n as u64) as u32;
                    let to = (rng.next() % c as u64) as u32;
                    s.vertex_move_delta(&g, &bm, v, to);
                    assert_eq!(
                        s.delta_entropy(&bm).to_bits(),
                        s.delta_entropy_scalar(&bm).to_bits(),
                        "move ΔS C={c} seed={seed} kind={kind:?} v={v} to={to}"
                    );
                    assert_eq!(
                        s.hastings_correction(&g, &bm, v).to_bits(),
                        s.hastings_correction_scalar(&g, &bm, v).to_bits(),
                        "hastings C={c} seed={seed} kind={kind:?} v={v} to={to}"
                    );
                }
                for _ in 0..6 {
                    let from = (rng.next() % c as u64) as u32;
                    let to = (rng.next() % c as u64) as u32;
                    if from == to {
                        continue;
                    }
                    s.merge_delta(&bm, from, to);
                    assert_eq!(
                        s.delta_entropy(&bm).to_bits(),
                        s.delta_entropy_scalar(&bm).to_bits(),
                        "merge ΔS C={c} seed={seed} kind={kind:?} {from}->{to}"
                    );
                }
            }
        }
    }
}

//! Precomputed natural logarithms of small integers.
//!
//! The ΔS kernel spends most of its time in `ln` calls: every affected
//! cell needs `ln(M_ij)` for its old and new weight, and the degree caches
//! need `ln(d)` on every move. Matrix entries and block degrees are
//! integer edge counts, and on real graphs the overwhelming majority are
//! small — so a one-time table of `ln(0..65536)` turns the transcendental
//! call into an L2-resident lookup. Values outside the table fall back to
//! `f64::ln`, bit-identical to the direct computation for every input
//! (the table itself is filled with `(i as f64).ln()`).

use sbp_graph::Weight;
use std::sync::OnceLock;

/// Number of precomputed entries; weights in `[0, TABLE_SIZE)` are
/// table-resident (the SIMD kernels use this bound to range-check their
/// gathered indices).
pub(crate) const TABLE_SIZE: usize = 1 << 16;

/// The shared log table — exposed crate-wide so the SIMD kernels can
/// gather from it directly.
pub(crate) fn table() -> &'static [f64; TABLE_SIZE] {
    static TABLE: OnceLock<Box<[f64; TABLE_SIZE]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f64; TABLE_SIZE];
        for (i, slot) in t.iter_mut().enumerate().skip(1) {
            *slot = (i as f64).ln();
        }
        t.into_boxed_slice()
            .try_into()
            .expect("table has the declared size")
    })
}

/// `ln(w)` for a positive integer weight, `0.0` for `w <= 0` (the callers'
/// convention for empty blocks). Table lookup below 2¹⁶, `f64::ln` above.
#[inline]
pub fn ln_int(w: Weight) -> f64 {
    if (0..TABLE_SIZE as Weight).contains(&w) {
        table()[w as usize]
    } else if w > 0 {
        (w as f64).ln()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_ln() {
        for w in [1i64, 2, 3, 100, 65535, 65536, 1 << 40] {
            assert_eq!(ln_int(w), (w as f64).ln(), "w={w}");
        }
    }

    #[test]
    fn nonpositive_is_zero() {
        assert_eq!(ln_int(0), 0.0);
        assert_eq!(ln_int(-5), 0.0);
    }
}

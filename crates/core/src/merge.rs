//! The agglomerative block-merge phase (paper Alg. 1).
//!
//! Every block proposes `x` candidate merges; the globally best candidates
//! are applied greedily until the block count is reduced by the requested
//! amount. Merge chains (`a→b` while `b→c`) are resolved with a union-find
//! pointer scheme — the paper's §III-A optimization (d).
//!
//! `propose_merges` accepts an explicit block subset so EDiSt can compute
//! proposals for only its owned blocks (Alg. 4 line 4) and allgather the
//! results; `apply_merges` is deterministic given the combined candidate
//! list, which is what keeps every rank's blockmodel bit-identical. The
//! per-candidate ΔS values feeding the total order come from weighted
//! scans and delta kernels over canonical matrix lines, so candidate
//! ranking — and therefore the applied merge set — is identical on every
//! replica in the sparse regime too, not just on dense storage.

use crate::blockmodel::Blockmodel;
use crate::delta::with_scratch;
use crate::propose::propose_for_block;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A block's best merge proposal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeCandidate {
    /// The block to be absorbed.
    pub block: u32,
    /// The block it merges into.
    pub target: u32,
    /// Change in entropy if applied in isolation (model-complexity terms
    /// are identical across candidates at fixed block count, so ranking by
    /// ΔS equals ranking by ΔDL).
    pub delta_s: f64,
}

impl sbp_mpi::Wire for MergeCandidate {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        self.block.wire_write(buf);
        self.target.wire_write(buf);
        self.delta_s.wire_write(buf);
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, sbp_graph::frame::DecodeError> {
        Ok(MergeCandidate {
            block: u32::wire_read(buf, pos)?,
            target: u32::wire_read(buf, pos)?,
            delta_s: f64::wire_read(buf, pos)?,
        })
    }
}

/// Computes the best-of-`proposals_per_block` merge candidate for every
/// block in `blocks` (paper Alg. 1 lines 2–9 / Alg. 4 lines 3–14).
///
/// Proposals are evaluated in parallel across blocks; each block uses an
/// independent RNG stream derived from `seed`, so results are deterministic
/// regardless of thread scheduling. Each worker evaluates `ΔS` through its
/// thread-local [`crate::delta::DeltaScratch`], so the per-proposal path is
/// allocation-free.
pub fn propose_merges(
    bm: &Blockmodel,
    blocks: &[u32],
    proposals_per_block: usize,
    seed: u64,
) -> Vec<MergeCandidate> {
    let run = |&r: &u32| -> Option<MergeCandidate> {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1)));
        with_scratch(|scratch| {
            let mut best: Option<MergeCandidate> = None;
            for _ in 0..proposals_per_block {
                let s = propose_for_block(&mut rng, bm, r)?;
                debug_assert_ne!(s, r);
                scratch.merge_delta(bm, r, s);
                let ds = scratch.delta_entropy(bm);
                if best.is_none_or(|b| ds < b.delta_s) {
                    best = Some(MergeCandidate {
                        block: r,
                        target: s,
                        delta_s: ds,
                    });
                }
            }
            best
        })
    };
    // Parallelism only pays off on non-trivial block counts.
    if blocks.len() >= 64 {
        blocks.par_iter().filter_map(&run).collect()
    } else {
        blocks.iter().filter_map(run).collect()
    }
}

/// Applies the best `target_merges` merges from `candidates` (paper Alg. 1
/// lines 11–15), resolving chains with union-find. Returns the new dense
/// assignment and block count.
///
/// Deterministic: candidates are sorted by `(ΔS, block, target)` with a
/// total order, so every EDiSt rank applies the identical merge set.
pub fn apply_merges(
    bm: &Blockmodel,
    mut candidates: Vec<MergeCandidate>,
    target_merges: usize,
) -> (Vec<u32>, usize) {
    candidates.sort_by(|a, b| {
        a.delta_s
            .total_cmp(&b.delta_s)
            .then(a.block.cmp(&b.block))
            .then(a.target.cmp(&b.target))
    });
    let n_blocks = bm.num_blocks();
    let mut parent: Vec<u32> = (0..n_blocks as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp; // path halving
            x = gp;
        }
        x
    }

    let mut merged = 0usize;
    for cand in &candidates {
        if merged >= target_merges {
            break;
        }
        let a = find(&mut parent, cand.block);
        let b = find(&mut parent, cand.target);
        if a != b {
            parent[a as usize] = b;
            merged += 1;
        }
    }

    // Relabel roots densely, ascending by root id (deterministic).
    let mut label = vec![u32::MAX; n_blocks];
    let mut next = 0u32;
    for blk in 0..n_blocks as u32 {
        let root = find(&mut parent, blk);
        if label[root as usize] == u32::MAX {
            label[root as usize] = next;
            next += 1;
        }
    }
    let assignment: Vec<u32> = bm
        .assignment()
        .iter()
        .map(|&b| {
            let root = find(&mut parent, b);
            label[root as usize]
        })
        .collect();
    (assignment, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn proposals_cover_requested_blocks() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let cands = propose_merges(&bm, &[0, 2, 4], 5, 7);
        assert_eq!(cands.len(), 3);
        let blocks: Vec<u32> = cands.iter().map(|c| c.block).collect();
        assert_eq!(blocks, vec![0, 2, 4]);
        for c in &cands {
            assert_ne!(c.block, c.target);
            assert!(c.delta_s.is_finite());
        }
    }

    #[test]
    fn proposals_deterministic_given_seed() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let blocks: Vec<u32> = (0..6).collect();
        let a = propose_merges(&bm, &blocks, 10, 42);
        let b = propose_merges(&bm, &blocks, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn proposals_split_across_subsets_match_full_run() {
        // The EDiSt invariant: computing candidates for disjoint owned
        // subsets and concatenating equals the single-node computation.
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let full = propose_merges(&bm, &[0, 1, 2, 3, 4, 5], 10, 99);
        let mut split = propose_merges(&bm, &[0, 2, 4], 10, 99);
        split.extend(propose_merges(&bm, &[1, 3, 5], 10, 99));
        split.sort_by_key(|c| c.block);
        assert_eq!(full, split);
    }

    #[test]
    fn apply_merges_halves_block_count() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let cands = propose_merges(&bm, &[0, 1, 2, 3, 4, 5], 10, 1);
        let (assignment, c) = apply_merges(&bm, cands, 3);
        assert_eq!(c, 3);
        assert_eq!(assignment.len(), 6);
        assert!(assignment.iter().all(|&b| b < 3));
    }

    #[test]
    fn apply_merges_resolves_chains() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        // Force a chain: 0→1, 1→2 : both applied, ending with {0,1,2} fused.
        let cands = vec![
            MergeCandidate {
                block: 0,
                target: 1,
                delta_s: -2.0,
            },
            MergeCandidate {
                block: 1,
                target: 2,
                delta_s: -1.0,
            },
        ];
        let (assignment, c) = apply_merges(&bm, cands, 2);
        assert_eq!(c, 4);
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
    }

    #[test]
    fn apply_merges_skips_cycles_without_counting() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        // 0→1 then 1→0 is a cycle; the second must be skipped and the next
        // candidate applied instead.
        let cands = vec![
            MergeCandidate {
                block: 0,
                target: 1,
                delta_s: -3.0,
            },
            MergeCandidate {
                block: 1,
                target: 0,
                delta_s: -2.0,
            },
            MergeCandidate {
                block: 4,
                target: 5,
                delta_s: -1.0,
            },
        ];
        let (assignment, c) = apply_merges(&bm, cands, 2);
        assert_eq!(c, 4);
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[4], assignment[5]);
        assert_ne!(assignment[0], assignment[4]);
    }

    #[test]
    fn apply_zero_merges_is_identity_relabel() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let (assignment, c) = apply_merges(&bm, vec![], 0);
        assert_eq!(c, 6);
        assert_eq!(assignment, (0..6u32).collect::<Vec<_>>());
    }

    #[test]
    fn exhaustive_best_merge_targets_stay_within_cliques() {
        // For every singleton block of a two-clique graph, the exact best
        // merge target (by ΔS over all alternatives) lies inside its own
        // clique — the signal the merge phase exploits.
        use crate::delta::{delta_entropy, merge_delta};
        let k = 4u32;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k + i, k + j, 1));
                }
            }
        }
        edges.push((0, k, 1));
        let g = Graph::from_edges(2 * k as usize, edges);
        let bm = Blockmodel::identity(&g);
        for r in 0..2 * k {
            let best = (0..2 * k)
                .filter(|&s| s != r)
                .min_by(|&a, &b| {
                    let da = delta_entropy(&bm, &merge_delta(&bm, r, a));
                    let db = delta_entropy(&bm, &merge_delta(&bm, r, b));
                    da.total_cmp(&db)
                })
                .expect("candidates exist");
            let same_clique = (r < k) == (best < k);
            assert!(same_clique, "block {r} preferred cross-clique merge {best}");
        }
    }
}

//! Sparse change-in-entropy computation (paper §III-A optimization c) with
//! a **zero-allocation hot path**.
//!
//! Moving a vertex (or merging a block) only changes matrix cells lying in
//! rows `{from, to}` and columns `{from, to}` of the blockmodel, plus the
//! four block degrees. `ΔS` is therefore computed by re-evaluating the
//! entropy terms of exactly those lines under a *cell delta*, never
//! touching the rest of the matrix. Equality with a full recompute is
//! enforced by property tests.
//!
//! The MCMC inner loop evaluates one delta per proposal — millions per
//! inference run — so this module is built around [`DeltaScratch`], a
//! reusable per-thread buffer set. A proposal evaluation performs **no
//! heap allocation**, and the delta is kept in the representation that
//! matches the blockmodel's storage:
//!
//! * **dense storage** → four per-line delta arrays indexed directly by
//!   block id (written O(deg(v)), reset O(deg(v)) via a touched list).
//!   The ΔS kernel walks the four contiguous matrix lines and reads the
//!   matching delta slot — no searches, no hashing;
//! * **sparse storage** → a sorted small vector of `(cell, delta)`
//!   entries; the kernel snapshots the nonzero cells of the four affected
//!   lines into a reusable buffer and merges the delta by binary search.
//!   Because line iteration is canonical (ascending block id — see
//!   [`crate::line`]), the snapshot order, and therefore the f64
//!   summation order of every ΔS, is a pure function of the logical
//!   blockmodel state: two replicas holding the same integers produce
//!   bit-identical ΔS values regardless of how their storage was built.
//!
//! The free functions ([`vertex_move_delta`], [`delta_entropy`], …) remain
//! as allocating wrappers for tests and benchmarks; they use the sorted
//! representation regardless of storage and borrow the thread-local
//! scratch for intermediate buffers.
//!
//! Degree logarithms come from the blockmodel's incrementally maintained
//! cache ([`Blockmodel::ln_d_out`]/[`ln_d_in`](Blockmodel::ln_d_in)) and
//! integer `ln M_ij` values from [`crate::lntab`], so each affected cell
//! costs a table lookup instead of three `ln` calls.

use crate::blockmodel::Blockmodel;
use crate::lntab::ln_int;
use crate::simd::{self, DmSource, HastingsInputs, LaneFix};
use sbp_graph::{Graph, Vertex, Weight};
use std::cell::RefCell;

#[inline]
fn pack(r: u32, c: u32) -> u64 {
    ((r as u64) << 32) | c as u64
}

#[inline]
fn unpack(k: u64) -> (u32, u32) {
    ((k >> 32) as u32, k as u32)
}

/// −m·(ln m − ln_deg_sum); callers guarantee `m > 0`. Shared with the
/// SIMD kernels ([`crate::simd`]), whose vector bodies replicate this op
/// sequence lane-wise.
#[inline]
pub(crate) fn term(m: Weight, ln_deg_sum: f64) -> f64 {
    -(m as f64) * (ln_int(m) - ln_deg_sum)
}

/// A sparse description of how a vertex move or block merge changes the
/// blockmodel: per-cell edge-count deltas (all cells lie in rows/columns
/// `{from, to}`) plus the degree mass shifted from `from` to `to`.
///
/// Cell deltas are stored as a sorted vector keyed by the packed
/// `(row, col)` pair — point lookups are a binary search over a handful of
/// entries, iteration is a linear scan, and reuse across proposals needs
/// only a `clear()`.
#[derive(Clone, Debug, Default)]
pub struct LineDelta {
    /// Source block.
    pub from: u32,
    /// Destination block.
    pub to: u32,
    /// Sorted `(packed cell, delta)` entries. Opposite-sign contributions
    /// may fold to an explicit zero entry; those are harmless to the
    /// kernels and filtered from the public iterator.
    cells: Vec<(u64, Weight)>,
    /// Out-degree mass moving from `from` to `to`.
    pub dout_shift: Weight,
    /// In-degree mass moving from `from` to `to`.
    pub din_shift: Weight,
}

impl LineDelta {
    /// Delta applied to cell `(r, c)` (zero when untouched).
    #[inline]
    pub fn cell_delta(&self, r: u32, c: u32) -> Weight {
        let k = pack(r, c);
        match self.cells.binary_search_by_key(&k, |e| e.0) {
            Ok(i) => self.cells[i].1,
            Err(_) => 0,
        }
    }

    /// Iterates the nonzero cell deltas as `((row, col), delta)`.
    pub fn cells(&self) -> impl Iterator<Item = ((u32, u32), Weight)> + '_ {
        self.cells
            .iter()
            .filter(|&&(_, d)| d != 0)
            .map(|&(k, d)| (unpack(k), d))
    }

    /// Number of cells with a nonzero delta.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.iter().filter(|&&(_, d)| d != 0).count()
    }

    /// Rebuilds `cells` from an unsorted contribution stream by
    /// sort-and-fold — O(n log n) regardless of how many distinct cells a
    /// high-degree vertex touches (a sorted per-cell insert would be
    /// quadratic for hubs at large block counts).
    fn fold_from(&mut self, raw: &mut [(u64, Weight)]) {
        raw.sort_unstable_by_key(|e| e.0);
        self.cells.clear();
        for &(k, d) in raw.iter() {
            match self.cells.last_mut() {
                Some(last) if last.0 == k => last.1 += d,
                _ => self.cells.push((k, d)),
            }
        }
    }
}

/// Which of the four dense delta arrays a touched index belongs to.
const ROW_FROM: u8 = 0;
const ROW_TO: u8 = 1;
const COL_FROM: u8 = 2;
const COL_TO: u8 = 3;

/// Direct-indexed delta representation for dense-storage blockmodels:
/// one array per affected line, plus a touched list for O(deg) reset.
/// Cells in rows `{from, to}` live in the row arrays (indexed by column);
/// cells in columns `{from, to}` with a row outside `{from, to}` live in
/// the column arrays (indexed by row) — mirroring the ΔS kernel's pass
/// structure so nothing is double-counted.
#[derive(Debug, Default)]
struct DenseDelta {
    row_from: Vec<Weight>,
    row_to: Vec<Weight>,
    col_from: Vec<Weight>,
    col_to: Vec<Weight>,
    touched: Vec<(u8, u32)>,
}

impl DenseDelta {
    /// Zeroes previously touched slots and grows the arrays to `c`.
    fn reset(&mut self, c: usize) {
        for &(which, idx) in &self.touched {
            let arr = match which {
                ROW_FROM => &mut self.row_from,
                ROW_TO => &mut self.row_to,
                COL_FROM => &mut self.col_from,
                _ => &mut self.col_to,
            };
            arr[idx as usize] = 0;
        }
        self.touched.clear();
        if self.row_from.len() < c {
            self.row_from.resize(c, 0);
            self.row_to.resize(c, 0);
            self.col_from.resize(c, 0);
            self.col_to.resize(c, 0);
        }
    }

    #[inline]
    fn add(&mut self, which: u8, idx: u32, w: Weight) {
        let arr = match which {
            ROW_FROM => &mut self.row_from,
            ROW_TO => &mut self.row_to,
            COL_FROM => &mut self.col_from,
            _ => &mut self.col_to,
        };
        arr[idx as usize] += w;
        self.touched.push((which, idx));
    }
}

/// Which representation the scratch's current delta uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum DeltaRepr {
    /// Sorted cell vector in `delta.cells`.
    #[default]
    Sorted,
    /// Direct-indexed arrays in `dense` (dense-storage vertex moves).
    DirectIndexed,
}

/// Reusable per-proposal buffers: build a delta, evaluate its `ΔS` and its
/// Metropolis–Hastings correction without heap allocation.
///
/// One scratch per thread; [`with_scratch`] hands out the thread-local
/// instance, which is how the sweep loops and the parallel merge phase
/// share it.
#[derive(Debug, Default)]
pub struct DeltaScratch {
    delta: LineDelta,
    dense: DenseDelta,
    repr: DeltaRepr,
    /// Unsorted build/sort buffer (merge deltas, Hastings fold).
    raw: Vec<(u64, Weight)>,
    /// Snapshot of the currently-nonzero cells on the affected lines.
    affected: Vec<(u64, Weight)>,
    /// Marks delta cells consumed while walking `affected`.
    used: Vec<bool>,
    /// Per-column delta entries for the dense-storage column passes.
    colbuf: Vec<(u32, Weight)>,
    /// Neighbor-block weights for the Hastings correction.
    wt: Vec<(u32, Weight)>,
}

thread_local! {
    static TLS_SCRATCH: RefCell<DeltaScratch> = RefCell::new(DeltaScratch::default());
}

/// Runs `f` with this thread's [`DeltaScratch`].
pub fn with_scratch<R>(f: impl FnOnce(&mut DeltaScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

impl DeltaScratch {
    /// Fresh scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the delta for moving vertex `v` into block `to`. Self-loops
    /// are handled once (both endpoints move together). Picks the delta
    /// representation matching the blockmodel's storage.
    pub fn vertex_move_delta(&mut self, graph: &Graph, bm: &Blockmodel, v: Vertex, to: u32) {
        let from = bm.block_of(v);
        self.delta.from = from;
        self.delta.to = to;
        self.delta.dout_shift = graph.out_degree(v);
        self.delta.din_shift = graph.in_degree(v);
        if bm.storage_kind() == crate::blockmodel::StorageKind::Dense {
            self.repr = DeltaRepr::DirectIndexed;
            self.dense.reset(bm.num_blocks());
            if from == to {
                return;
            }
            for &(u, w) in graph.out_edges(v) {
                if u == v {
                    self.dense.add(ROW_FROM, from, -w);
                    self.dense.add(ROW_TO, to, w);
                } else {
                    let t = bm.block_of(u);
                    self.dense.add(ROW_FROM, t, -w);
                    self.dense.add(ROW_TO, t, w);
                }
            }
            for &(u, w) in graph.in_edges(v) {
                if u == v {
                    continue;
                }
                // Cells (t, from) −w and (t, to) +w, routed to the array
                // that owns them (rows from/to claim their corner cells).
                let t = bm.block_of(u);
                if t == from {
                    self.dense.add(ROW_FROM, from, -w);
                    self.dense.add(ROW_FROM, to, w);
                } else if t == to {
                    self.dense.add(ROW_TO, from, -w);
                    self.dense.add(ROW_TO, to, w);
                } else {
                    self.dense.add(COL_FROM, t, -w);
                    self.dense.add(COL_TO, t, w);
                }
            }
        } else {
            self.repr = DeltaRepr::Sorted;
            build_vertex_move_cells(graph, bm, v, to, &mut self.delta, &mut self.raw);
        }
    }

    /// Builds the delta for merging block `from` into block `to`: row
    /// `from` folds into row `to`, column `from` into column `to`, and all
    /// of `from`'s degree mass moves. Merge deltas touch O(nnz of block
    /// `from`'s lines) cells, so they always use the sorted representation
    /// (built with one sort instead of per-cell insertion).
    pub fn merge_delta(&mut self, bm: &Blockmodel, from: u32, to: u32) {
        assert_ne!(from, to, "cannot merge a block into itself");
        self.repr = DeltaRepr::Sorted;
        self.raw.clear();
        for (c, m) in bm.row_iter(from) {
            self.raw.push((pack(from, c), -m));
            let c2 = if c == from { to } else { c };
            self.raw.push((pack(to, c2), m));
        }
        for (r, m) in bm.col_iter(from) {
            if r == from {
                continue; // diagonal already handled via the row pass
            }
            self.raw.push((pack(r, from), -m));
            if r == to {
                self.raw.push((pack(to, to), m));
            } else {
                self.raw.push((pack(r, to), m));
            }
        }
        self.delta.fold_from(&mut self.raw);
        self.delta.from = from;
        self.delta.to = to;
        self.delta.dout_shift = bm.d_out(from);
        self.delta.din_shift = bm.d_in(from);
    }

    /// Computes `ΔS = S_after − S_before` for the delta built by the last
    /// `*_delta` call, in O(nnz of the four affected lines) with no
    /// allocation. Negative is an improvement (the description length
    /// decreases by the same amount since the model-complexity term is
    /// unaffected by moves at fixed block count).
    pub fn delta_entropy(&mut self, bm: &Blockmodel) -> f64 {
        self.delta_entropy_with(bm, simd::enabled())
    }

    /// [`delta_entropy`](Self::delta_entropy) forced onto the scalar
    /// kernels — the property tests' bit-identity reference.
    #[doc(hidden)]
    pub fn delta_entropy_scalar(&mut self, bm: &Blockmodel) -> f64 {
        self.delta_entropy_with(bm, false)
    }

    fn delta_entropy_with(&mut self, bm: &Blockmodel, use_simd: bool) -> f64 {
        if self.delta.from == self.delta.to {
            return 0.0;
        }
        match self.repr {
            DeltaRepr::DirectIndexed => {
                delta_entropy_direct(bm, &self.delta, &self.dense, use_simd)
            }
            DeltaRepr::Sorted => {
                let DeltaScratch {
                    delta,
                    affected,
                    used,
                    colbuf,
                    ..
                } = self;
                delta_entropy_cells(bm, delta, affected, used, colbuf, use_simd)
            }
        }
    }

    /// The Metropolis–Hastings correction `p(s→r) / p(r→s)` for moving
    /// vertex `v` along the delta built by the last `vertex_move_delta`
    /// call (Graph-Challenge reference formulation):
    ///
    /// `p(r→s) ∝ Σ_t w_t · (M[t][s] + M[s][t] + 1) / (d_t + B)`
    ///
    /// with `t` ranging over the blocks of `v`'s (non-self) neighbors,
    /// `w_t` the edge weight between `v` and block `t`, forward evaluated
    /// on the current matrix and backward on the post-move matrix implied
    /// by the delta. Allocation-free: neighbor-block weights accumulate in
    /// the reusable `wt` buffer via sort-and-fold.
    pub fn hastings_correction(&mut self, graph: &Graph, bm: &Blockmodel, v: Vertex) -> f64 {
        self.hastings_correction_with(graph, bm, v, simd::enabled())
    }

    /// [`hastings_correction`](Self::hastings_correction) forced onto the
    /// scalar kernels — the property tests' bit-identity reference.
    #[doc(hidden)]
    pub fn hastings_correction_scalar(&mut self, graph: &Graph, bm: &Blockmodel, v: Vertex) -> f64 {
        self.hastings_correction_with(graph, bm, v, false)
    }

    fn hastings_correction_with(
        &mut self,
        graph: &Graph,
        bm: &Blockmodel,
        v: Vertex,
        use_simd: bool,
    ) -> f64 {
        let DeltaScratch {
            delta,
            dense,
            repr,
            raw,
            wt,
            ..
        } = self;
        match repr {
            DeltaRepr::DirectIndexed => {
                hastings_direct(graph, bm, v, delta, dense, raw, wt, use_simd)
            }
            DeltaRepr::Sorted => {
                hastings_kernel(graph, bm, v, delta, raw, wt, |x, y| delta.cell_delta(x, y))
            }
        }
    }
}

/// Post-move `ln(degree)` helpers shared by the ΔS kernels.
struct NewDegreeLns {
    r: u32,
    s: u32,
    ln_ndo_r: f64,
    ln_ndo_s: f64,
    ln_ndi_r: f64,
    ln_ndi_s: f64,
}

impl NewDegreeLns {
    fn compute(bm: &Blockmodel, delta: &LineDelta) -> Self {
        let (r, s) = (delta.from, delta.to);
        NewDegreeLns {
            r,
            s,
            ln_ndo_r: ln_int(bm.d_out(r) - delta.dout_shift),
            ln_ndo_s: ln_int(bm.d_out(s) + delta.dout_shift),
            ln_ndi_r: ln_int(bm.d_in(r) - delta.din_shift),
            ln_ndi_s: ln_int(bm.d_in(s) + delta.din_shift),
        }
    }

    #[inline]
    fn ln_dout(&self, bm: &Blockmodel, x: u32) -> f64 {
        if x == self.r {
            self.ln_ndo_r
        } else if x == self.s {
            self.ln_ndo_s
        } else {
            bm.ln_d_out(x)
        }
    }

    #[inline]
    fn ln_din(&self, bm: &Blockmodel, y: u32) -> f64 {
        if y == self.r {
            self.ln_ndi_r
        } else if y == self.s {
            self.ln_ndi_s
        } else {
            bm.ln_d_in(y)
        }
    }
}

/// ΔS kernel for dense storage + direct-indexed delta: four contiguous
/// line scans (SIMD-dispatched via [`simd::delta_line_pass`]) with the
/// delta read by direct indexing.
fn delta_entropy_direct(
    bm: &Blockmodel,
    delta: &LineDelta,
    dense: &DenseDelta,
    use_simd: bool,
) -> f64 {
    let (r, s) = (delta.from, delta.to);
    let lns = NewDegreeLns::compute(bm, delta);
    let c = bm.num_blocks();
    let ln_d_in = bm.ln_d_in_all();
    let ln_d_out = bm.ln_d_out_all();
    let mut old_sum = 0.0f64;
    let mut new_sum = 0.0f64;
    // Row passes: rows r and s in full; the new-side term substitutes the
    // post-move ln(d_in) at columns r/s.
    let row_fix = LaneFix::Substitute {
        r,
        s,
        ln_r: lns.ln_ndi_r,
        ln_s: lns.ln_ndi_s,
    };
    for (x, dline, ln_do_new) in [
        (r, &dense.row_from, lns.ln_ndo_r),
        (s, &dense.row_to, lns.ln_ndo_s),
    ] {
        let line = bm.dense_row(x).expect("direct repr implies dense storage");
        simd::delta_line_pass(
            line,
            DmSource::Slice(&dline[..c]),
            ln_d_in,
            bm.ln_d_out(x),
            ln_do_new,
            &row_fix,
            &mut old_sum,
            &mut new_sum,
            use_simd,
        );
    }
    // Column passes: columns r and s via the stored transpose, skipping
    // rows r/s (already counted above).
    let col_fix = LaneFix::Skip { r, s };
    for (y, dline, ln_di_new) in [
        (r, &dense.col_from, lns.ln_ndi_r),
        (s, &dense.col_to, lns.ln_ndi_s),
    ] {
        let line = bm.dense_col(y).expect("direct repr implies dense storage");
        simd::delta_line_pass(
            line,
            DmSource::Slice(&dline[..c]),
            ln_d_out,
            bm.ln_d_in(y),
            ln_di_new,
            &col_fix,
            &mut old_sum,
            &mut new_sum,
            use_simd,
        );
    }
    new_sum - old_sum
}

/// ΔS kernel for a sorted cell delta, on either storage representation.
fn delta_entropy_cells(
    bm: &Blockmodel,
    delta: &LineDelta,
    affected: &mut Vec<(u64, Weight)>,
    used: &mut Vec<bool>,
    colbuf: &mut Vec<(u32, Weight)>,
    use_simd: bool,
) -> f64 {
    let (r, s) = (delta.from, delta.to);
    if r == s {
        return 0.0;
    }
    let lns = NewDegreeLns::compute(bm, delta);

    // Dense storage: the four affected lines are contiguous slices, so
    // walk every slot with a merge against the line's sorted delta pairs
    // (gathered into the reusable `colbuf`) — no snapshot, no binary
    // searches; newly created cells are covered by the full-line scan
    // itself. The walk itself is the shared [`simd::delta_line_pass`].
    if bm.storage_kind() == crate::blockmodel::StorageKind::Dense {
        let cells = &delta.cells;
        let ln_d_in = bm.ln_d_in_all();
        let ln_d_out = bm.ln_d_out_all();
        let mut old_sum = 0.0f64;
        let mut new_sum = 0.0f64;
        let row_fix = LaneFix::Substitute {
            r,
            s,
            ln_r: lns.ln_ndi_r,
            ln_s: lns.ln_ndi_s,
        };
        for (x, ln_do_new) in [(r, lns.ln_ndo_r), (s, lns.ln_ndo_s)] {
            let line = bm.dense_row(x).expect("dense storage");
            let base = (x as u64) << 32;
            let lo = cells.partition_point(|e| e.0 < base);
            let hi = cells.partition_point(|e| e.0 < base + (1u64 << 32));
            colbuf.clear();
            colbuf.extend(cells[lo..hi].iter().map(|&(k, d)| (k as u32, d)));
            simd::delta_line_pass(
                line,
                DmSource::Pairs(colbuf),
                ln_d_in,
                bm.ln_d_out(x),
                ln_do_new,
                &row_fix,
                &mut old_sum,
                &mut new_sum,
                use_simd,
            );
        }
        // The columns' delta entries are scattered across the row-sorted
        // cell list; gather each column's entries (already in ascending
        // row order) into the same reusable buffer, then merge-walk the
        // transpose.
        let col_fix = LaneFix::Skip { r, s };
        for (y, ln_di_new) in [(r, lns.ln_ndi_r), (s, lns.ln_ndi_s)] {
            let line = bm.dense_col(y).expect("dense storage");
            colbuf.clear();
            for &(k, d) in cells.iter() {
                let (x, col) = unpack(k);
                if col == y && x != r && x != s {
                    colbuf.push((x, d));
                }
            }
            simd::delta_line_pass(
                line,
                DmSource::Pairs(colbuf),
                ln_d_out,
                bm.ln_d_in(y),
                ln_di_new,
                &col_fix,
                &mut old_sum,
                &mut new_sum,
                use_simd,
            );
        }
        return new_sum - old_sum;
    }

    // Sparse storage: snapshot every currently-nonzero cell in the
    // affected lines exactly once — rows r and s in full, columns r and s
    // excluding rows r/s; disjoint by construction, so no dedup pass.
    // Canonical line iteration makes this snapshot (and hence the ΔS
    // summation order) deterministic given the logical state.
    affected.clear();
    for (c, m) in bm.row_iter(r) {
        affected.push((pack(r, c), m));
    }
    for (c, m) in bm.row_iter(s) {
        affected.push((pack(s, c), m));
    }
    for (x, m) in bm.col_iter(r) {
        if x != r && x != s {
            affected.push((pack(x, r), m));
        }
    }
    for (x, m) in bm.col_iter(s) {
        if x != r && x != s {
            affected.push((pack(x, s), m));
        }
    }

    used.clear();
    used.resize(delta.cells.len(), false);
    let mut old_sum = 0.0f64;
    let mut new_sum = 0.0f64;
    for &(k, m) in affected.iter() {
        let (x, y) = unpack(k);
        old_sum += term(m, bm.ln_d_out(x) + bm.ln_d_in(y));
        let dm = match delta.cells.binary_search_by_key(&k, |e| e.0) {
            Ok(i) => {
                used[i] = true;
                delta.cells[i].1
            }
            Err(_) => 0,
        };
        let m2 = m + dm;
        debug_assert!(m2 >= 0, "cell ({x}, {y}) went negative in delta");
        if m2 > 0 {
            new_sum += term(m2, lns.ln_dout(bm, x) + lns.ln_din(bm, y));
        }
    }
    // Delta cells absent from the snapshot are newly created (old mass
    // zero).
    for (i, &(k, dm)) in delta.cells.iter().enumerate() {
        if used[i] || dm == 0 {
            continue;
        }
        let (x, y) = unpack(k);
        debug_assert!(
            x == r || x == s || y == r || y == s,
            "delta cell outside affected lines"
        );
        debug_assert!(dm > 0, "negative delta on an empty cell ({x}, {y})");
        new_sum += term(dm, lns.ln_dout(bm, x) + lns.ln_din(bm, y));
    }
    new_sum - old_sum
}

/// Gathers vertex `v`'s neighbor-block weights into `wt` by sort-and-fold
/// (no hashing, no allocation after warm-up). Returns `false` when `v`
/// has no non-self neighbors — both directions then propose uniformly and
/// the correction is 1.
fn gather_neighbor_weights(
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
    raw: &mut Vec<(u64, Weight)>,
    wt: &mut Vec<(u32, Weight)>,
) -> bool {
    raw.clear();
    for &(u, w) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
        if u == v {
            continue;
        }
        raw.push((bm.block_of(u) as u64, w));
    }
    if raw.is_empty() {
        return false;
    }
    raw.sort_unstable_by_key(|e| e.0);
    wt.clear();
    for &(t, w) in raw.iter() {
        match wt.last_mut() {
            Some(last) if last.0 == t as u32 => last.1 += w,
            _ => wt.push((t as u32, w)),
        }
    }
    true
}

/// Hastings correction for dense storage + direct-indexed delta: every
/// matrix and delta read is a contiguous-slice index, so the weighted sums
/// run through the SIMD-dispatched [`simd::hastings_pass`].
#[allow(clippy::too_many_arguments)]
fn hastings_direct(
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
    delta: &LineDelta,
    dense: &DenseDelta,
    raw: &mut Vec<(u64, Weight)>,
    wt: &mut Vec<(u32, Weight)>,
    use_simd: bool,
) -> f64 {
    let (r, s) = (delta.from, delta.to);
    if r == s {
        return 1.0;
    }
    if !gather_neighbor_weights(graph, bm, v, raw, wt) {
        return 1.0; // both directions proposed uniformly
    }
    let c = bm.num_blocks();
    let expect = "direct repr implies dense storage";
    let h = HastingsInputs {
        row_s: bm.dense_row(s).expect(expect),
        col_s: bm.dense_col(s).expect(expect),
        row_r: bm.dense_row(r).expect(expect),
        col_r: bm.dense_col(r).expect(expect),
        d_out: bm.d_out_all(),
        d_in: bm.d_in_all(),
        drow_from: &dense.row_from[..c],
        drow_to: &dense.row_to[..c],
        dcol_from: &dense.col_from[..c],
        r,
        s,
        shift: delta.dout_shift + delta.din_shift,
        b: c as f64,
    };
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    simd::hastings_pass(wt, &h, &mut fwd, &mut bwd, use_simd);
    debug_assert!(fwd > 0.0);
    bwd / fwd
}

/// Shared Hastings-correction kernel, parameterized over the delta's cell
/// lookup so both representations stay allocation-free (sparse storage and
/// the allocating test wrappers; the dense hot path is
/// [`hastings_direct`]).
fn hastings_kernel(
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
    delta: &LineDelta,
    raw: &mut Vec<(u64, Weight)>,
    wt: &mut Vec<(u32, Weight)>,
    cell_delta: impl Fn(u32, u32) -> Weight,
) -> f64 {
    let (r, s) = (delta.from, delta.to);
    if r == s {
        return 1.0;
    }
    let b = bm.num_blocks() as f64;
    if !gather_neighbor_weights(graph, bm, v, raw, wt) {
        return 1.0; // both directions proposed uniformly
    }

    let new_cell = |x: u32, y: u32| (bm.get(x, y) + cell_delta(x, y)) as f64;
    let shift = delta.dout_shift + delta.din_shift;
    let new_d_total = |t: u32| -> f64 {
        let base = bm.d_total(t);
        (if t == r {
            base - shift
        } else if t == s {
            base + shift
        } else {
            base
        }) as f64
    };
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    for &(t, w) in wt.iter() {
        let wf = w as f64;
        fwd += wf * ((bm.get(t, s) + bm.get(s, t)) as f64 + 1.0) / (bm.d_total(t) as f64 + b);
        bwd += wf * (new_cell(t, r) + new_cell(r, t) + 1.0) / (new_d_total(t) + b);
    }
    debug_assert!(fwd > 0.0);
    bwd / fwd
}

/// Fills `delta` with the sorted cell representation of moving `v` to
/// block `to`, using `raw` as the unsorted gather buffer.
fn build_vertex_move_cells(
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
    to: u32,
    delta: &mut LineDelta,
    raw: &mut Vec<(u64, Weight)>,
) {
    let from = bm.block_of(v);
    raw.clear();
    if from != to {
        for &(u, w) in graph.out_edges(v) {
            if u == v {
                raw.push((pack(from, from), -w));
                raw.push((pack(to, to), w));
            } else {
                let t = bm.block_of(u);
                raw.push((pack(from, t), -w));
                raw.push((pack(to, t), w));
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u == v {
                continue;
            }
            let t = bm.block_of(u);
            raw.push((pack(t, from), -w));
            raw.push((pack(t, to), w));
        }
    }
    delta.fold_from(raw);
    delta.from = from;
    delta.to = to;
    delta.dout_shift = graph.out_degree(v);
    delta.din_shift = graph.in_degree(v);
}

/// Builds the [`LineDelta`] for moving vertex `v` into block `to`
/// (allocating wrapper used by tests, benchmarks and external callers).
pub fn vertex_move_delta(graph: &Graph, bm: &Blockmodel, v: Vertex, to: u32) -> LineDelta {
    let mut delta = LineDelta::default();
    let mut raw = Vec::new();
    build_vertex_move_cells(graph, bm, v, to, &mut delta, &mut raw);
    delta
}

/// Builds the [`LineDelta`] for merging block `from` into block `to`
/// (allocating wrapper around [`DeltaScratch::merge_delta`]).
pub fn merge_delta(bm: &Blockmodel, from: u32, to: u32) -> LineDelta {
    with_scratch(|s| {
        s.merge_delta(bm, from, to);
        s.delta.clone()
    })
}

/// Computes `ΔS` for an externally held delta. Uses the thread-local
/// scratch for the affected-line snapshot, so repeated calls do not
/// allocate after warm-up.
pub fn delta_entropy(bm: &Blockmodel, delta: &LineDelta) -> f64 {
    with_scratch(|s| {
        let DeltaScratch {
            affected,
            used,
            colbuf,
            ..
        } = s;
        delta_entropy_cells(bm, delta, affected, used, colbuf, simd::enabled())
    })
}

/// The Metropolis–Hastings correction for an externally held delta (see
/// [`DeltaScratch::hastings_correction`]).
pub fn hastings_for_delta(graph: &Graph, bm: &Blockmodel, v: Vertex, delta: &LineDelta) -> f64 {
    with_scratch(|s| {
        let DeltaScratch { raw, wt, .. } = s;
        hastings_kernel(graph, bm, v, delta, raw, wt, |x, y| delta.cell_delta(x, y))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockmodel::StorageKind;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    /// ΔS computed sparsely must equal full recomputation after the move —
    /// under both storage representations.
    #[test]
    fn vertex_move_delta_matches_recompute() {
        let g = two_triangles();
        for kind in [StorageKind::Dense, StorageKind::Sparse] {
            let bm = Blockmodel::from_assignment_with(&g, vec![0, 0, 0, 1, 1, 1], 2, kind);
            for v in 0..6u32 {
                for to in 0..2u32 {
                    let d = vertex_move_delta(&g, &bm, v, to);
                    let ds = delta_entropy(&bm, &d);
                    let mut after = bm.clone();
                    after.move_vertex(&g, v, to);
                    let exact = after.entropy() - bm.entropy();
                    assert!(
                        (ds - exact).abs() < 1e-9,
                        "v={v} to={to} kind={kind:?}: sparse {ds}, exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_delta_matches_recompute() {
        let g = two_triangles();
        for kind in [StorageKind::Dense, StorageKind::Sparse] {
            let bm = Blockmodel::from_assignment_with(&g, vec![0, 1, 1, 2, 2, 3], 4, kind);
            for from in 0..4u32 {
                for to in 0..4u32 {
                    if from == to {
                        continue;
                    }
                    let d = merge_delta(&bm, from, to);
                    let ds = delta_entropy(&bm, &d);
                    // Exact: rebuild with merged assignment.
                    let merged: Vec<u32> = bm
                        .assignment()
                        .iter()
                        .map(|&b| if b == from { to } else { b })
                        .collect();
                    let after = Blockmodel::from_assignment(&g, merged, 4);
                    let exact = after.entropy() - bm.entropy();
                    assert!(
                        (ds - exact).abs() < 1e-9,
                        "merge {from}->{to} kind={kind:?}: sparse {ds}, exact {exact}"
                    );
                }
            }
        }
    }

    /// The scratch's storage-matched representations agree with the free
    /// functions for every (vertex, target) pair under both storages.
    #[test]
    fn scratch_reuse_matches_fresh_computation() {
        let g = two_triangles();
        for kind in [StorageKind::Dense, StorageKind::Sparse] {
            let bm = Blockmodel::from_assignment_with(&g, vec![0, 0, 1, 1, 2, 2], 3, kind);
            let mut scratch = DeltaScratch::new();
            for v in 0..6u32 {
                for to in 0..3u32 {
                    scratch.vertex_move_delta(&g, &bm, v, to);
                    let ds_scratch = scratch.delta_entropy(&bm);
                    let h_scratch = scratch.hastings_correction(&g, &bm, v);
                    let d = vertex_move_delta(&g, &bm, v, to);
                    let ds_fresh = delta_entropy(&bm, &d);
                    let h_fresh = hastings_for_delta(&g, &bm, v, &d);
                    assert!(
                        (ds_scratch - ds_fresh).abs() < 1e-12,
                        "v={v} to={to} kind={kind:?}: scratch {ds_scratch} vs fresh {ds_fresh}"
                    );
                    assert!(
                        (h_scratch - h_fresh).abs() < 1e-12,
                        "v={v} to={to} kind={kind:?}: scratch {h_scratch} vs fresh {h_fresh}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_delta_lookup_matches_iteration() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 2, 1);
        for ((r, c), dm) in d.cells() {
            assert_eq!(d.cell_delta(r, c), dm);
        }
        assert_eq!(d.cell_delta(9, 9), 0);
    }

    #[test]
    fn move_to_same_block_is_zero() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 0, 0);
        assert_eq!(delta_entropy(&bm, &d), 0.0);
        assert_eq!(d.num_cells(), 0);
    }

    #[test]
    fn self_loops_in_deltas() {
        let g = Graph::from_edges(3, vec![(0, 0, 2), (0, 1, 1), (2, 1, 1)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 0, 1);
        let ds = delta_entropy(&bm, &d);
        let mut after = bm.clone();
        after.move_vertex(&g, 0, 1);
        let exact = after.entropy() - bm.entropy();
        assert!((ds - exact).abs() < 1e-9, "sparse {ds}, exact {exact}");
    }

    #[test]
    fn improving_move_has_negative_delta() {
        // Vertex 2 misplaced in block 1; moving it home must improve S.
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 2, 0);
        assert!(delta_entropy(&bm, &d) < 0.0);
    }

    #[test]
    #[should_panic(expected = "into itself")]
    fn merge_self_panics() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        merge_delta(&bm, 1, 1);
    }
}

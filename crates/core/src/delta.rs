//! Sparse change-in-entropy computation (paper §III-A optimization c).
//!
//! Moving a vertex (or merging a block) only changes matrix cells lying in
//! rows `{from, to}` and columns `{from, to}` of the blockmodel, plus the
//! four block degrees. `ΔS` is therefore computed by re-evaluating the
//! entropy terms of exactly those lines under a sparse *cell delta*, never
//! touching the rest of the matrix. Equality with a full recompute is
//! enforced by property tests.

use crate::blockmodel::Blockmodel;
use crate::fxhash::FxHashMap;
use sbp_graph::{Graph, Vertex, Weight};

/// A sparse description of how a vertex move or block merge changes the
/// blockmodel: per-cell edge-count deltas (all cells lie in rows/columns
/// `{from, to}`) plus the degree mass shifted from `from` to `to`.
#[derive(Clone, Debug)]
pub struct LineDelta {
    /// Source block.
    pub from: u32,
    /// Destination block.
    pub to: u32,
    /// Cell deltas keyed by `(row, col)`.
    pub cells: FxHashMap<(u32, u32), Weight>,
    /// Out-degree mass moving from `from` to `to`.
    pub dout_shift: Weight,
    /// In-degree mass moving from `from` to `to`.
    pub din_shift: Weight,
}

/// Builds the [`LineDelta`] for moving vertex `v` into block `to`.
/// Self-loops are handled once (both endpoints move together).
pub fn vertex_move_delta(graph: &Graph, bm: &Blockmodel, v: Vertex, to: u32) -> LineDelta {
    let from = bm.block_of(v);
    let mut cells: FxHashMap<(u32, u32), Weight> = FxHashMap::default();
    if from != to {
        for &(u, w) in graph.out_edges(v) {
            if u == v {
                *cells.entry((from, from)).or_insert(0) -= w;
                *cells.entry((to, to)).or_insert(0) += w;
            } else {
                let t = bm.block_of(u);
                *cells.entry((from, t)).or_insert(0) -= w;
                *cells.entry((to, t)).or_insert(0) += w;
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u == v {
                continue;
            }
            let t = bm.block_of(u);
            *cells.entry((t, from)).or_insert(0) -= w;
            *cells.entry((t, to)).or_insert(0) += w;
        }
    }
    LineDelta {
        from,
        to,
        cells,
        dout_shift: graph.out_degree(v),
        din_shift: graph.in_degree(v),
    }
}

/// Builds the [`LineDelta`] for merging block `from` into block `to`:
/// row `from` folds into row `to`, column `from` into column `to`, and all
/// of `from`'s degree mass moves.
pub fn merge_delta(bm: &Blockmodel, from: u32, to: u32) -> LineDelta {
    assert_ne!(from, to, "cannot merge a block into itself");
    let mut cells: FxHashMap<(u32, u32), Weight> = FxHashMap::default();
    for (&c, &m) in bm.row(from) {
        *cells.entry((from, c)).or_insert(0) -= m;
        let c2 = if c == from { to } else { c };
        *cells.entry((to, c2)).or_insert(0) += m;
    }
    for (&r, &m) in bm.col(from) {
        if r == from {
            continue; // diagonal already handled via the row pass
        }
        *cells.entry((r, from)).or_insert(0) -= m;
        if r == to {
            *cells.entry((to, to)).or_insert(0) += m;
        } else {
            *cells.entry((r, to)).or_insert(0) += m;
        }
    }
    LineDelta {
        from,
        to,
        cells,
        dout_shift: bm.d_out(from),
        din_shift: bm.d_in(from),
    }
}

#[inline]
fn term(m: Weight, d_out: Weight, d_in: Weight) -> f64 {
    debug_assert!(m > 0 && d_out > 0 && d_in > 0);
    let mf = m as f64;
    -mf * (mf.ln() - (d_out as f64).ln() - (d_in as f64).ln())
}

/// Computes `ΔS = S_after − S_before` for a hypothetical change described
/// by `delta`, in O(nnz of the four affected lines). Negative is an
/// improvement (the description length decreases by the same amount since
/// the model-complexity term is unaffected by moves at fixed block count).
pub fn delta_entropy(bm: &Blockmodel, delta: &LineDelta) -> f64 {
    let (r, s) = (delta.from, delta.to);
    if r == s {
        return 0.0;
    }
    // Collect every currently-nonzero cell in the affected lines exactly
    // once: rows r and s in full, columns r and s excluding rows r/s.
    let mut affected: FxHashMap<(u32, u32), Weight> = FxHashMap::default();
    for (&c, &m) in bm.row(r) {
        affected.insert((r, c), m);
    }
    for (&c, &m) in bm.row(s) {
        affected.insert((s, c), m);
    }
    for (&x, &m) in bm.col(r) {
        if x != r && x != s {
            affected.insert((x, r), m);
        }
    }
    for (&x, &m) in bm.col(s) {
        if x != r && x != s {
            affected.insert((x, s), m);
        }
    }

    let old_sum: f64 = affected
        .iter()
        .map(|(&(x, y), &m)| term(m, bm.d_out(x), bm.d_in(y)))
        .sum();

    // Apply the cell deltas (all of which lie inside the affected lines).
    for (&cell, &dm) in &delta.cells {
        debug_assert!(
            cell.0 == r || cell.0 == s || cell.1 == r || cell.1 == s,
            "delta cell outside affected lines"
        );
        *affected.entry(cell).or_insert(0) += dm;
    }

    let nd_out = |x: u32| -> Weight {
        if x == r {
            bm.d_out(r) - delta.dout_shift
        } else if x == s {
            bm.d_out(s) + delta.dout_shift
        } else {
            bm.d_out(x)
        }
    };
    let nd_in = |y: u32| -> Weight {
        if y == r {
            bm.d_in(r) - delta.din_shift
        } else if y == s {
            bm.d_in(s) + delta.din_shift
        } else {
            bm.d_in(y)
        }
    };

    let new_sum: f64 = affected
        .iter()
        .filter(|&(_, &m)| m != 0)
        .map(|(&(x, y), &m)| {
            debug_assert!(m > 0, "cell ({x}, {y}) went negative in delta");
            term(m, nd_out(x), nd_in(y))
        })
        .sum();

    new_sum - old_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    /// ΔS computed sparsely must equal full recomputation after the move.
    #[test]
    fn vertex_move_delta_matches_recompute() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        for v in 0..6u32 {
            for to in 0..2u32 {
                let d = vertex_move_delta(&g, &bm, v, to);
                let ds = delta_entropy(&bm, &d);
                let mut after = bm.clone();
                after.move_vertex(&g, v, to);
                let exact = after.entropy() - bm.entropy();
                assert!(
                    (ds - exact).abs() < 1e-9,
                    "v={v} to={to}: sparse {ds}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn merge_delta_matches_recompute() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1, 2, 2, 3], 4);
        for from in 0..4u32 {
            for to in 0..4u32 {
                if from == to {
                    continue;
                }
                let d = merge_delta(&bm, from, to);
                let ds = delta_entropy(&bm, &d);
                // Exact: rebuild with merged assignment.
                let merged: Vec<u32> = bm
                    .assignment()
                    .iter()
                    .map(|&b| if b == from { to } else { b })
                    .collect();
                let after = Blockmodel::from_assignment(&g, merged, 4);
                let exact = after.entropy() - bm.entropy();
                assert!(
                    (ds - exact).abs() < 1e-9,
                    "merge {from}->{to}: sparse {ds}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn move_to_same_block_is_zero() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 0, 0);
        assert_eq!(delta_entropy(&bm, &d), 0.0);
    }

    #[test]
    fn self_loops_in_deltas() {
        let g = Graph::from_edges(3, vec![(0, 0, 2), (0, 1, 1), (2, 1, 1)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 0, 1);
        let ds = delta_entropy(&bm, &d);
        let mut after = bm.clone();
        after.move_vertex(&g, 0, 1);
        let exact = after.entropy() - bm.entropy();
        assert!((ds - exact).abs() < 1e-9, "sparse {ds}, exact {exact}");
    }

    #[test]
    fn improving_move_has_negative_delta() {
        // Vertex 2 misplaced in block 1; moving it home must improve S.
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 1, 1], 2);
        let d = vertex_move_delta(&g, &bm, 2, 0);
        assert!(delta_entropy(&bm, &d) < 0.0);
    }

    #[test]
    #[should_panic(expected = "into itself")]
    fn merge_self_panics() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        merge_delta(&bm, 1, 1);
    }
}

//! The end-to-end stochastic block partitioning driver.
//!
//! Alternates the block-merge phase (Alg. 1) and the MCMC phase (Alg. 2)
//! under golden-ratio control until the optimal block count is bracketed —
//! Fig. 1 of the paper. Every description length recorded in the bracket
//! and the iteration trajectory is an entropy sum over canonical matrix
//! lines, so a trajectory is reproducible bit for bit from
//! `(graph, seed, config)` in both storage regimes — the golden search's
//! control flow (which bracket entry wins, when the search stops) cannot
//! diverge between replicas that hold the same integers. [`solve_sbp`] is the engine: it accepts an
//! optional starting partition (how DC-SBP's root-rank fine-tuning phase,
//! Alg. 3 line 23, resumes from the combined partial results), reports
//! [`ProgressEvent`]s, honours a [`crate::run::CancelToken`] at iteration
//! boundaries and between MCMC sweeps, and returns the unified
//! [`RunOutcome`]. The legacy [`sbp`]/[`sbp_from`] free functions remain
//! as deprecated shims over it.

use crate::blockmodel::Blockmodel;
use crate::checkpoint::{strategy_tag, CheckpointState};
use crate::golden::{BracketEntry, GoldenBracket, NextStep};
use crate::hybrid::{batch_sweep, hybrid_sweep, HybridConfig};
use crate::mcmc::{keyed_mh_sweep, mcmc_phase, McmcStats};
use crate::merge::{apply_merges, propose_merges};
use crate::run::{ProgressEvent, ProgressSink, RunConfig, RunOutcome};
use sbp_graph::{Graph, Vertex};
use std::sync::OnceLock;

/// Cached handles for the solver-layer metrics (`sbp_solver_*`).
/// Strictly observe-only — see the `sbp-metrics` crate docs: nothing in
/// this module ever reads a recorded value back, so the solver's output
/// is bit-identical with metrics on or off.
struct SolverMetrics {
    iterations: std::sync::Arc<sbp_metrics::Counter>,
    sweeps: std::sync::Arc<sbp_metrics::Counter>,
    proposals: std::sync::Arc<sbp_metrics::Counter>,
    moves: std::sync::Arc<sbp_metrics::Counter>,
    merge_wall: std::sync::Arc<sbp_metrics::Histogram>,
    merge_cpu: std::sync::Arc<sbp_metrics::Histogram>,
    mcmc_wall: std::sync::Arc<sbp_metrics::Histogram>,
    mcmc_cpu: std::sync::Arc<sbp_metrics::Histogram>,
    block_size: std::sync::Arc<sbp_metrics::Histogram>,
}

fn solver_metrics() -> &'static SolverMetrics {
    static M: OnceLock<SolverMetrics> = OnceLock::new();
    M.get_or_init(|| SolverMetrics {
        iterations: sbp_metrics::counter("sbp_solver_iterations_total"),
        sweeps: sbp_metrics::counter("sbp_solver_sweeps_total"),
        proposals: sbp_metrics::counter("sbp_solver_proposals_total"),
        moves: sbp_metrics::counter("sbp_solver_moves_total"),
        merge_wall: sbp_metrics::histogram(
            "sbp_solver_merge_wall_seconds",
            &sbp_metrics::TIME_BUCKETS,
        ),
        merge_cpu: sbp_metrics::histogram(
            "sbp_solver_merge_cpu_seconds",
            &sbp_metrics::TIME_BUCKETS,
        ),
        mcmc_wall: sbp_metrics::histogram(
            "sbp_solver_mcmc_wall_seconds",
            &sbp_metrics::TIME_BUCKETS,
        ),
        mcmc_cpu: sbp_metrics::histogram("sbp_solver_mcmc_cpu_seconds", &sbp_metrics::TIME_BUCKETS),
        block_size: sbp_metrics::histogram("sbp_solver_block_size", &sbp_metrics::SIZE_BUCKETS),
    })
}

/// Wall + thread-CPU start pair for a phase timing, taken only when
/// recording is on (`None` keeps the disabled path clock-free). Shared
/// with the distributed drivers in `sbp-dist`, which time their own
/// merge/MCMC phases into the same histograms.
pub fn phase_clock() -> Option<(std::time::Instant, f64)> {
    sbp_metrics::enabled().then(|| (std::time::Instant::now(), sbp_mpi::thread_cpu_time()))
}

/// Records one iteration's block-size distribution (label frequencies
/// of the current assignment) into `sbp_solver_block_size`. Observe-only;
/// a no-op while recording is disabled.
pub fn observe_block_sizes(bm: &Blockmodel) {
    if !sbp_metrics::enabled() {
        return;
    }
    let mut sizes = vec![0u64; bm.num_blocks()];
    for &b in bm.assignment() {
        if let Some(slot) = sizes.get_mut(b as usize) {
            *slot += 1;
        }
    }
    let hist = &solver_metrics().block_size;
    for &size in sizes.iter().filter(|&&s| s > 0) {
        hist.observe(size as f64);
    }
}

/// Records a finished merge phase's wall/CPU timings from a
/// [`phase_clock`] start pair (no-op on `None`).
pub fn record_merge_timing(clock: Option<(std::time::Instant, f64)>) {
    if let Some((wall, cpu)) = clock {
        let m = solver_metrics();
        m.merge_wall.observe(wall.elapsed().as_secs_f64());
        m.merge_cpu.observe(sbp_mpi::thread_cpu_time() - cpu);
    }
}

/// Records a finished MCMC phase's wall/CPU timings from a
/// [`phase_clock`] start pair (no-op on `None`).
pub fn record_mcmc_timing(clock: Option<(std::time::Instant, f64)>) {
    if let Some((wall, cpu)) = clock {
        let m = solver_metrics();
        m.mcmc_wall.observe(wall.elapsed().as_secs_f64());
        m.mcmc_cpu.observe(sbp_mpi::thread_cpu_time() - cpu);
    }
}

/// Counts one finished golden-loop iteration into
/// `sbp_solver_iterations_total` (no-op while recording is disabled —
/// the counter gates internally).
pub fn record_iteration() {
    solver_metrics().iterations.inc();
}

/// Counts one completed sweep (with its proposal/acceptance tallies)
/// into the solver counters. The distributed drivers call this from
/// their sync points, which are their sweep boundaries.
pub fn record_sweep(proposals: usize, moves: usize) {
    if !sbp_metrics::enabled() {
        return;
    }
    let m = solver_metrics();
    m.sweeps.inc();
    m.proposals.add(proposals as u64);
    m.moves.add(moves as u64);
}

/// Which MCMC sweep implementation to use inside each phase.
#[derive(Clone, Debug, PartialEq)]
pub enum McmcStrategy {
    /// Sequential Metropolis–Hastings (paper Alg. 2). Proposal RNG
    /// streams are derived per `(seed, sweep, vertex)` — the same scheme
    /// as [`crate::hybrid::hybrid_sweep`] — so a sweep over any vertex
    /// subset draws the identical randomness for a given vertex
    /// regardless of which rank evaluates it.
    MetropolisHastings,
    /// Hybrid SBP: sequential high-degree head + chunked asynchronous
    /// Gibbs tail (the paper's intra-rank parallelization).
    Hybrid(HybridConfig),
    /// Whole-sweep batch evaluation (python-reference parallelism).
    Batch,
}

/// SBP hyper-parameters. Defaults follow the Graph-Challenge reference
/// implementation the paper's C++ baseline was translated from.
#[derive(Clone, Debug)]
pub struct SbpConfig {
    /// Inverse temperature β in the acceptance probability
    /// `min(1, exp(−β·ΔS)·H)`.
    pub beta: f64,
    /// Merge proposals evaluated per block in each merge phase (the
    /// paper's `x`).
    pub merge_proposals_per_block: usize,
    /// Fraction of blocks merged per agglomerative iteration before the
    /// bracket is established (0.5 = "until the number of communities is
    /// halved").
    pub block_reduction_rate: f64,
    /// Maximum MCMC sweeps per phase (the paper's `x` in Alg. 2).
    pub max_sweeps: usize,
    /// Convergence threshold before the golden-ratio bracket is
    /// established (`t` in Alg. 2).
    pub threshold_pre: f64,
    /// Tighter threshold once the bracket is established.
    pub threshold_post: f64,
    /// Sweep implementation.
    pub strategy: McmcStrategy,
    /// Master RNG seed.
    pub seed: u64,
    /// Hard cap on merge+MCMC iterations (safety net; the golden search
    /// terminates long before this on any real input).
    pub max_iterations: usize,
}

impl Default for SbpConfig {
    fn default() -> Self {
        SbpConfig {
            beta: 3.0,
            merge_proposals_per_block: 10,
            block_reduction_rate: 0.5,
            max_sweeps: 30,
            threshold_pre: 5e-4,
            threshold_post: 1e-4,
            strategy: McmcStrategy::MetropolisHastings,
            seed: 0,
            max_iterations: 300,
        }
    }
}

/// Statistics of one merge+MCMC iteration.
#[derive(Clone, Debug)]
pub struct IterationStat {
    /// Block count after the merge phase.
    pub num_blocks: usize,
    /// Description length after the MCMC phase.
    pub dl: f64,
    /// MCMC sweeps run.
    pub sweeps: usize,
    /// Vertex moves accepted.
    pub moves: usize,
}

impl sbp_mpi::Wire for IterationStat {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        self.num_blocks.wire_write(buf);
        self.dl.wire_write(buf);
        self.sweeps.wire_write(buf);
        self.moves.wire_write(buf);
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, sbp_graph::frame::DecodeError> {
        Ok(IterationStat {
            num_blocks: usize::wire_read(buf, pos)?,
            dl: f64::wire_read(buf, pos)?,
            sweeps: usize::wire_read(buf, pos)?,
            moves: usize::wire_read(buf, pos)?,
        })
    }
}

/// Final inference result of the legacy free functions.
#[derive(Clone, Debug)]
pub struct SbpResult {
    /// Inferred block assignment (dense labels).
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
    /// Per-iteration history.
    pub iterations: Vec<IterationStat>,
}

/// The per-iteration seed for the merge phase's per-block proposal
/// streams. Shared with the distributed drivers so EDiSt's merge phase
/// is bit-identical to the single-node one at every rank count.
pub fn merge_phase_seed(seed: u64, iter_idx: usize) -> u64 {
    seed.wrapping_add(0xA5A5_0000).wrapping_add(iter_idx as u64)
}

/// The per-iteration seed for the MCMC phase's `(sweep, vertex)`-keyed
/// proposal streams. Shared with the distributed drivers — it must not
/// depend on the rank id, or rank counts would explore different
/// trajectories.
pub fn mcmc_phase_seed(seed: u64, iter_idx: usize) -> u64 {
    seed.wrapping_add(0x5A5A_0000)
        .wrapping_add((iter_idx as u64) << 32)
}

/// Runs SBP inference: the golden-ratio search over merge+MCMC
/// iterations, from `start` (an `(assignment, num_blocks)` pair) or the
/// identity partition (`C = V`) when `start` is `None`.
///
/// Progress events are reported inline through `progress`;
/// `cfg.cancel` is polled at iteration boundaries and between MCMC
/// sweeps, and a cancelled run returns the best-so-far bracket entry
/// with [`RunOutcome::cancelled`] set.
///
/// When `cfg.checkpoint` is set, a `.sbpc` snapshot is written at the
/// configured sync boundaries (writes are atomic and best-effort: an
/// unwritable path never kills a multi-hour run — validate the path up
/// front, as the `Partitioner` facade does). When `cfg.resume` is set,
/// the golden loop restores the snapshot's bracket, trajectory, and
/// iteration index and ignores `start`; because every RNG stream is
/// keyed by `(seed, iteration, sweep, vertex)`, the resumed run is
/// bit-identical to the uninterrupted one.
///
/// When `cfg.warm` is set (and neither `start` nor `cfg.resume` is —
/// both take precedence), the bracket is seeded from the warm partition
/// and, if a dirty set is given, MCMC phases sweep only those vertices.
/// See [`crate::run::WarmStart`] for the exactness argument.
pub fn solve_sbp(
    graph: &Graph,
    start: Option<(Vec<u32>, usize)>,
    cfg: &RunConfig,
    progress: &mut dyn ProgressSink,
) -> RunOutcome {
    let t0 = sbp_mpi::thread_cpu_time();
    let n = graph.num_vertices();
    if n == 0 {
        return RunOutcome::empty();
    }
    let scfg = &cfg.sbp;
    // Warm starts yield to an explicit `start` (DC-SBP fine-tuning) and
    // to resume snapshots; mixing them is rejected upstream.
    let warm = if start.is_none() && cfg.resume.is_none() {
        cfg.warm.as_ref()
    } else {
        None
    };
    // Dirty-set filtering: a warm start may restrict MCMC sweeps to the
    // vertices near changed edges. The subset is sanitized here (sorted,
    // deduped, clamped to range) so sweep order is canonical; the
    // per-vertex RNG keying makes the restricted sweep propose exactly
    // what a full sweep would for the same vertices.
    let vertices: Vec<Vertex> = match warm.and_then(|w| w.dirty.as_ref()) {
        Some(dirty) => {
            let mut vs: Vec<Vertex> = dirty
                .iter()
                .copied()
                .filter(|&v| (v as usize) < n)
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        }
        None => (0..n as u32).collect(),
    };
    let (mut bracket, mut iterations, first_iter);
    if let Some(state) = &cfg.resume {
        bracket = state.bracket(scfg.block_reduction_rate);
        iterations = state.iterations.clone();
        first_iter = state.next_iter as usize;
        progress.on_event(&ProgressEvent::Started {
            num_vertices: n,
            num_blocks: bracket.best().map_or(n, |e| e.num_blocks),
        });
    } else {
        let (assignment, num_blocks) = start
            .or_else(|| warm.map(|w| (w.assignment.clone(), w.num_blocks)))
            .unwrap_or_else(|| ((0..n as u32).collect(), n));
        let mut start_bm =
            Blockmodel::from_assignment(graph, assignment, num_blocks).compacted(graph);
        progress.on_event(&ProgressEvent::Started {
            num_vertices: n,
            num_blocks: start_bm.num_blocks(),
        });
        iterations = Vec::new();
        if warm.is_some() {
            // Polish the warm partition at its own block count before
            // seeding the bracket. The golden loop only sweeps after a
            // merge, so without this pass the seed entry — which may
            // remain `mid` to the very end when the warm C is already
            // optimal — would never be repaired after edge deltas. The
            // refine phase uses the iteration index the loop itself never
            // reaches, so its RNG streams collide with no loop phase.
            let refine_idx = scfg.max_iterations;
            let stats = run_mcmc(
                graph,
                &mut start_bm,
                &vertices,
                cfg,
                scfg.threshold_pre,
                refine_idx,
                progress,
            );
            iterations.push(IterationStat {
                num_blocks: start_bm.num_blocks(),
                dl: start_bm.description_length(),
                sweeps: stats.sweeps,
                moves: stats.moves,
            });
        }
        bracket = GoldenBracket::new(scfg.block_reduction_rate);
        bracket.seed(BracketEntry {
            assignment: start_bm.assignment().to_vec(),
            num_blocks: start_bm.num_blocks(),
            dl: start_bm.description_length(),
        });
        first_iter = 0;
    }
    let mut cancelled = false;

    for iter_idx in first_iter..scfg.max_iterations {
        if cfg.cancel.is_cancelled() {
            cancelled = true;
            progress.on_event(&ProgressEvent::Cancelled {
                iteration: iter_idx,
            });
            break;
        }
        match bracket.next() {
            NextStep::Done(best) => {
                progress.on_event(&ProgressEvent::Finished {
                    num_blocks: best.num_blocks,
                    description_length: best.dl,
                });
                return outcome_from(best, iterations, false, t0);
            }
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                let from_blocks = start.num_blocks;
                let bm = Blockmodel::from_assignment(graph, start.assignment, start.num_blocks);
                let merge_clock = phase_clock();
                let mut bm = merge_phase(graph, &bm, blocks_to_merge, scfg, iter_idx);
                record_merge_timing(merge_clock);
                progress.on_event(&ProgressEvent::Merged {
                    iteration: iter_idx,
                    from_blocks,
                    num_blocks: bm.num_blocks(),
                });
                let threshold = if bracket.established() {
                    scfg.threshold_post
                } else {
                    scfg.threshold_pre
                };
                let mcmc_clock = phase_clock();
                let stats = run_mcmc(
                    graph, &mut bm, &vertices, cfg, threshold, iter_idx, progress,
                );
                record_mcmc_timing(mcmc_clock);
                record_iteration();
                observe_block_sizes(&bm);
                let entry = BracketEntry {
                    assignment: bm.assignment().to_vec(),
                    num_blocks: bm.num_blocks(),
                    dl: bm.description_length(),
                };
                let stat = IterationStat {
                    num_blocks: entry.num_blocks,
                    dl: entry.dl,
                    sweeps: stats.sweeps,
                    moves: stats.moves,
                };
                progress.on_event(&ProgressEvent::Iteration {
                    iteration: iter_idx,
                    stat: stat.clone(),
                });
                iterations.push(stat);
                bracket.record(entry);
                maybe_checkpoint(graph, cfg, &bracket, &iterations, iter_idx + 1);
            }
        }
    }
    // Cancelled, or the safety-net iteration cap was hit: return the best
    // snapshot recorded so far.
    let best = bracket.best().expect("bracket was seeded").clone();
    if !cancelled {
        progress.on_event(&ProgressEvent::Finished {
            num_blocks: best.num_blocks,
            description_length: best.dl,
        });
    }
    outcome_from(best, iterations, cancelled, t0)
}

fn outcome_from(
    best: BracketEntry,
    iterations: Vec<IterationStat>,
    cancelled: bool,
    t0: f64,
) -> RunOutcome {
    RunOutcome {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        description_length: best.dl,
        iterations,
        cancelled,
        virtual_seconds: sbp_mpi::thread_cpu_time() - t0,
        cluster: None,
        sampled_vertices: None,
        degraded: None,
    }
}

/// Packs the golden-loop state at a sync boundary into a
/// [`CheckpointState`]. Shared with the distributed drivers so the
/// single-node and distributed planes write identical snapshots.
pub fn checkpoint_state(
    graph: &Graph,
    cfg: &RunConfig,
    bracket: &GoldenBracket,
    iterations: &[IterationStat],
    next_iter: usize,
) -> CheckpointState {
    let (hi, mid, lo) = bracket.parts();
    CheckpointState {
        seed: cfg.sbp.seed,
        strategy_tag: strategy_tag(&cfg.sbp.strategy),
        num_vertices: graph.num_vertices() as u64,
        total_edge_weight: graph.total_edge_weight().max(0) as u64,
        next_iter: next_iter as u64,
        iterations: iterations.to_vec(),
        hi: hi.cloned(),
        mid: mid.cloned(),
        lo: lo.cloned(),
    }
}

/// Writes a checkpoint if `cfg.checkpoint` asks for one at this
/// boundary. Best-effort by contract (see [`solve_sbp`] docs): a failed
/// write must not abort the run it is meant to protect.
fn maybe_checkpoint(
    graph: &Graph,
    cfg: &RunConfig,
    bracket: &GoldenBracket,
    iterations: &[IterationStat],
    next_iter: usize,
) {
    let Some(spec) = &cfg.checkpoint else {
        return;
    };
    if !next_iter.is_multiple_of(spec.every.max(1)) {
        return;
    }
    let state = checkpoint_state(graph, cfg, bracket, iterations, next_iter);
    let _ = state.write_to(&spec.path);
}

/// Runs full SBP inference from the identity partition (`C = V`).
#[deprecated(note = "use `edist::Partitioner` or a `run::Solver` backend; \
                     `solve_sbp` is the progress/cancellation-aware engine")]
pub fn sbp(graph: &Graph, cfg: &SbpConfig) -> SbpResult {
    let out = solve_sbp(
        graph,
        None,
        &RunConfig::from_sbp(cfg.clone()),
        &mut crate::run::NoProgress,
    );
    sbp_result_from(out)
}

/// Runs SBP from an arbitrary starting partition (DC-SBP fine-tuning).
#[deprecated(note = "use `solve_sbp(graph, Some((assignment, num_blocks)), …)`")]
pub fn sbp_from(
    graph: &Graph,
    assignment: Vec<u32>,
    num_blocks: usize,
    cfg: &SbpConfig,
) -> SbpResult {
    let out = solve_sbp(
        graph,
        Some((assignment, num_blocks)),
        &RunConfig::from_sbp(cfg.clone()),
        &mut crate::run::NoProgress,
    );
    sbp_result_from(out)
}

fn sbp_result_from(out: RunOutcome) -> SbpResult {
    SbpResult {
        assignment: out.assignment,
        num_blocks: out.num_blocks,
        description_length: out.description_length,
        iterations: out.iterations,
    }
}

/// One merge phase: propose for all blocks, apply the best
/// `blocks_to_merge` merges, rebuild compactly.
pub fn merge_phase(
    graph: &Graph,
    bm: &Blockmodel,
    blocks_to_merge: usize,
    cfg: &SbpConfig,
    iter_idx: usize,
) -> Blockmodel {
    let blocks: Vec<u32> = (0..bm.num_blocks() as u32).collect();
    let seed = merge_phase_seed(cfg.seed, iter_idx);
    let cands = propose_merges(bm, &blocks, cfg.merge_proposals_per_block, seed);
    let (assignment, num_blocks) = apply_merges(bm, cands, blocks_to_merge);
    Blockmodel::from_assignment(graph, assignment, num_blocks)
}

fn run_mcmc(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    cfg: &RunConfig,
    threshold: f64,
    iter_idx: usize,
    progress: &mut dyn ProgressSink,
) -> McmcStats {
    let beta = cfg.sbp.beta;
    let sweep_seed = mcmc_phase_seed(cfg.sbp.seed, iter_idx);
    let max_sweeps = cfg.sbp.max_sweeps;
    let cancel = &cfg.cancel;
    // Every single-node sweep boundary is a "sync point" in the
    // distributed drivers' sense, so sweep-level events come for free.
    let mut on_sweep = |sweep: usize, dl: f64, outcome: &crate::mcmc::SweepOutcome| {
        record_sweep(outcome.proposals, outcome.moves.len());
        progress.on_event(&ProgressEvent::Sweep {
            iteration: iter_idx,
            sweep,
            dl,
            proposed: outcome.proposals,
            accepted: outcome.moves.len(),
        });
    };
    match &cfg.sbp.strategy {
        McmcStrategy::MetropolisHastings => mcmc_phase(
            graph,
            bm,
            vertices,
            max_sweeps,
            threshold,
            cancel,
            move |g, bm, vs, sweep| keyed_mh_sweep(g, bm, vs, beta, sweep_seed, sweep),
            &mut on_sweep,
        ),
        McmcStrategy::Hybrid(hcfg) => {
            let hcfg = *hcfg;
            mcmc_phase(
                graph,
                bm,
                vertices,
                max_sweeps,
                threshold,
                cancel,
                move |g, bm, vs, sweep| hybrid_sweep(g, bm, vs, beta, &hcfg, sweep_seed, sweep),
                &mut on_sweep,
            )
        }
        McmcStrategy::Batch => mcmc_phase(
            graph,
            bm,
            vertices,
            max_sweeps,
            threshold,
            cancel,
            move |g, bm, vs, sweep| batch_sweep(g, bm, vs, beta, sweep_seed, sweep),
            &mut on_sweep,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::NoProgress;

    fn planted_two_cliques(k: usize) -> (Graph, Vec<u32>) {
        // Two k-cliques joined by a single edge.
        let mut edges = Vec::new();
        for i in 0..k as u32 {
            for j in 0..k as u32 {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k as u32 + i, k as u32 + j, 1));
                }
            }
        }
        edges.push((0, k as u32, 1));
        let truth: Vec<u32> = (0..2 * k).map(|v| (v / k) as u32).collect();
        (Graph::from_edges(2 * k, edges), truth)
    }

    fn solve(graph: &Graph, cfg: &SbpConfig) -> RunOutcome {
        solve_sbp(
            graph,
            None,
            &RunConfig::from_sbp(cfg.clone()),
            &mut NoProgress,
        )
    }

    #[test]
    fn recovers_two_cliques() {
        let (g, truth) = planted_two_cliques(8);
        let cfg = SbpConfig {
            seed: 1,
            ..Default::default()
        };
        let res = solve(&g, &cfg);
        assert_eq!(
            res.num_blocks, 2,
            "expected 2 blocks, got {}",
            res.num_blocks
        );
        // Same partition up to relabeling.
        let flip = res.assignment[0];
        for v in 0..16usize {
            let expect = if truth[v] == truth[0] { flip } else { 1 - flip };
            assert_eq!(res.assignment[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn empty_graph_returns_empty_result() {
        let g = Graph::from_edges(0, Vec::new());
        let res = solve(&g, &SbpConfig::default());
        assert_eq!(res.num_blocks, 0);
        assert!(res.assignment.is_empty());
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_edges(1, Vec::new());
        let res = solve(&g, &SbpConfig::default());
        assert_eq!(res.num_blocks, 1);
        assert_eq!(res.assignment, vec![0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = planted_two_cliques(6);
        let cfg = SbpConfig {
            seed: 9,
            ..Default::default()
        };
        let a = solve(&g, &cfg);
        let b = solve(&g, &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.description_length, b.description_length);
    }

    #[test]
    fn hybrid_strategy_also_recovers() {
        let (g, _) = planted_two_cliques(8);
        let cfg = SbpConfig {
            strategy: McmcStrategy::Hybrid(HybridConfig {
                parallel: false,
                ..Default::default()
            }),
            seed: 4,
            ..Default::default()
        };
        let res = solve(&g, &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn batch_strategy_also_recovers() {
        let (g, _) = planted_two_cliques(8);
        let cfg = SbpConfig {
            strategy: McmcStrategy::Batch,
            seed: 4,
            ..Default::default()
        };
        let res = solve(&g, &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn solve_from_start_finetunes_a_partition() {
        let (g, truth) = planted_two_cliques(8);
        // Start from a 4-block over-segmentation of the truth.
        let start: Vec<u32> = (0..16u32).map(|v| truth[v as usize] * 2 + v % 2).collect();
        let res = solve_sbp(&g, Some((start, 4)), &RunConfig::seeded(2), &mut NoProgress);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn result_dl_matches_rebuilt_blockmodel() {
        let (g, _) = planted_two_cliques(6);
        let res = solve(
            &g,
            &SbpConfig {
                seed: 3,
                ..Default::default()
            },
        );
        let bm = Blockmodel::from_assignment(&g, res.assignment.clone(), res.num_blocks);
        assert!((bm.description_length() - res.description_length).abs() < 1e-9);
    }

    #[test]
    fn island_only_graph_terminates() {
        let g = Graph::from_edges(5, Vec::new());
        let res = solve(&g, &SbpConfig::default());
        assert!(res.num_blocks >= 1);
        assert_eq!(res.assignment.len(), 5);
    }

    #[test]
    fn virtual_seconds_are_recorded() {
        let (g, _) = planted_two_cliques(6);
        let res = solve(&g, &SbpConfig::default());
        assert!(res.virtual_seconds >= 0.0);
    }

    #[test]
    fn cancel_mid_search_returns_best_so_far() {
        let (g, _) = planted_two_cliques(10);
        let cfg = RunConfig::seeded(5);
        let token = cfg.cancel.clone();
        let mut sink = crate::run::ProgressFn(|e: &ProgressEvent| {
            if matches!(e, ProgressEvent::Iteration { .. }) {
                token.cancel();
            }
        });
        let res = solve_sbp(&g, None, &cfg, &mut sink);
        assert!(res.cancelled);
        assert_eq!(res.iterations.len(), 1, "cancelled after one iteration");
        // The returned partition is a coherent bracket entry.
        assert_eq!(res.assignment.len(), 20);
        let bm = Blockmodel::from_assignment(&g, res.assignment.clone(), res.num_blocks);
        assert!((bm.description_length() - res.description_length).abs() < 1e-9);
    }

    #[test]
    fn warm_start_reaches_cold_quality() {
        use crate::run::WarmStart;
        let (g, truth) = planted_two_cliques(8);
        let cold = solve_sbp(&g, None, &RunConfig::seeded(2), &mut NoProgress);
        // Warm-start from a 4-block over-segmentation of the truth.
        let start: Vec<u32> = (0..16u32).map(|v| truth[v as usize] * 2 + v % 2).collect();
        let warm_cfg = RunConfig::seeded(2).warm_start(WarmStart::new(start, 4));
        let warm = solve_sbp(&g, None, &warm_cfg, &mut NoProgress);
        assert_eq!(warm.num_blocks, 2);
        assert!(
            warm.description_length <= cold.description_length + 1e-9,
            "warm DL {} vs cold DL {}",
            warm.description_length,
            cold.description_length
        );
        // Warm search starts at C=4, so it does far less work than from C=V.
        assert!(warm.iterations.len() <= cold.iterations.len());
    }

    #[test]
    fn warm_start_dirty_subset_only_moves_dirty_vertices() {
        use crate::run::WarmStart;
        let (g, truth) = planted_two_cliques(8);
        // Truth with two vertices misassigned; only those (and neighbors)
        // are dirty. The clean vertices must keep their labels because
        // they never enter a sweep and the bracket never merges below 2.
        let mut start = truth.clone();
        start[3] = 1 - start[3];
        start[12] = 1 - start[12];
        let dirty: Vec<Vertex> = (0..16u32)
            .filter(|&v| {
                v == 3
                    || v == 12
                    || g.out_edges(3).iter().any(|&(d, _)| d == v)
                    || g.out_edges(12).iter().any(|&(d, _)| d == v)
            })
            .collect();
        let cfg = RunConfig::seeded(7).warm_start(WarmStart::new(start, 2).with_dirty(dirty));
        let res = solve_sbp(&g, None, &cfg, &mut NoProgress);
        assert_eq!(res.num_blocks, 2);
        // Recovered the planted truth up to relabeling.
        let flip = res.assignment[0];
        for v in 0..16usize {
            let expect = if truth[v] == truth[0] { flip } else { 1 - flip };
            assert_eq!(res.assignment[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn warm_start_empty_dirty_set_returns_warm_partition() {
        use crate::run::WarmStart;
        let (g, truth) = planted_two_cliques(6);
        let cfg =
            RunConfig::seeded(1).warm_start(WarmStart::new(truth.clone(), 2).with_dirty(vec![]));
        let res = solve_sbp(&g, None, &cfg, &mut NoProgress);
        // Nothing can move; the DL is the warm partition's (or a merge
        // that the bracket rejected), so the assignment survives.
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment, truth);
    }

    #[test]
    fn explicit_start_takes_precedence_over_warm() {
        use crate::run::WarmStart;
        let (g, _) = planted_two_cliques(6);
        let start: Vec<u32> = (0..12u32).map(|v| v % 3).collect();
        let plain = solve_sbp(
            &g,
            Some((start.clone(), 3)),
            &RunConfig::seeded(4),
            &mut NoProgress,
        );
        let with_warm = solve_sbp(
            &g,
            Some((start, 3)),
            &RunConfig::seeded(4).warm_start(WarmStart::new(vec![0; 12], 1)),
            &mut NoProgress,
        );
        assert_eq!(plain.assignment, with_warm.assignment);
        assert_eq!(
            plain.description_length.to_bits(),
            with_warm.description_length.to_bits()
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shims_match_solve_sbp() {
        let (g, _) = planted_two_cliques(6);
        let cfg = SbpConfig {
            seed: 7,
            ..Default::default()
        };
        let legacy = sbp(&g, &cfg);
        let new = solve(&g, &cfg);
        assert_eq!(legacy.assignment, new.assignment);
        assert_eq!(
            legacy.description_length.to_bits(),
            new.description_length.to_bits()
        );
        let start: Vec<u32> = (0..12u32).map(|v| v % 3).collect();
        let legacy_from = sbp_from(&g, start.clone(), 3, &cfg);
        let new_from = solve_sbp(
            &g,
            Some((start, 3)),
            &RunConfig::from_sbp(cfg),
            &mut NoProgress,
        );
        assert_eq!(legacy_from.assignment, new_from.assignment);
    }
}

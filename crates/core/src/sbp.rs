//! The end-to-end stochastic block partitioning driver.
//!
//! Alternates the block-merge phase (Alg. 1) and the MCMC phase (Alg. 2)
//! under golden-ratio control until the optimal block count is bracketed —
//! Fig. 1 of the paper. `sbp_from` starts from an arbitrary partition,
//! which is how DC-SBP's root-rank fine-tuning phase (Alg. 3 line 23)
//! resumes from the combined partial results.

use crate::blockmodel::Blockmodel;
use crate::golden::{BracketEntry, GoldenBracket, NextStep};
use crate::hybrid::{batch_sweep, hybrid_sweep, HybridConfig};
use crate::mcmc::{mcmc_phase, mh_sweep, McmcStats};
use crate::merge::{apply_merges, propose_merges};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbp_graph::{Graph, Vertex};

/// Which MCMC sweep implementation to use inside each phase.
#[derive(Clone, Debug, PartialEq)]
pub enum McmcStrategy {
    /// Sequential Metropolis–Hastings (paper Alg. 2).
    MetropolisHastings,
    /// Hybrid SBP: sequential high-degree head + chunked asynchronous
    /// Gibbs tail (the paper's intra-rank parallelization).
    Hybrid(HybridConfig),
    /// Whole-sweep batch evaluation (python-reference parallelism).
    Batch,
}

/// SBP hyper-parameters. Defaults follow the Graph-Challenge reference
/// implementation the paper's C++ baseline was translated from.
#[derive(Clone, Debug)]
pub struct SbpConfig {
    /// Inverse temperature β in the acceptance probability
    /// `min(1, exp(−β·ΔS)·H)`.
    pub beta: f64,
    /// Merge proposals evaluated per block in each merge phase (the
    /// paper's `x`).
    pub merge_proposals_per_block: usize,
    /// Fraction of blocks merged per agglomerative iteration before the
    /// bracket is established (0.5 = "until the number of communities is
    /// halved").
    pub block_reduction_rate: f64,
    /// Maximum MCMC sweeps per phase (the paper's `x` in Alg. 2).
    pub max_sweeps: usize,
    /// Convergence threshold before the golden-ratio bracket is
    /// established (`t` in Alg. 2).
    pub threshold_pre: f64,
    /// Tighter threshold once the bracket is established.
    pub threshold_post: f64,
    /// Sweep implementation.
    pub strategy: McmcStrategy,
    /// Master RNG seed.
    pub seed: u64,
    /// Hard cap on merge+MCMC iterations (safety net; the golden search
    /// terminates long before this on any real input).
    pub max_iterations: usize,
}

impl Default for SbpConfig {
    fn default() -> Self {
        SbpConfig {
            beta: 3.0,
            merge_proposals_per_block: 10,
            block_reduction_rate: 0.5,
            max_sweeps: 30,
            threshold_pre: 5e-4,
            threshold_post: 1e-4,
            strategy: McmcStrategy::MetropolisHastings,
            seed: 0,
            max_iterations: 300,
        }
    }
}

/// Statistics of one merge+MCMC iteration.
#[derive(Clone, Debug)]
pub struct IterationStat {
    /// Block count after the merge phase.
    pub num_blocks: usize,
    /// Description length after the MCMC phase.
    pub dl: f64,
    /// MCMC sweeps run.
    pub sweeps: usize,
    /// Vertex moves accepted.
    pub moves: usize,
}

/// Final inference result.
#[derive(Clone, Debug)]
pub struct SbpResult {
    /// Inferred block assignment (dense labels).
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
    /// Per-iteration history.
    pub iterations: Vec<IterationStat>,
}

/// Runs full SBP inference from the identity partition (`C = V`).
pub fn sbp(graph: &Graph, cfg: &SbpConfig) -> SbpResult {
    let n = graph.num_vertices();
    sbp_from(graph, (0..n as u32).collect(), n, cfg)
}

/// Runs SBP from an arbitrary starting partition (DC-SBP fine-tuning).
pub fn sbp_from(
    graph: &Graph,
    assignment: Vec<u32>,
    num_blocks: usize,
    cfg: &SbpConfig,
) -> SbpResult {
    if graph.num_vertices() == 0 {
        return SbpResult {
            assignment: Vec::new(),
            num_blocks: 0,
            description_length: 0.0,
            iterations: Vec::new(),
        };
    }
    let start = Blockmodel::from_assignment(graph, assignment, num_blocks).compacted(graph);
    let mut bracket = GoldenBracket::new(cfg.block_reduction_rate);
    bracket.seed(BracketEntry {
        assignment: start.assignment().to_vec(),
        num_blocks: start.num_blocks(),
        dl: start.description_length(),
    });
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let vertices: Vec<Vertex> = (0..graph.num_vertices() as u32).collect();
    let mut iterations = Vec::new();

    for iter_idx in 0..cfg.max_iterations {
        match bracket.next() {
            NextStep::Done(best) => {
                return SbpResult {
                    assignment: best.assignment,
                    num_blocks: best.num_blocks,
                    description_length: best.dl,
                    iterations,
                };
            }
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                let bm = Blockmodel::from_assignment(graph, start.assignment, start.num_blocks);
                let mut bm = merge_phase(graph, &bm, blocks_to_merge, cfg, iter_idx);
                let threshold = if bracket.established() {
                    cfg.threshold_post
                } else {
                    cfg.threshold_pre
                };
                let stats = run_mcmc(
                    graph, &mut bm, &vertices, cfg, threshold, iter_idx, &mut rng,
                );
                let entry = BracketEntry {
                    assignment: bm.assignment().to_vec(),
                    num_blocks: bm.num_blocks(),
                    dl: bm.description_length(),
                };
                iterations.push(IterationStat {
                    num_blocks: entry.num_blocks,
                    dl: entry.dl,
                    sweeps: stats.sweeps,
                    moves: stats.moves,
                });
                bracket.record(entry);
            }
        }
    }
    // Safety net: return the best snapshot even if the cap was hit.
    let best = bracket.best().expect("bracket was seeded").clone();
    SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        description_length: best.dl,
        iterations,
    }
}

/// One merge phase: propose for all blocks, apply the best
/// `blocks_to_merge` merges, rebuild compactly.
pub fn merge_phase(
    graph: &Graph,
    bm: &Blockmodel,
    blocks_to_merge: usize,
    cfg: &SbpConfig,
    iter_idx: usize,
) -> Blockmodel {
    let blocks: Vec<u32> = (0..bm.num_blocks() as u32).collect();
    let seed = cfg
        .seed
        .wrapping_add(0xA5A5_0000)
        .wrapping_add(iter_idx as u64);
    let cands = propose_merges(bm, &blocks, cfg.merge_proposals_per_block, seed);
    let (assignment, num_blocks) = apply_merges(bm, cands, blocks_to_merge);
    Blockmodel::from_assignment(graph, assignment, num_blocks)
}

fn run_mcmc(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    cfg: &SbpConfig,
    threshold: f64,
    iter_idx: usize,
    rng: &mut SmallRng,
) -> McmcStats {
    let beta = cfg.beta;
    let sweep_seed = cfg
        .seed
        .wrapping_add(0x5A5A_0000)
        .wrapping_add((iter_idx as u64) << 32);
    match &cfg.strategy {
        McmcStrategy::MetropolisHastings => mcmc_phase(
            graph,
            bm,
            vertices,
            cfg.max_sweeps,
            threshold,
            |g, bm, vs, _| mh_sweep(g, bm, vs, beta, rng),
        ),
        McmcStrategy::Hybrid(hcfg) => {
            let hcfg = *hcfg;
            mcmc_phase(
                graph,
                bm,
                vertices,
                cfg.max_sweeps,
                threshold,
                move |g, bm, vs, sweep| hybrid_sweep(g, bm, vs, beta, &hcfg, sweep_seed, sweep),
            )
        }
        McmcStrategy::Batch => mcmc_phase(
            graph,
            bm,
            vertices,
            cfg.max_sweeps,
            threshold,
            move |g, bm, vs, sweep| batch_sweep(g, bm, vs, beta, sweep_seed, sweep),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_two_cliques(k: usize) -> (Graph, Vec<u32>) {
        // Two k-cliques joined by a single edge.
        let mut edges = Vec::new();
        for i in 0..k as u32 {
            for j in 0..k as u32 {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k as u32 + i, k as u32 + j, 1));
                }
            }
        }
        edges.push((0, k as u32, 1));
        let truth: Vec<u32> = (0..2 * k).map(|v| (v / k) as u32).collect();
        (Graph::from_edges(2 * k, edges), truth)
    }

    #[test]
    fn recovers_two_cliques() {
        let (g, truth) = planted_two_cliques(8);
        let cfg = SbpConfig {
            seed: 1,
            ..Default::default()
        };
        let res = sbp(&g, &cfg);
        assert_eq!(
            res.num_blocks, 2,
            "expected 2 blocks, got {}",
            res.num_blocks
        );
        // Same partition up to relabeling.
        let flip = res.assignment[0];
        for v in 0..16usize {
            let expect = if truth[v] == truth[0] { flip } else { 1 - flip };
            assert_eq!(res.assignment[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn empty_graph_returns_empty_result() {
        let g = Graph::from_edges(0, Vec::new());
        let res = sbp(&g, &SbpConfig::default());
        assert_eq!(res.num_blocks, 0);
        assert!(res.assignment.is_empty());
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_edges(1, Vec::new());
        let res = sbp(&g, &SbpConfig::default());
        assert_eq!(res.num_blocks, 1);
        assert_eq!(res.assignment, vec![0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = planted_two_cliques(6);
        let cfg = SbpConfig {
            seed: 9,
            ..Default::default()
        };
        let a = sbp(&g, &cfg);
        let b = sbp(&g, &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.description_length, b.description_length);
    }

    #[test]
    fn hybrid_strategy_also_recovers() {
        let (g, _) = planted_two_cliques(8);
        let cfg = SbpConfig {
            strategy: McmcStrategy::Hybrid(HybridConfig {
                parallel: false,
                ..Default::default()
            }),
            seed: 4,
            ..Default::default()
        };
        let res = sbp(&g, &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn batch_strategy_also_recovers() {
        let (g, _) = planted_two_cliques(8);
        let cfg = SbpConfig {
            strategy: McmcStrategy::Batch,
            seed: 4,
            ..Default::default()
        };
        let res = sbp(&g, &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn sbp_from_finetunes_a_partition() {
        let (g, truth) = planted_two_cliques(8);
        // Start from a 4-block over-segmentation of the truth.
        let start: Vec<u32> = (0..16u32).map(|v| truth[v as usize] * 2 + v % 2).collect();
        let res = sbp_from(
            &g,
            start,
            4,
            &SbpConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn result_dl_matches_rebuilt_blockmodel() {
        let (g, _) = planted_two_cliques(6);
        let res = sbp(
            &g,
            &SbpConfig {
                seed: 3,
                ..Default::default()
            },
        );
        let bm = Blockmodel::from_assignment(&g, res.assignment.clone(), res.num_blocks);
        assert!((bm.description_length() - res.description_length).abs() < 1e-9);
    }

    #[test]
    fn island_only_graph_terminates() {
        let g = Graph::from_edges(5, Vec::new());
        let res = sbp(&g, &SbpConfig::default());
        assert!(res.num_blocks >= 1);
        assert_eq!(res.assignment.len(), 5);
    }
}

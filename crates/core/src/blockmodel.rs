//! The degree-corrected stochastic blockmodel state, with **adaptive**
//! dense/sparse storage for the inter-block edge-count matrix `M`.
//!
//! ## Storage layer
//!
//! The agglomerative search spends most of its wall-clock time at small
//! block counts (the endgame after the first few halvings), where a flat
//! `C×C` array beats per-row sparse structures on every axis: O(1) `get`,
//! contiguous line scans for the ΔS kernel, and zero per-cell allocation.
//! At large `C` (early iterations start at `C = V`) the dense array would
//! be quadratic in memory, so rows are [`crate::line::CanonicalLine`]s —
//! sorted `(block, weight)` vectors — with a stored transpose: the paper's
//! §III-A optimizations (a) and (b).
//!
//! [`Blockmodel::from_assignment`] picks the representation from the block
//! count and occupancy: dense for `C ≤ 64`, sparse above
//! `dense_threshold()` (default 1024, `SBP_DENSE_THRESHOLD`), and in
//! between by comparing the mean occupancy `E/C²` against a startup-probed
//! crossover — see [`dense_threshold`] for the exact precedence.
//! Since the representation is fixed at construction, the switch happens
//! exactly at [`Blockmodel::compacted`] / rebuild boundaries between
//! iterations — never mid-sweep. Both representations expose the same
//! iteration API ([`Blockmodel::row_iter`] / [`Blockmodel::col_iter`]) and
//! are checked against each other by property tests.
//!
//! ## Canonical line iteration
//!
//! Every iteration over a matrix line visits cells **ascending by block
//! id**, under either representation, whatever sequence of moves produced
//! the state. This is a correctness guarantee, not a convenience: the
//! weighted proposal scans, the ΔS/Hastings kernels, and the f64 entropy
//! sums all consume line iterations, so a history-dependent order would
//! make floating-point results depend on storage layout — which is what
//! previously limited the sharded ≡ monolithic EDiSt bit-identity to the
//! dense regime (`C ≤ 64`). With canonical lines the guarantee is
//! unconditional; `prop_core` asserts iteration-order invariance and
//! dense/sparse agreement down to the bit.
//!
//! ## Cached logarithms
//!
//! Every ΔS term needs `ln(d_out)`/`ln(d_in)` of the blocks on its line.
//! Degrees change only for the two blocks involved in a move, so the `ln`
//! vectors are maintained incrementally by [`Blockmodel::move_vertex`] and
//! the hot path pays one `ln` per *cell* (for `ln M_ij`) instead of three.
//!
//! Invariant maintained by every mutator: the storage, degree vectors and
//! `ln` caches always equal what [`Blockmodel::from_assignment`] would
//! rebuild from the current assignment. `validate` checks this in tests.

use crate::line::CanonicalLine;
use crate::model_description_length;
use rayon::prelude::*;
use sbp_graph::{Graph, Vertex, Weight};
use std::sync::OnceLock;

/// Rows per chunk of the fixed-shape entropy reduction (see
/// [`Blockmodel::entropy`]). The chunk layout is a function of the block
/// count **only** — never of the worker count — so the f64 combination
/// order, and therefore every entropy/DL bit, is identical at any
/// `SBP_THREADS`. 64 rows keeps single-chunk (bit-for-bit legacy) sums
/// for the dense endgame while giving large sparse matrices enough
/// chunks to parallelize.
const ENTROPY_CHUNK_ROWS: usize = 64;

/// Block counts at or below this use the flat dense matrix; above it, the
/// sparse canonical-line rows + transpose. Read once from `SBP_DENSE_THRESHOLD`
/// (default 1024). See the crate docs for tuning guidance: raise it if your
/// graphs converge to a few thousand communities and memory allows
/// (`2·C²·8` bytes per blockmodel), lower it under tight memory or when
/// simulating many ranks in one process.
///
/// ## Dense/sparse selection precedence
///
/// [`StorageKind::Auto`] resolves in this order:
///
/// 1. `C <= 64` → always dense (the endgame regime; unconditional).
/// 2. `C > dense_threshold()` → always sparse (memory cap: a dense
///    blockmodel is `2·C²·8` bytes).
/// 3. `SBP_DENSE_THRESHOLD` set to a parseable value → the legacy fixed
///    occupancy bar `E ≥ C²/8`. Setting the env var is an explicit
///    operator override, so the whole rule stays the documented,
///    machine-independent one.
/// 4. Otherwise → the **measured** occupancy bar
///    `E ≥ C² · dense_occupancy_crossover()`, where the crossover is a
///    one-time startup micro-probe of this machine's dense-vs-sparse
///    line-walk costs (clamped to `[1/8, 1/2]`, so the probe can only
///    *raise* the bar above the legacy default — e.g. on hardware where
///    the vectorized dense scan underperforms — never lower it).
///
/// Storage selection is a performance decision only: results are
/// bit-identical under either representation (the canonical-iteration
/// guarantee), so ranks probing different values on heterogeneous
/// hardware still agree on every f64.
pub fn dense_threshold() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("SBP_DENSE_THRESHOLD")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1024)
    })
}

/// Whether `SBP_DENSE_THRESHOLD` was explicitly set (and parseable) —
/// selects the legacy fixed occupancy bar over the probed one (see
/// [`dense_threshold`] for the full precedence).
fn dense_threshold_overridden() -> bool {
    static OVERRIDDEN: OnceLock<bool> = OnceLock::new();
    *OVERRIDDEN.get_or_init(|| {
        std::env::var("SBP_DENSE_THRESHOLD")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .is_some()
    })
}

/// The measured mean-occupancy (`E/C²`) crossover above which a dense
/// line walk beats sparse-line iteration on this machine, from a one-time
/// startup micro-probe (see [`dense_threshold`] for how it enters the
/// [`StorageKind::Auto`] rule). Clamped to `[1/8, 1/2]`: the floor is the
/// legacy bar (never pick dense *more* aggressively than the tuned
/// default), the ceiling keeps a pathological timing sample from pinning
/// every mid-size blockmodel sparse.
pub fn dense_occupancy_crossover() -> f64 {
    static RHO: OnceLock<f64> = OnceLock::new();
    *RHO.get_or_init(|| calibrate_dense_crossover().clamp(0.125, 0.5))
}

/// Times a dense slot walk and a sparse entry walk over a synthetic
/// 1/8-occupancy line (the entropy inner loop, dispatched through the
/// production SIMD gate so an AVX2 machine probes its real dense cost)
/// and returns the implied per-slot / per-entry cost ratio — the
/// occupancy above which dense wins. Best-of-3 trials; ~1 ms once per
/// process.
fn calibrate_dense_crossover() -> f64 {
    use std::hint::black_box;
    const PROBE_C: usize = 4096;
    const STRIDE: usize = 8;
    const REPS: u32 = 64;
    let mut line = vec![0 as Weight; PROBE_C];
    let mut entries = Vec::with_capacity(PROBE_C / STRIDE);
    for i in (0..PROBE_C).step_by(STRIDE) {
        line[i] = 3;
        entries.push((i as u32, 3 as Weight));
    }
    let sparse = CanonicalLine::from_unsorted(entries);
    let ln_vec = vec![0.5f64; PROBE_C];
    let use_simd = crate::simd::enabled();
    let mut best_dense = f64::INFINITY;
    let mut best_sparse = f64::INFINITY;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        for _ in 0..REPS {
            let mut acc = 0.0f64;
            crate::simd::entropy_line(black_box(&line), &ln_vec, 0.25, &mut acc, use_simd);
            black_box(acc);
        }
        best_dense = best_dense.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        for _ in 0..REPS {
            let mut acc = 0.0f64;
            for &(c, m) in black_box(sparse.as_slice()) {
                acc -= (m as f64) * (crate::lntab::ln_int(m) - 0.25 - ln_vec[c as usize]);
            }
            black_box(acc);
        }
        best_sparse = best_sparse.min(t.elapsed().as_secs_f64());
    }
    let per_slot = best_dense / PROBE_C as f64;
    let per_entry = best_sparse / (PROBE_C / STRIDE) as f64;
    if per_entry > 0.0 && per_slot.is_finite() {
        per_slot / per_entry
    } else {
        0.125
    }
}

/// What [`StorageKind::Auto`] selects for a blockmodel of `num_blocks`
/// blocks over `total_edge_weight` — the single source of truth for the
/// dense/sparse rule, exposed so the sparse-regime test suites can assert
/// "this trajectory ran on sparse storage" against the real predicate
/// instead of a hand-copied formula that would silently rot if the rule
/// is ever retuned.
pub fn auto_picks_dense(num_blocks: usize, total_edge_weight: Weight) -> bool {
    Storage::pick_dense(StorageKind::Auto, num_blocks, total_edge_weight)
}

/// Which matrix representation a [`Blockmodel`] should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// Pick the representation from block count and expected occupancy:
    /// dense when `C <= 64`, or when `C <= dense_threshold()` **and** the
    /// mean cell occupancy `E/C²` clears the occupancy bar (a dense line
    /// scan only beats sparse-line iteration when the lines are actually
    /// populated — the identity partition at `C = V` has ~`avg_degree`
    /// entries per 10k-slot line and must stay sparse). The bar is the
    /// startup-probed [`dense_occupancy_crossover`] by default and the
    /// legacy fixed 1/8 when `SBP_DENSE_THRESHOLD` is explicitly set —
    /// see [`dense_threshold`] for the full precedence.
    #[default]
    Auto,
    /// Flat row-major `C×C` array plus its transpose.
    Dense,
    /// One sorted [`CanonicalLine`] per row plus one per column (the
    /// stored transpose).
    Sparse,
}

#[derive(Clone, Debug)]
enum Storage {
    Dense {
        c: usize,
        /// Row-major `C×C` edge counts.
        m: Vec<Weight>,
        /// Column-major copy (`mt[c*C + r] == m[r*C + c]`) so column scans
        /// are contiguous.
        mt: Vec<Weight>,
    },
    Sparse {
        rows: Vec<CanonicalLine>,
        cols: Vec<CanonicalLine>,
    },
}

impl Storage {
    /// The dense/sparse selection rule shared by the in-place and bulk
    /// construction paths.
    fn pick_dense(kind: StorageKind, num_blocks: usize, total_edge_weight: Weight) -> bool {
        match kind {
            StorageKind::Auto => {
                if num_blocks <= 64 {
                    return true;
                }
                if num_blocks > dense_threshold() {
                    return false;
                }
                if dense_threshold_overridden() {
                    // Explicit operator override: keep the documented
                    // fixed bar so behavior is machine-independent.
                    total_edge_weight >= (num_blocks * num_blocks / 8) as Weight
                } else {
                    total_edge_weight as f64
                        >= (num_blocks * num_blocks) as f64 * dense_occupancy_crossover()
                }
            }
            StorageKind::Dense => true,
            StorageKind::Sparse => false,
        }
    }

    #[inline]
    fn get(&self, r: u32, col: u32) -> Weight {
        match self {
            Storage::Dense { c, m, .. } => m[r as usize * c + col as usize],
            Storage::Sparse { rows, .. } => rows[r as usize].get(col),
        }
    }

    #[inline]
    fn add(&mut self, r: u32, col: u32, w: Weight) {
        match self {
            Storage::Dense { c, m, mt } => {
                m[r as usize * *c + col as usize] += w;
                mt[col as usize * *c + r as usize] += w;
            }
            Storage::Sparse { rows, cols } => {
                rows[r as usize].add(col, w);
                cols[col as usize].add(r, w);
            }
        }
    }

    #[inline]
    fn sub(&mut self, r: u32, col: u32, w: Weight) {
        match self {
            Storage::Dense { c, m, mt } => {
                let e = &mut m[r as usize * *c + col as usize];
                *e -= w;
                debug_assert!(*e >= 0, "cell ({r}, {col}) went negative");
                mt[col as usize * *c + r as usize] -= w;
            }
            Storage::Sparse { rows, cols } => {
                rows[r as usize].sub(col, w);
                cols[col as usize].sub(r, w);
            }
        }
    }

    #[inline]
    fn row_iter(&self, r: u32) -> LineIter<'_> {
        match self {
            Storage::Dense { c, m, .. } => LineIter::Dense {
                line: &m[r as usize * c..(r as usize + 1) * c],
                next: 0,
            },
            Storage::Sparse { rows, .. } => LineIter::Sparse(rows[r as usize].iter()),
        }
    }

    #[inline]
    fn col_iter(&self, col: u32) -> LineIter<'_> {
        match self {
            Storage::Dense { c, mt, .. } => LineIter::Dense {
                line: &mt[col as usize * c..(col as usize + 1) * c],
                next: 0,
            },
            Storage::Sparse { cols, .. } => LineIter::Sparse(cols[col as usize].iter()),
        }
    }

    fn kind(&self) -> StorageKind {
        match self {
            Storage::Dense { .. } => StorageKind::Dense,
            Storage::Sparse { .. } => StorageKind::Sparse,
        }
    }

    #[inline]
    fn dense_row(&self, r: u32) -> Option<&[Weight]> {
        match self {
            Storage::Dense { c, m, .. } => Some(&m[r as usize * c..(r as usize + 1) * c]),
            Storage::Sparse { .. } => None,
        }
    }

    #[inline]
    fn dense_col(&self, col: u32) -> Option<&[Weight]> {
        match self {
            Storage::Dense { c, mt, .. } => Some(&mt[col as usize * c..(col as usize + 1) * c]),
            Storage::Sparse { .. } => None,
        }
    }
}

/// Accumulates a full matrix from a cell stream at rebuild boundaries.
///
/// Dense targets accumulate in place (O(1) per cell). Sparse targets
/// gather each line's raw contributions and sort once per line in
/// [`StorageBuilder::finish`] — repeated sorted inserts would be
/// quadratic in line occupancy, which matters for hub rows at `C = V`
/// where a line is a vertex's whole adjacency.
enum StorageBuilder {
    Dense(Storage),
    Sparse {
        rows: Vec<Vec<(u32, Weight)>>,
        cols: Vec<Vec<(u32, Weight)>>,
    },
}

impl StorageBuilder {
    fn new(kind: StorageKind, num_blocks: usize, total_edge_weight: Weight) -> StorageBuilder {
        if Storage::pick_dense(kind, num_blocks, total_edge_weight) {
            StorageBuilder::Dense(Storage::Dense {
                c: num_blocks,
                m: vec![0; num_blocks * num_blocks],
                mt: vec![0; num_blocks * num_blocks],
            })
        } else {
            StorageBuilder::Sparse {
                rows: vec![Vec::new(); num_blocks],
                cols: vec![Vec::new(); num_blocks],
            }
        }
    }

    #[inline]
    fn add(&mut self, r: u32, c: u32, w: Weight) {
        match self {
            StorageBuilder::Dense(storage) => storage.add(r, c, w),
            StorageBuilder::Sparse { rows, cols } => {
                rows[r as usize].push((c, w));
                cols[c as usize].push((r, w));
            }
        }
    }

    fn finish(self) -> Storage {
        match self {
            StorageBuilder::Dense(storage) => storage,
            StorageBuilder::Sparse { rows, cols } => {
                // Each line's sort-and-fold is independent integer work,
                // so rebuild boundaries fan the lines out over the pool;
                // ordered collection keeps the result identical to the
                // serial build at any thread count.
                let fold = |lines: Vec<Vec<(u32, Weight)>>| -> Vec<CanonicalLine> {
                    lines
                        .into_par_iter()
                        .map(CanonicalLine::from_unsorted)
                        .collect()
                };
                let (rows, cols) = rayon::join(|| fold(rows), || fold(cols));
                Storage::Sparse { rows, cols }
            }
        }
    }
}

/// Iterator over the nonzero `(other_block, weight)` entries of one matrix
/// line (a row, or a column via the stored transpose), **ascending by
/// block id** under either storage representation — the canonical order
/// every observable line walk shares (see the module docs).
pub enum LineIter<'a> {
    /// Dense scan of a contiguous line, skipping zeros.
    Dense {
        /// The line's cells, indexed by the other block id.
        line: &'a [Weight],
        /// Next index to inspect.
        next: usize,
    },
    /// Sparse iteration over a sorted [`CanonicalLine`].
    Sparse(std::slice::Iter<'a, (u32, Weight)>),
}

impl Iterator for LineIter<'_> {
    type Item = (u32, Weight);

    #[inline]
    fn next(&mut self) -> Option<(u32, Weight)> {
        match self {
            LineIter::Dense { line, next } => {
                while *next < line.len() {
                    let i = *next;
                    *next += 1;
                    let w = line[i];
                    if w != 0 {
                        return Some((i as u32, w));
                    }
                }
                None
            }
            LineIter::Sparse(it) => it.next().copied(),
        }
    }
}

#[inline]
fn ln_or_zero(w: Weight) -> f64 {
    crate::lntab::ln_int(w)
}

/// The blockmodel: a vertex→block assignment plus the inter-block
/// edge-count matrix `M` in adaptive dense/sparse form (see module docs),
/// with incrementally maintained block degree vectors and their cached
/// logarithms.
#[derive(Clone, Debug)]
pub struct Blockmodel {
    assignment: Vec<u32>,
    num_blocks: usize,
    storage: Storage,
    d_out: Vec<Weight>,
    d_in: Vec<Weight>,
    ln_d_out: Vec<f64>,
    ln_d_in: Vec<f64>,
    num_vertices: usize,
    total_edge_weight: Weight,
}

impl Blockmodel {
    /// Builds the blockmodel implied by `assignment` over `graph`, picking
    /// the storage representation automatically from the block count.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the vertex count or any
    /// label is `>= num_blocks`.
    pub fn from_assignment(graph: &Graph, assignment: Vec<u32>, num_blocks: usize) -> Self {
        Self::from_assignment_with(graph, assignment, num_blocks, StorageKind::Auto)
    }

    /// Builds the blockmodel with an explicit storage representation —
    /// benchmarks and the dense/sparse agreement property tests force one.
    pub fn from_assignment_with(
        graph: &Graph,
        assignment: Vec<u32>,
        num_blocks: usize,
        kind: StorageKind,
    ) -> Self {
        assert_eq!(
            assignment.len(),
            graph.num_vertices(),
            "assignment must label every vertex"
        );
        assert!(
            assignment.iter().all(|&b| (b as usize) < num_blocks),
            "assignment label out of range"
        );
        let mut builder = StorageBuilder::new(kind, num_blocks, graph.total_edge_weight());
        let mut d_out = vec![0 as Weight; num_blocks];
        let mut d_in = vec![0 as Weight; num_blocks];
        for (src, dst, w) in graph.arcs() {
            let (r, c) = (assignment[src as usize], assignment[dst as usize]);
            builder.add(r, c, w);
            d_out[r as usize] += w;
            d_in[c as usize] += w;
        }
        let storage = builder.finish();
        let ln_d_out = d_out.iter().map(|&w| ln_or_zero(w)).collect();
        let ln_d_in = d_in.iter().map(|&w| ln_or_zero(w)).collect();
        Blockmodel {
            assignment,
            num_blocks,
            storage,
            d_out,
            d_in,
            ln_d_out,
            ln_d_in,
            num_vertices: graph.num_vertices(),
            total_edge_weight: graph.total_edge_weight(),
        }
    }

    /// The identity blockmodel: every vertex in its own block (`C = V`),
    /// the starting point of the agglomerative search.
    pub fn identity(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        Self::from_assignment(graph, (0..n as u32).collect(), n)
    }

    /// Number of blocks `C` (the label-space size; empty blocks count until
    /// [`Blockmodel::compacted`] relabels).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Which representation this blockmodel currently uses ([`StorageKind::
    /// Dense`] or [`StorageKind::Sparse`], never `Auto`).
    #[inline]
    pub fn storage_kind(&self) -> StorageKind {
        self.storage.kind()
    }

    /// The assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes self, returning the assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Block of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: Vertex) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Total edge weight `E` of the underlying graph.
    #[inline]
    pub fn total_edge_weight(&self) -> Weight {
        self.total_edge_weight
    }

    /// Edge count between blocks `r` and `c` (`M[r][c]`).
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> Weight {
        self.storage.get(r, c)
    }

    /// Nonzero entries of row `r` as `(col, weight)`, ascending by `col`
    /// — the canonical order, identical under both representations and
    /// independent of move history.
    #[inline]
    pub fn row_iter(&self, r: u32) -> LineIter<'_> {
        self.storage.row_iter(r)
    }

    /// Nonzero entries of column `c` as `(row, weight)`, ascending by
    /// `row` — the canonical order, identical under both representations
    /// and independent of move history.
    #[inline]
    pub fn col_iter(&self, c: u32) -> LineIter<'_> {
        self.storage.col_iter(c)
    }

    /// Row `r` as a contiguous slice (dense storage only) — the ΔS
    /// kernel's fast path.
    #[inline]
    pub(crate) fn dense_row(&self, r: u32) -> Option<&[Weight]> {
        self.storage.dense_row(r)
    }

    /// Column `c` of the stored transpose as a contiguous slice (dense
    /// storage only).
    #[inline]
    pub(crate) fn dense_col(&self, c: u32) -> Option<&[Weight]> {
        self.storage.dense_col(c)
    }

    /// Weighted out-degree of block `r`.
    #[inline]
    pub fn d_out(&self, r: u32) -> Weight {
        self.d_out[r as usize]
    }

    /// Weighted in-degree of block `c`.
    #[inline]
    pub fn d_in(&self, c: u32) -> Weight {
        self.d_in[c as usize]
    }

    /// Cached `ln(d_out(r))` (0.0 when the degree is zero).
    #[inline]
    pub fn ln_d_out(&self, r: u32) -> f64 {
        self.ln_d_out[r as usize]
    }

    /// Cached `ln(d_in(c))` (0.0 when the degree is zero).
    #[inline]
    pub fn ln_d_in(&self, c: u32) -> f64 {
        self.ln_d_in[c as usize]
    }

    /// Weighted total degree of block `b`.
    #[inline]
    pub fn d_total(&self, b: u32) -> Weight {
        self.d_out[b as usize] + self.d_in[b as usize]
    }

    /// The full out-degree vector (SIMD kernels gather from it).
    #[inline]
    pub(crate) fn d_out_all(&self) -> &[Weight] {
        &self.d_out
    }

    /// The full in-degree vector (SIMD kernels gather from it).
    #[inline]
    pub(crate) fn d_in_all(&self) -> &[Weight] {
        &self.d_in
    }

    /// The full `ln(d_out)` cache (per-cell vector for the ΔS passes).
    #[inline]
    pub(crate) fn ln_d_out_all(&self) -> &[f64] {
        &self.ln_d_out
    }

    /// The full `ln(d_in)` cache (per-cell vector for the ΔS passes).
    #[inline]
    pub(crate) fn ln_d_in_all(&self) -> &[f64] {
        &self.ln_d_in
    }

    /// Moves vertex `v` to block `to`, incrementally updating the matrix,
    /// its transpose, the degree vectors and the `ln` caches. No-op if `v`
    /// is already there.
    pub fn move_vertex(&mut self, graph: &Graph, v: Vertex, to: u32) {
        let from = self.assignment[v as usize];
        if from == to {
            return;
        }
        debug_assert!((to as usize) < self.num_blocks);
        for &(u, w) in graph.out_edges(v) {
            if u == v {
                // Self-loop: both endpoints move together. Handled once
                // here; skipped in the in-edge loop below.
                self.storage.sub(from, from, w);
                self.storage.add(to, to, w);
            } else {
                let t = self.assignment[u as usize];
                self.storage.sub(from, t, w);
                self.storage.add(to, t, w);
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u == v {
                continue;
            }
            let t = self.assignment[u as usize];
            self.storage.sub(t, from, w);
            self.storage.add(t, to, w);
        }
        let (ov, iv) = (graph.out_degree(v), graph.in_degree(v));
        self.d_out[from as usize] -= ov;
        self.d_out[to as usize] += ov;
        self.d_in[from as usize] -= iv;
        self.d_in[to as usize] += iv;
        // Incremental ln-cache invalidation: only the two touched blocks.
        self.ln_d_out[from as usize] = ln_or_zero(self.d_out[from as usize]);
        self.ln_d_out[to as usize] = ln_or_zero(self.d_out[to as usize]);
        self.ln_d_in[from as usize] = ln_or_zero(self.d_in[from as usize]);
        self.ln_d_in[to as usize] = ln_or_zero(self.d_in[to as usize]);
        self.assignment[v as usize] = to;
    }

    // ---------------------------------------------- distributed maintenance
    //
    // EDiSt over sharded graph ingest replicates the *blockmodel* on every
    // rank while no rank holds the whole graph, so the matrix cannot always
    // be (re)built from a local `Graph`. These two methods are the escape
    // hatch: construction from explicit cells, and batched application of
    // externally-summed deltas. Both preserve the crate invariant — the
    // state always equals what `from_assignment` would rebuild from the
    // current assignment over the *global* graph — provided the caller's
    // cells/deltas are exact, which the integer-summed collectives in
    // `sbp-dist` guarantee.

    /// Builds a blockmodel from explicit matrix cells instead of a local
    /// [`Graph`] — the distributed construction path, where each rank
    /// contributes the cells of its owned out-edges and the summed result
    /// is identical on every rank.
    ///
    /// `cells` entries accumulate (the same `(row, col)` may appear more
    /// than once); block degrees are derived from the cells. Pass the
    /// *global* `num_vertices` / `total_edge_weight` so the
    /// description-length model term and the dense/sparse selection match
    /// a monolithic [`Blockmodel::from_assignment`] build exactly.
    ///
    /// # Panics
    /// Panics if a label or cell index is out of range.
    pub fn from_parts(
        num_vertices: usize,
        total_edge_weight: Weight,
        assignment: Vec<u32>,
        num_blocks: usize,
        cells: impl IntoIterator<Item = (u32, u32, Weight)>,
    ) -> Self {
        assert_eq!(
            assignment.len(),
            num_vertices,
            "assignment must label every vertex"
        );
        assert!(
            assignment.iter().all(|&b| (b as usize) < num_blocks),
            "assignment label out of range"
        );
        let mut builder = StorageBuilder::new(StorageKind::Auto, num_blocks, total_edge_weight);
        let mut d_out = vec![0 as Weight; num_blocks];
        let mut d_in = vec![0 as Weight; num_blocks];
        for (r, c, w) in cells {
            assert!(
                (r as usize) < num_blocks && (c as usize) < num_blocks,
                "cell ({r}, {c}) out of range for {num_blocks} blocks"
            );
            assert!(w > 0, "cell ({r}, {c}) has non-positive weight {w}");
            builder.add(r, c, w);
            d_out[r as usize] += w;
            d_in[c as usize] += w;
        }
        let storage = builder.finish();
        let ln_d_out = d_out.iter().map(|&w| ln_or_zero(w)).collect();
        let ln_d_in = d_in.iter().map(|&w| ln_or_zero(w)).collect();
        Blockmodel {
            assignment,
            num_blocks,
            storage,
            d_out,
            d_in,
            ln_d_out,
            ln_d_in,
            num_vertices,
            total_edge_weight,
        }
    }

    /// Applies one synchronized batch of externally-computed updates: peer
    /// relabels (no local matrix effect — their matrix contribution
    /// arrives via `cell_deltas`), pre-aggregated matrix cell deltas, and
    /// per-block degree deltas. Refreshes the `ln` caches of every block
    /// whose degree changed.
    ///
    /// `cell_deltas` must contain **at most one entry per cell**, already
    /// summed: per-cell application order is unspecified, so un-aggregated
    /// deltas could transiently drive a cell negative.
    ///
    /// # Panics
    /// Panics (debug) if a delta drives a cell or degree negative — the
    /// caller's bookkeeping is broken, not the input graph.
    pub fn apply_dist_sync(
        &mut self,
        relabels: &[(Vertex, u32)],
        cell_deltas: impl IntoIterator<Item = (u32, u32, Weight)>,
        degree_deltas: impl IntoIterator<Item = (u32, Weight, Weight)>,
    ) {
        for &(v, to) in relabels {
            debug_assert!((to as usize) < self.num_blocks);
            self.assignment[v as usize] = to;
        }
        for (r, c, dw) in cell_deltas {
            match dw.cmp(&0) {
                std::cmp::Ordering::Greater => self.storage.add(r, c, dw),
                std::cmp::Ordering::Less => self.storage.sub(r, c, -dw),
                std::cmp::Ordering::Equal => {}
            }
        }
        for (b, d_out, d_in) in degree_deltas {
            let b = b as usize;
            self.d_out[b] += d_out;
            self.d_in[b] += d_in;
            debug_assert!(
                self.d_out[b] >= 0 && self.d_in[b] >= 0,
                "block {b} degree went negative"
            );
            self.ln_d_out[b] = ln_or_zero(self.d_out[b]);
            self.ln_d_in[b] = ln_or_zero(self.d_in[b]);
        }
    }

    /// The DCSBM entropy `S = −Σ M_ij ln(M_ij/(d_out_i · d_in_j))` — the
    /// negative log-likelihood of Eq. 1. Natural log; minimized.
    ///
    /// Computed as a **fixed-shape chunked reduction**: rows are grouped
    /// into `ENTROPY_CHUNK_ROWS`-row chunks (a function of the block
    /// count only), each chunk accumulates row-major with every row in
    /// canonical (ascending) order, and the chunk partials are combined
    /// left to right. Chunks evaluate on the persistent pool when it has
    /// more than one worker, but the summation *shape* never depends on
    /// the worker count, so the f64 sum is bit-identical for any two
    /// blockmodels holding the same integer state — across storage
    /// representations, move histories, and `SBP_THREADS` settings alike.
    pub fn entropy(&self) -> f64 {
        self.entropy_impl(ENTROPY_CHUNK_ROWS, crate::simd::enabled())
    }

    /// [`entropy`](Self::entropy) forced onto the scalar row walk — the
    /// property tests' bit-identity reference.
    #[doc(hidden)]
    pub fn entropy_scalar(&self) -> f64 {
        self.entropy_impl(ENTROPY_CHUNK_ROWS, false)
    }

    /// [`entropy`](Self::entropy) with an explicit chunk size — the
    /// `ENTROPY_CHUNK_ROWS` retune study's bench hook. Changing the chunk
    /// size re-associates the f64 chunk combination, so different chunk
    /// sizes legitimately produce different bits.
    #[doc(hidden)]
    pub fn entropy_with_chunk(&self, chunk_rows: usize) -> f64 {
        self.entropy_impl(chunk_rows, crate::simd::enabled())
    }

    fn entropy_impl(&self, chunk_rows: usize, use_simd: bool) -> f64 {
        let c = self.num_blocks;
        if c <= chunk_rows {
            return self.entropy_rows(0, c as u32, use_simd);
        }
        let bounds: Vec<u32> = (0..c).step_by(chunk_rows).map(|r| r as u32).collect();
        let partials: Vec<f64> = bounds
            .par_iter()
            .map(|&lo| self.entropy_rows(lo, ((lo as usize + chunk_rows).min(c)) as u32, use_simd))
            .collect();
        partials.into_iter().sum()
    }

    /// Entropy terms of rows `lo..hi`, accumulated row-major in canonical
    /// order — one chunk of the fixed-shape reduction. Dense rows go
    /// through the SIMD-dispatched [`crate::simd::entropy_line`]; sparse
    /// rows walk their canonical cells directly.
    fn entropy_rows(&self, lo: u32, hi: u32, use_simd: bool) -> f64 {
        let mut s = 0.0f64;
        for r in lo..hi {
            if self.d_out[r as usize] == 0 {
                continue;
            }
            let ldr = self.ln_d_out[r as usize];
            if let Some(line) = self.dense_row(r) {
                crate::simd::entropy_line(line, &self.ln_d_in, ldr, &mut s, use_simd);
            } else {
                for (c, m) in self.row_iter(r) {
                    debug_assert!(m > 0 && self.d_in[c as usize] > 0);
                    let mf = m as f64;
                    s -= mf * (crate::lntab::ln_int(m) - ldr - self.ln_d_in[c as usize]);
                }
            }
        }
        s
    }

    /// Full description length (paper Eq. 2):
    /// `DL = E·h(C²/E) + V·ln(C) + S`.
    pub fn description_length(&self) -> f64 {
        model_description_length(self.num_vertices, self.total_edge_weight, self.num_blocks)
            + self.entropy()
    }

    /// Marks which blocks currently have at least one member.
    fn occupied_blocks(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_blocks];
        for &b in &self.assignment {
            seen[b as usize] = true;
        }
        seen
    }

    /// Counts blocks that currently have at least one member.
    pub fn num_nonempty_blocks(&self) -> usize {
        self.occupied_blocks().iter().filter(|&&x| x).count()
    }

    /// Returns a copy with blocks relabeled to the dense range
    /// `0..num_nonempty_blocks` (ascending by old label) and the matrix
    /// rebuilt — re-running the dense/sparse selection for the new block
    /// count. Used after merge phases.
    pub fn compacted(&self, graph: &Graph) -> Blockmodel {
        let seen = self.occupied_blocks();
        let mut map = vec![u32::MAX; self.num_blocks];
        let mut next = 0u32;
        for (old, &occupied) in seen.iter().enumerate() {
            if occupied {
                map[old] = next;
                next += 1;
            }
        }
        let assignment: Vec<u32> = self.assignment.iter().map(|&b| map[b as usize]).collect();
        Blockmodel::from_assignment(graph, assignment, next as usize)
    }

    /// All nonzero cells as `(row, col, weight)` in row-major iteration
    /// order. Canonical line iteration makes this ascending by `(r, c)`
    /// with no explicit sort — `validate` compares these sequences
    /// directly, so a representation that broke canonical order would be
    /// caught even if it held the right integers.
    fn cells_canonical(&self) -> Vec<(u32, u32, Weight)> {
        let mut cells = Vec::new();
        for r in 0..self.num_blocks as u32 {
            for (c, m) in self.row_iter(r) {
                cells.push((r, c, m));
            }
        }
        debug_assert!(cells.is_sorted(), "line iteration lost canonical order");
        cells
    }

    /// Same, but gathered through the column side (transpose consistency).
    fn cells_sorted_via_cols(&self) -> Vec<(u32, u32, Weight)> {
        let mut cells = Vec::new();
        for c in 0..self.num_blocks as u32 {
            for (r, m) in self.col_iter(c) {
                cells.push((r, c, m));
            }
        }
        cells.sort_unstable();
        cells
    }

    /// Verifies every incremental invariant against a from-scratch rebuild.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let rebuilt = Blockmodel::from_assignment_with(
            graph,
            self.assignment.clone(),
            self.num_blocks,
            self.storage_kind(),
        );
        if self.cells_canonical() != rebuilt.cells_canonical() {
            return Err("matrix rows out of sync with assignment".into());
        }
        if self.cells_sorted_via_cols() != self.cells_canonical() {
            return Err("transpose out of sync with rows".into());
        }
        if self.d_out != rebuilt.d_out || self.d_in != rebuilt.d_in {
            return Err("degree vectors out of sync".into());
        }
        for b in 0..self.num_blocks {
            if (self.ln_d_out[b] - ln_or_zero(self.d_out[b])).abs() > 1e-12
                || (self.ln_d_in[b] - ln_or_zero(self.d_in[b])).abs() > 1e-12
            {
                return Err(format!("ln cache stale for block {b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one edge: a classic 2-community graph.
    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    fn two_block_assignment() -> Vec<u32> {
        vec![0, 0, 0, 1, 1, 1]
    }

    /// Runs a check under both storage representations.
    fn for_both_kinds(f: impl Fn(StorageKind)) {
        f(StorageKind::Dense);
        f(StorageKind::Sparse);
    }

    #[test]
    fn from_assignment_counts_edges() {
        for_both_kinds(|kind| {
            let g = two_triangles();
            let bm = Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, kind);
            assert_eq!(bm.get(0, 0), 3);
            assert_eq!(bm.get(1, 1), 3);
            assert_eq!(bm.get(0, 1), 1);
            assert_eq!(bm.get(1, 0), 0);
            assert_eq!(bm.d_out(0), 4);
            assert_eq!(bm.d_in(0), 3);
            assert_eq!(bm.d_total(1), 7);
        });
    }

    #[test]
    fn auto_selects_by_threshold() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        assert_eq!(bm.storage_kind(), StorageKind::Dense);
        // Forcing sparse is always allowed.
        let bm =
            Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, StorageKind::Sparse);
        assert_eq!(bm.storage_kind(), StorageKind::Sparse);
    }

    #[test]
    fn row_and_col_iters_agree_across_kinds() {
        // Exact sequence equality, NOT sorted-then-compared: canonical
        // iteration means the sparse walk reproduces the dense walk
        // element for element.
        let g = two_triangles();
        let dense =
            Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, StorageKind::Dense);
        let sparse =
            Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, StorageKind::Sparse);
        for r in 0..2u32 {
            let a: Vec<_> = dense.row_iter(r).collect();
            let b: Vec<_> = sparse.row_iter(r).collect();
            assert_eq!(a, b, "row {r}");
            assert!(a.is_sorted(), "row {r} not canonical");
            let a: Vec<_> = dense.col_iter(r).collect();
            let b: Vec<_> = sparse.col_iter(r).collect();
            assert_eq!(a, b, "col {r}");
            assert!(a.is_sorted(), "col {r} not canonical");
        }
    }

    /// The tentpole guarantee at unit scale: after an arbitrary move
    /// history, sparse lines still iterate in ascending order and the
    /// entropy sum is bit-identical to a fresh rebuild of the same state.
    #[test]
    fn sparse_iteration_is_canonical_after_moves() {
        let g = two_triangles();
        let mut bm =
            Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, StorageKind::Sparse);
        for (v, to) in [(2u32, 1u32), (5, 0), (2, 0), (0, 1), (5, 1), (0, 0)] {
            bm.move_vertex(&g, v, to);
        }
        let rebuilt =
            Blockmodel::from_assignment_with(&g, bm.assignment().to_vec(), 2, StorageKind::Sparse);
        for r in 0..2u32 {
            let moved: Vec<_> = bm.row_iter(r).collect();
            assert!(moved.is_sorted(), "row {r} lost canonical order");
            assert_eq!(
                moved,
                rebuilt.row_iter(r).collect::<Vec<_>>(),
                "row {r} depends on move history"
            );
        }
        assert_eq!(bm.entropy().to_bits(), rebuilt.entropy().to_bits());
        assert_eq!(
            bm.description_length().to_bits(),
            rebuilt.description_length().to_bits()
        );
    }

    #[test]
    fn identity_blockmodel() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        assert_eq!(bm.num_blocks(), 6);
        assert_eq!(bm.get(0, 1), 1);
        assert_eq!(bm.get(1, 0), 0);
        bm.validate(&g).unwrap();
    }

    #[test]
    fn move_vertex_keeps_invariants() {
        for_both_kinds(|kind| {
            let g = two_triangles();
            let mut bm = Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, kind);
            bm.move_vertex(&g, 2, 1);
            bm.validate(&g).unwrap();
            assert_eq!(bm.block_of(2), 1);
            // Edges with both endpoints in {2,3,4,5}: 3->4, 4->5, 5->3, 2->3.
            assert_eq!(bm.get(1, 1), 4);
        });
    }

    #[test]
    fn move_vertex_roundtrip_restores_state() {
        for_both_kinds(|kind| {
            let g = two_triangles();
            let mut bm = Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, kind);
            let before_entropy = bm.entropy();
            bm.move_vertex(&g, 0, 1);
            bm.move_vertex(&g, 0, 0);
            bm.validate(&g).unwrap();
            assert!((bm.entropy() - before_entropy).abs() < 1e-12);
        });
    }

    #[test]
    fn move_is_noop_when_same_block() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let s = bm.entropy();
        bm.move_vertex(&g, 0, 0);
        assert_eq!(bm.entropy(), s);
        bm.validate(&g).unwrap();
    }

    #[test]
    fn self_loops_move_correctly() {
        for_both_kinds(|kind| {
            let g = Graph::from_edges(3, vec![(0, 0, 2), (0, 1, 1), (2, 0, 1)]);
            let mut bm = Blockmodel::from_assignment_with(&g, vec![0, 1, 1], 2, kind);
            assert_eq!(bm.get(0, 0), 2);
            bm.move_vertex(&g, 0, 1);
            bm.validate(&g).unwrap();
            assert_eq!(bm.get(1, 1), 4); // self-loop + 0->1 + 2->0 all inside block 1
            assert_eq!(bm.get(0, 0), 0);
        });
    }

    #[test]
    fn entropy_matches_manual_computation() {
        for_both_kinds(|kind| {
            let g = two_triangles();
            let bm = Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, kind);
            // Cells: (0,0)=3 (d 4,3), (0,1)=1 (4,4), (1,1)=3 (3,4)
            let manual = -(3.0 * (3.0f64 / (4.0 * 3.0)).ln()
                + 1.0 * (1.0f64 / (4.0 * 4.0)).ln()
                + 3.0 * (3.0f64 / (3.0 * 4.0)).ln());
            assert!((bm.entropy() - manual).abs() < 1e-12);
        });
    }

    #[test]
    fn description_length_adds_model_term() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let expected = crate::model_description_length(6, 7, 2) + bm.entropy();
        assert!((bm.description_length() - expected).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_has_lower_dl_than_bad_partition() {
        let g = two_triangles();
        let good = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let bad = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        assert!(good.description_length() < bad.description_length());
    }

    #[test]
    fn compacted_relabels_densely() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![5, 5, 5, 2, 2, 2], 8);
        assert_eq!(bm.num_nonempty_blocks(), 2);
        let c = bm.compacted(&g);
        assert_eq!(c.num_blocks(), 2);
        // Ascending by old label: old 2 -> 0, old 5 -> 1.
        assert_eq!(c.assignment(), &[1, 1, 1, 0, 0, 0]);
        c.validate(&g).unwrap();
    }

    #[test]
    fn entropy_of_identity_on_simple_graph() {
        // Single edge between two singleton blocks: S = -1*ln(1/(1*1)) = 0.
        let g = Graph::from_edges(2, vec![(0, 1, 1)]);
        let bm = Blockmodel::identity(&g);
        assert!(bm.entropy().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_assignment_panics() {
        let g = two_triangles();
        Blockmodel::from_assignment(&g, vec![0, 0, 0, 2, 2, 2], 2);
    }

    #[test]
    fn from_parts_matches_from_assignment() {
        let g = two_triangles();
        let assignment = two_block_assignment();
        let whole = Blockmodel::from_assignment(&g, assignment.clone(), 2);
        // Feed the arc-derived cells in two interleaved halves with
        // repeated keys — accumulation must land on the same state.
        let cells: Vec<(u32, u32, i64)> = g
            .arcs()
            .map(|(s, d, w)| (assignment[s as usize], assignment[d as usize], w))
            .collect();
        let parts = Blockmodel::from_parts(
            g.num_vertices(),
            g.total_edge_weight(),
            assignment,
            2,
            cells,
        );
        for r in 0..2u32 {
            for c in 0..2u32 {
                assert_eq!(whole.get(r, c), parts.get(r, c));
            }
            assert_eq!(whole.d_out(r), parts.d_out(r));
            assert_eq!(whole.d_in(r), parts.d_in(r));
            assert_eq!(whole.ln_d_out(r).to_bits(), parts.ln_d_out(r).to_bits());
        }
        assert_eq!(
            whole.description_length().to_bits(),
            parts.description_length().to_bits()
        );
        parts.validate(&g).unwrap();
    }

    #[test]
    fn apply_dist_sync_equals_move_vertex() {
        for_both_kinds(|kind| {
            // Apply vertex 2's move 0→1 once through move_vertex and once
            // through externally-computed deltas; states must agree.
            let g = two_triangles();
            let mut via_move =
                Blockmodel::from_assignment_with(&g, two_block_assignment(), 2, kind);
            let mut via_sync = via_move.clone();
            via_move.move_vertex(&g, 2, 1);

            let prev = two_block_assignment();
            let mut next = prev.clone();
            next[2] = 1;
            let mut deltas: std::collections::BTreeMap<(u32, u32), i64> =
                std::collections::BTreeMap::new();
            for (s, d, w) in g.arcs() {
                if s == 2 || d == 2 {
                    *deltas
                        .entry((prev[s as usize], prev[d as usize]))
                        .or_insert(0) -= w;
                    *deltas
                        .entry((next[s as usize], next[d as usize]))
                        .or_insert(0) += w;
                }
            }
            via_sync.apply_dist_sync(
                &[(2, 1)],
                deltas.into_iter().map(|((r, c), dw)| (r, c, dw)),
                [
                    (0u32, -g.out_degree(2), -g.in_degree(2)),
                    (1u32, g.out_degree(2), g.in_degree(2)),
                ],
            );
            assert_eq!(via_move.assignment(), via_sync.assignment());
            for r in 0..2u32 {
                for c in 0..2u32 {
                    assert_eq!(via_move.get(r, c), via_sync.get(r, c), "{kind:?}");
                }
                assert_eq!(via_move.d_out(r), via_sync.d_out(r));
                assert_eq!(via_move.ln_d_in(r).to_bits(), via_sync.ln_d_in(r).to_bits());
            }
            via_sync.validate(&g).unwrap();
        });
    }
}

//! The degree-corrected stochastic blockmodel state.

use crate::fxhash::FxHashMap;
use crate::model_description_length;
use sbp_graph::{Graph, Vertex, Weight};

/// The blockmodel: a vertex→block assignment plus the inter-block
/// edge-count matrix `M` in sparse form.
///
/// Per the paper's §III-A optimizations, `M` is stored as a vector of hash
/// maps (one per row) **and** its transpose (one map per column), so both
/// row- and column-wise traversal are O(nnz-of-line). Block degree vectors
/// are maintained incrementally.
///
/// Invariant maintained by every mutator: `M`, the transpose, and the
/// degree vectors always equal what [`Blockmodel::from_assignment`] would
/// rebuild from the current assignment. `validate` checks this in tests.
#[derive(Clone, Debug)]
pub struct Blockmodel {
    assignment: Vec<u32>,
    num_blocks: usize,
    rows: Vec<FxHashMap<u32, Weight>>,
    cols: Vec<FxHashMap<u32, Weight>>,
    d_out: Vec<Weight>,
    d_in: Vec<Weight>,
    num_vertices: usize,
    total_edge_weight: Weight,
}

impl Blockmodel {
    /// Builds the blockmodel implied by `assignment` over `graph`.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the vertex count or any
    /// label is `>= num_blocks`.
    pub fn from_assignment(graph: &Graph, assignment: Vec<u32>, num_blocks: usize) -> Self {
        assert_eq!(
            assignment.len(),
            graph.num_vertices(),
            "assignment must label every vertex"
        );
        assert!(
            assignment.iter().all(|&b| (b as usize) < num_blocks),
            "assignment label out of range"
        );
        let mut rows: Vec<FxHashMap<u32, Weight>> = vec![FxHashMap::default(); num_blocks];
        let mut cols: Vec<FxHashMap<u32, Weight>> = vec![FxHashMap::default(); num_blocks];
        let mut d_out = vec![0 as Weight; num_blocks];
        let mut d_in = vec![0 as Weight; num_blocks];
        for (src, dst, w) in graph.arcs() {
            let (r, c) = (assignment[src as usize], assignment[dst as usize]);
            *rows[r as usize].entry(c).or_insert(0) += w;
            *cols[c as usize].entry(r).or_insert(0) += w;
            d_out[r as usize] += w;
            d_in[c as usize] += w;
        }
        Blockmodel {
            assignment,
            num_blocks,
            rows,
            cols,
            d_out,
            d_in,
            num_vertices: graph.num_vertices(),
            total_edge_weight: graph.total_edge_weight(),
        }
    }

    /// The identity blockmodel: every vertex in its own block (`C = V`),
    /// the starting point of the agglomerative search.
    pub fn identity(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        Self::from_assignment(graph, (0..n as u32).collect(), n)
    }

    /// Number of blocks `C` (the label-space size; empty blocks count until
    /// [`Blockmodel::compacted`] relabels).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes self, returning the assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Block of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: Vertex) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Total edge weight `E` of the underlying graph.
    #[inline]
    pub fn total_edge_weight(&self) -> Weight {
        self.total_edge_weight
    }

    /// Edge count between blocks `r` and `c` (`M[r][c]`).
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> Weight {
        self.rows[r as usize].get(&c).copied().unwrap_or(0)
    }

    /// Sparse row `r` of `M`.
    #[inline]
    pub fn row(&self, r: u32) -> &FxHashMap<u32, Weight> {
        &self.rows[r as usize]
    }

    /// Sparse column `c` of `M` (the stored transpose row).
    #[inline]
    pub fn col(&self, c: u32) -> &FxHashMap<u32, Weight> {
        &self.cols[c as usize]
    }

    /// Weighted out-degree of block `r`.
    #[inline]
    pub fn d_out(&self, r: u32) -> Weight {
        self.d_out[r as usize]
    }

    /// Weighted in-degree of block `c`.
    #[inline]
    pub fn d_in(&self, c: u32) -> Weight {
        self.d_in[c as usize]
    }

    /// Weighted total degree of block `b`.
    #[inline]
    pub fn d_total(&self, b: u32) -> Weight {
        self.d_out[b as usize] + self.d_in[b as usize]
    }

    /// Moves vertex `v` to block `to`, incrementally updating `M`, the
    /// transpose and the degree vectors. No-op if `v` is already there.
    pub fn move_vertex(&mut self, graph: &Graph, v: Vertex, to: u32) {
        let from = self.assignment[v as usize];
        if from == to {
            return;
        }
        debug_assert!((to as usize) < self.num_blocks);
        for &(u, w) in graph.out_edges(v) {
            if u == v {
                // Self-loop: both endpoints move together. Handled once
                // here; skipped in the in-edge loop below.
                self.cell_sub(from, from, w);
                self.cell_add(to, to, w);
            } else {
                let t = self.assignment[u as usize];
                self.cell_sub(from, t, w);
                self.cell_add(to, t, w);
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u == v {
                continue;
            }
            let t = self.assignment[u as usize];
            self.cell_sub(t, from, w);
            self.cell_add(t, to, w);
        }
        let (ov, iv) = (graph.out_degree(v), graph.in_degree(v));
        self.d_out[from as usize] -= ov;
        self.d_out[to as usize] += ov;
        self.d_in[from as usize] -= iv;
        self.d_in[to as usize] += iv;
        self.assignment[v as usize] = to;
    }

    #[inline]
    fn cell_add(&mut self, r: u32, c: u32, w: Weight) {
        *self.rows[r as usize].entry(c).or_insert(0) += w;
        *self.cols[c as usize].entry(r).or_insert(0) += w;
    }

    #[inline]
    fn cell_sub(&mut self, r: u32, c: u32, w: Weight) {
        let e = self.rows[r as usize]
            .get_mut(&c)
            .unwrap_or_else(|| panic!("subtracting from empty cell ({r}, {c})"));
        *e -= w;
        debug_assert!(*e >= 0, "cell ({r}, {c}) went negative");
        if *e == 0 {
            self.rows[r as usize].remove(&c);
        }
        let e = self.cols[c as usize]
            .get_mut(&r)
            .expect("transpose out of sync");
        *e -= w;
        if *e == 0 {
            self.cols[c as usize].remove(&r);
        }
    }

    /// The DCSBM entropy `S = −Σ M_ij ln(M_ij/(d_out_i · d_in_j))` — the
    /// negative log-likelihood of Eq. 1. Natural log; minimized.
    pub fn entropy(&self) -> f64 {
        let mut s = 0.0f64;
        for (r, row) in self.rows.iter().enumerate() {
            let dr = self.d_out[r];
            if dr == 0 {
                continue;
            }
            let ldr = (dr as f64).ln();
            for (&c, &m) in row {
                let di = self.d_in[c as usize];
                debug_assert!(m > 0 && di > 0);
                let mf = m as f64;
                s -= mf * (mf.ln() - ldr - (di as f64).ln());
            }
        }
        s
    }

    /// Full description length (paper Eq. 2):
    /// `DL = E·h(C²/E) + V·ln(C) + S`.
    pub fn description_length(&self) -> f64 {
        model_description_length(self.num_vertices, self.total_edge_weight, self.num_blocks)
            + self.entropy()
    }

    /// Counts blocks that currently have at least one member.
    pub fn num_nonempty_blocks(&self) -> usize {
        let mut seen = vec![false; self.num_blocks];
        for &b in &self.assignment {
            seen[b as usize] = true;
        }
        seen.iter().filter(|&&x| x).count()
    }

    /// Returns a copy with blocks relabeled to the dense range
    /// `0..num_nonempty_blocks` (ascending by old label) and the matrix
    /// rebuilt. Used after merge phases.
    pub fn compacted(&self, graph: &Graph) -> Blockmodel {
        let mut map = vec![u32::MAX; self.num_blocks];
        let mut next = 0u32;
        for &b in &self.assignment {
            if map[b as usize] == u32::MAX {
                map[b as usize] = u32::MAX - 1; // mark seen, assign below
            }
        }
        for (old, slot) in map.iter_mut().enumerate() {
            let _ = old;
            if *slot == u32::MAX - 1 {
                *slot = next;
                next += 1;
            }
        }
        let assignment: Vec<u32> = self.assignment.iter().map(|&b| map[b as usize]).collect();
        Blockmodel::from_assignment(graph, assignment, next as usize)
    }

    /// Verifies every incremental invariant against a from-scratch rebuild.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let rebuilt = Blockmodel::from_assignment(graph, self.assignment.clone(), self.num_blocks);
        for r in 0..self.num_blocks {
            if self.rows[r] != rebuilt.rows[r] {
                return Err(format!("row {r} out of sync with assignment"));
            }
            if self.cols[r] != rebuilt.cols[r] {
                return Err(format!("col {r} out of sync with assignment"));
            }
        }
        if self.d_out != rebuilt.d_out || self.d_in != rebuilt.d_in {
            return Err("degree vectors out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one edge: a classic 2-community graph.
    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    fn two_block_assignment() -> Vec<u32> {
        vec![0, 0, 0, 1, 1, 1]
    }

    #[test]
    fn from_assignment_counts_edges() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        assert_eq!(bm.get(0, 0), 3);
        assert_eq!(bm.get(1, 1), 3);
        assert_eq!(bm.get(0, 1), 1);
        assert_eq!(bm.get(1, 0), 0);
        assert_eq!(bm.d_out(0), 4);
        assert_eq!(bm.d_in(0), 3);
        assert_eq!(bm.d_total(1), 7);
    }

    #[test]
    fn identity_blockmodel() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        assert_eq!(bm.num_blocks(), 6);
        assert_eq!(bm.get(0, 1), 1);
        assert_eq!(bm.get(1, 0), 0);
        bm.validate(&g).unwrap();
    }

    #[test]
    fn move_vertex_keeps_invariants() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        bm.move_vertex(&g, 2, 1);
        bm.validate(&g).unwrap();
        assert_eq!(bm.block_of(2), 1);
        // Edges with both endpoints in {2,3,4,5}: 3->4, 4->5, 5->3, 2->3.
        assert_eq!(bm.get(1, 1), 4);
    }

    #[test]
    fn move_vertex_roundtrip_restores_state() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let before_entropy = bm.entropy();
        bm.move_vertex(&g, 0, 1);
        bm.move_vertex(&g, 0, 0);
        bm.validate(&g).unwrap();
        assert!((bm.entropy() - before_entropy).abs() < 1e-12);
    }

    #[test]
    fn move_is_noop_when_same_block() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let s = bm.entropy();
        bm.move_vertex(&g, 0, 0);
        assert_eq!(bm.entropy(), s);
        bm.validate(&g).unwrap();
    }

    #[test]
    fn self_loops_move_correctly() {
        let g = Graph::from_edges(3, vec![(0, 0, 2), (0, 1, 1), (2, 0, 1)]);
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 1], 2);
        assert_eq!(bm.get(0, 0), 2);
        bm.move_vertex(&g, 0, 1);
        bm.validate(&g).unwrap();
        assert_eq!(bm.get(1, 1), 4); // self-loop + 0->1 + 2->0 all inside block 1
        assert_eq!(bm.get(0, 0), 0);
    }

    #[test]
    fn entropy_matches_manual_computation() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        // Cells: (0,0)=3 (d 4,3), (0,1)=1 (4,4), (1,1)=3 (3,4)
        let manual = -(3.0 * (3.0f64 / (4.0 * 3.0)).ln()
            + 1.0 * (1.0f64 / (4.0 * 4.0)).ln()
            + 3.0 * (3.0f64 / (3.0 * 4.0)).ln());
        assert!((bm.entropy() - manual).abs() < 1e-12);
    }

    #[test]
    fn description_length_adds_model_term() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let expected = crate::model_description_length(6, 7, 2) + bm.entropy();
        assert!((bm.description_length() - expected).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_has_lower_dl_than_bad_partition() {
        let g = two_triangles();
        let good = Blockmodel::from_assignment(&g, two_block_assignment(), 2);
        let bad = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        assert!(good.description_length() < bad.description_length());
    }

    #[test]
    fn compacted_relabels_densely() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![5, 5, 5, 2, 2, 2], 8);
        assert_eq!(bm.num_nonempty_blocks(), 2);
        let c = bm.compacted(&g);
        assert_eq!(c.num_blocks(), 2);
        // Ascending by old label: old 2 -> 0, old 5 -> 1.
        assert_eq!(c.assignment(), &[1, 1, 1, 0, 0, 0]);
        c.validate(&g).unwrap();
    }

    #[test]
    fn entropy_of_identity_on_simple_graph() {
        // Single edge between two singleton blocks: S = -1*ln(1/(1*1)) = 0.
        let g = Graph::from_edges(2, vec![(0, 1, 1)]);
        let bm = Blockmodel::identity(&g);
        assert!(bm.entropy().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_assignment_panics() {
        let g = two_triangles();
        Blockmodel::from_assignment(&g, vec![0, 0, 0, 2, 2, 2], 2);
    }
}

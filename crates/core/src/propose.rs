//! The proposal distribution and Metropolis–Hastings correction.
//!
//! Follows the Graph-Challenge reference formulation (Peixoto '14; paper
//! §II-B): to propose a new block for vertex `v`, pick a random neighbor
//! `u` (edge-weight proportional), let `t = b(u)`; with probability
//! `B/(d_t + B)` propose a uniformly random block, otherwise propose a
//! block drawn proportionally to row + column `t` of the blockmodel. The
//! same machinery proposes merge targets for blocks (`agg = true`), where
//! the current block is excluded.
//!
//! The weighted scans walk matrix lines in canonical (ascending) order —
//! see [`crate::line`] — so a given random draw selects the same block on
//! every replica holding the same logical blockmodel, whatever storage
//! layout or move history produced it. This is one of the three
//! iteration sites the sharded ≡ monolithic bit-identity depends on (the
//! others are the ΔS kernels and the entropy sum).

use crate::blockmodel::Blockmodel;
use crate::delta::LineDelta;
use rand::Rng;
use sbp_graph::{Graph, Vertex, Weight};

/// Proposes a new block for vertex `v` (non-agglomerative: the current
/// block may be proposed, yielding a no-op move).
///
/// Returns `None` for graphs with a single block (nothing to propose).
pub fn propose_for_vertex<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
) -> Option<u32> {
    let b = bm.num_blocks() as u32;
    if b <= 1 {
        return None;
    }
    // Total neighbor weight excluding self-loops (a self-loop tells us
    // nothing about other blocks).
    let self_w: Weight = graph
        .out_edges(v)
        .iter()
        .filter(|&&(u, _)| u == v)
        .map(|&(_, w)| w)
        .sum();
    let d_excl = graph.degree(v) - 2 * self_w;
    if d_excl <= 0 {
        // Isolated (or self-loop-only) vertex: uniform proposal.
        return Some(rng.random_range(0..b));
    }
    // Pick the neighbor edge weight-proportionally via a two-pass scan.
    let mut x = rng.random_range(0..d_excl);
    let mut t = None;
    for &(u, w) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
        if u == v {
            continue;
        }
        if x < w {
            t = Some(bm.block_of(u));
            break;
        }
        x -= w;
    }
    let t = t.expect("weighted scan must terminate within total weight");
    Some(propose_from_anchor(rng, bm, t, None))
}

/// Proposes a merge target for block `r` (agglomerative: `r` itself is
/// excluded). Returns `None` when no distinct block exists.
pub fn propose_for_block<R: Rng + ?Sized>(rng: &mut R, bm: &Blockmodel, r: u32) -> Option<u32> {
    let b = bm.num_blocks() as u32;
    if b <= 1 {
        return None;
    }
    // Neighbor blocks of r with weights M[r][t] + M[t][r], diagonal excluded.
    let mut total: Weight = 0;
    for (c, m) in bm.row_iter(r) {
        if c != r {
            total += m;
        }
    }
    for (x, m) in bm.col_iter(r) {
        if x != r {
            total += m;
        }
    }
    if total <= 0 {
        // Isolated block: uniform among the others.
        return Some(uniform_excluding(rng, b, r));
    }
    let mut x = rng.random_range(0..total);
    let mut t = None;
    'outer: {
        for (c, m) in bm.row_iter(r) {
            if c == r {
                continue;
            }
            if x < m {
                t = Some(c);
                break 'outer;
            }
            x -= m;
        }
        for (y, m) in bm.col_iter(r) {
            if y == r {
                continue;
            }
            if x < m {
                t = Some(y);
                break 'outer;
            }
            x -= m;
        }
    }
    let t = t.expect("weighted scan must terminate within total weight");
    Some(propose_from_anchor(rng, bm, t, Some(r)))
}

/// The second proposal stage shared by vertex moves and merges: given the
/// anchor block `t` (the block of the sampled neighbor), either jump
/// uniformly (probability `B/(d_t + B)`) or follow a random edge incident
/// to `t` in the blockmodel. `exclude` implements the agglomerative rule
/// that a block cannot merge into itself.
fn propose_from_anchor<R: Rng + ?Sized>(
    rng: &mut R,
    bm: &Blockmodel,
    t: u32,
    exclude: Option<u32>,
) -> u32 {
    let b = bm.num_blocks() as u32;
    let dt = bm.d_total(t);
    let uniform_p = b as f64 / (dt as f64 + b as f64);
    if dt == 0 || rng.random::<f64>() < uniform_p {
        return match exclude {
            Some(r) => uniform_excluding(rng, b, r),
            None => rng.random_range(0..b),
        };
    }
    // Multinomial over row t ++ col t (total mass d_total(t)).
    let mut x = rng.random_range(0..dt);
    let mut s = None;
    'outer: {
        for (c, m) in bm.row_iter(t) {
            if x < m {
                s = Some(c);
                break 'outer;
            }
            x -= m;
        }
        for (y, m) in bm.col_iter(t) {
            if x < m {
                s = Some(y);
                break 'outer;
            }
            x -= m;
        }
    }
    let s = s.expect("weighted scan must terminate within d_total(t)");
    match exclude {
        Some(r) if s == r => uniform_excluding(rng, b, r),
        _ => s,
    }
}

fn uniform_excluding<R: Rng + ?Sized>(rng: &mut R, b: u32, excl: u32) -> u32 {
    debug_assert!(b >= 2);
    let s = rng.random_range(0..b - 1);
    if s >= excl {
        s + 1
    } else {
        s
    }
}

/// The Metropolis–Hastings correction `p(s→r) / p(r→s)` for moving vertex
/// `v` from `r = delta.from` to `s = delta.to` (Graph-Challenge reference
/// formulation):
///
/// `p(r→s) ∝ Σ_t w_t · (M[t][s] + M[s][t] + 1) / (d_t + B)`
///
/// with `t` ranging over the blocks of `v`'s (non-self) neighbors, `w_t`
/// the edge weight between `v` and block `t`, forward evaluated on the
/// current matrix and backward on the post-move matrix implied by `delta`.
///
/// Thin wrapper over the allocation-free kernel in [`crate::delta`]; sweep
/// loops use [`crate::delta::DeltaScratch::hastings_correction`] directly.
pub fn hastings_correction(graph: &Graph, bm: &Blockmodel, v: Vertex, delta: &LineDelta) -> f64 {
    crate::delta::hastings_for_delta(graph, bm, v, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::vertex_move_delta;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn vertex_proposals_are_in_range() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            for v in 0..6u32 {
                let s = propose_for_vertex(&mut rng, &g, &bm, v).unwrap();
                assert!(s < 2);
            }
        }
    }

    #[test]
    fn block_proposals_never_return_self() {
        let g = two_triangles();
        let bm = Blockmodel::identity(&g);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            for r in 0..6u32 {
                let s = propose_for_block(&mut rng, &bm, r).unwrap();
                assert_ne!(s, r);
                assert!(s < 6);
            }
        }
    }

    #[test]
    fn single_block_proposals_return_none() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0; 6], 1);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(propose_for_vertex(&mut rng, &g, &bm, 0).is_none());
        assert!(propose_for_block(&mut rng, &bm, 0).is_none());
    }

    #[test]
    fn isolated_vertex_gets_uniform_proposals() {
        let g = Graph::from_edges(4, vec![(0, 1, 1), (1, 0, 1)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 2, 3], 4);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[propose_for_vertex(&mut rng, &g, &bm, 3).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform proposal missed a block");
    }

    #[test]
    fn proposals_favor_connected_blocks() {
        // Vertex 2 sits in block 0 with an edge into block 1; block 2 is a
        // far-away clique it has no contact with. Proposals should hit
        // block 1 much more often than block 2.
        let mut edges = vec![
            (0, 1, 5),
            (1, 2, 5),
            (2, 0, 5),
            (3, 4, 5),
            (4, 5, 5),
            (5, 3, 5),
            (2, 3, 5),
        ];
        // A third clique 6,7,8 disconnected from everything.
        edges.extend_from_slice(&[(6, 7, 5), (7, 8, 5), (8, 6, 5)]);
        let g = Graph::from_edges(9, edges);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[propose_for_vertex(&mut rng, &g, &bm, 2).unwrap() as usize] += 1;
        }
        assert!(
            counts[1] > 3 * counts[2],
            "connected block not favored: {counts:?}"
        );
    }

    #[test]
    fn hastings_correction_is_reciprocal() {
        // The correction for r→s evaluated pre-move must be the reciprocal
        // of the s→r correction evaluated post-move.
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let v = 2u32;
        let d_fwd = vertex_move_delta(&g, &bm, v, 1);
        let h_fwd = hastings_correction(&g, &bm, v, &d_fwd);
        bm.move_vertex(&g, v, 1);
        let d_bwd = vertex_move_delta(&g, &bm, v, 0);
        let h_bwd = hastings_correction(&g, &bm, v, &d_bwd);
        assert!(
            (h_fwd * h_bwd - 1.0).abs() < 1e-9,
            "h_fwd={h_fwd} h_bwd={h_bwd}"
        );
    }

    #[test]
    fn hastings_correction_positive_and_finite() {
        let g = two_triangles();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2], 3);
        for v in 0..6u32 {
            for to in 0..3u32 {
                if to == bm.block_of(v) {
                    continue;
                }
                let d = vertex_move_delta(&g, &bm, v, to);
                let h = hastings_correction(&g, &bm, v, &d);
                assert!(h.is_finite() && h > 0.0, "v={v} to={to}: h={h}");
            }
        }
    }

    #[test]
    fn uniform_excluding_never_returns_excluded() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            for excl in 0..5u32 {
                let s = uniform_excluding(&mut rng, 5, excl);
                assert_ne!(s, excl);
                assert!(s < 5);
            }
        }
    }
}

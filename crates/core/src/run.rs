//! The unified solver API: one trait, one config, one result shape.
//!
//! Sequential SBP, Hybrid SBP, batch SBP, DC-SBP and EDiSt are the same
//! inference engine under different execution strategies (the paper's
//! framing). This module gives that fact an API: an object-safe
//! [`Solver`] trait whose implementations are interchangeable backends,
//! a shared [`RunConfig`], and a single [`RunOutcome`] carrying the
//! partition, the per-iteration trajectory, timings, and (for
//! distributed backends) the cluster report.
//!
//! Long runs are observable and interruptible: every backend reports
//! [`ProgressEvent`]s through a caller-supplied [`ProgressSink`] and
//! polls a [`CancelToken`] at iteration boundaries, returning the
//! best-so-far bracket entry when cancelled. The `edist` facade crate
//! builds the `Partitioner` builder on top of this module.

use crate::checkpoint::CheckpointState;
use crate::hybrid::HybridConfig;
use crate::sbp::{solve_sbp, IterationStat, McmcStrategy, SbpConfig};
use sbp_graph::{Graph, Vertex};
use sbp_mpi::ClusterReport;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------- cancellation

/// A cheap, cloneable cancellation handle.
///
/// Clone it, hand one copy to the run (via [`RunConfig::cancel`]) and
/// keep the other; calling [`CancelToken::cancel`] from any thread — or
/// from inside a progress callback — makes the solver stop at its next
/// check point and return the best partition found so far, flagged with
/// [`RunOutcome::cancelled`]. Distributed backends coordinate the check
/// through a broadcast so every rank aborts at the same collective.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------- progress

/// What a running solver reports while it works.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// Inference is starting on a graph of this size.
    Started {
        /// Vertices in the graph being partitioned.
        num_vertices: usize,
        /// Blocks in the starting partition.
        num_blocks: usize,
    },
    /// A distributed backend is spawning its simulated cluster.
    ClusterStarted {
        /// Simulated MPI ranks.
        ranks: usize,
    },
    /// A named pipeline stage is starting (e.g. `"sample"`, `"extend"`,
    /// `"local-sbp"`, `"finetune"`).
    PhaseStarted {
        /// Stage label.
        phase: &'static str,
    },
    /// A block-merge phase finished.
    Merged {
        /// Golden-search iteration index.
        iteration: usize,
        /// Block count before the merges.
        from_blocks: usize,
        /// Block count after the merges.
        num_blocks: usize,
    },
    /// One MCMC sweep finished (for distributed backends: one sync point —
    /// rank 0 already holds the broadcast description length there, so
    /// emitting it costs nothing extra). Fine-grained observability for
    /// large-graph runs whose iterations take minutes.
    Sweep {
        /// Golden-search iteration index.
        iteration: usize,
        /// Sweep index within the iteration's MCMC phase.
        sweep: usize,
        /// Description length after the sweep (distributed backends: the
        /// rank-0 broadcast value every replica agreed on).
        dl: f64,
        /// Proposals evaluated during the sweep (distributed backends:
        /// rank 0's local count — the only rank whose events are relayed).
        proposed: usize,
        /// Moves accepted during the sweep (distributed backends: the
        /// exchanged global total every replica applied).
        accepted: usize,
    },
    /// A full merge+MCMC iteration finished.
    Iteration {
        /// Golden-search iteration index.
        iteration: usize,
        /// The iteration's trajectory entry.
        stat: IterationStat,
    },
    /// The run observed its [`CancelToken`] and is returning early.
    Cancelled {
        /// Iteration at which the cancellation was observed.
        iteration: usize,
    },
    /// The run completed normally.
    Finished {
        /// Final number of blocks.
        num_blocks: usize,
        /// Final description length.
        description_length: f64,
    },
}

/// Receives [`ProgressEvent`]s from a running solver.
///
/// Object-safe so backends can thread `&mut dyn ProgressSink` through
/// without generics; distributed backends relay rank 0's events to the
/// caller's sink on the spawning thread.
pub trait ProgressSink {
    /// Called for every event, in order. Keep it cheap: sequential
    /// backends invoke it inline from the optimization loop.
    fn on_event(&mut self, event: &ProgressEvent);
}

/// The silent sink used when no progress callback is registered.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProgress;

impl ProgressSink for NoProgress {
    fn on_event(&mut self, _event: &ProgressEvent) {}
}

/// Adapts any closure into a [`ProgressSink`].
pub struct ProgressFn<F>(pub F);

impl<F: FnMut(&ProgressEvent)> ProgressSink for ProgressFn<F> {
    fn on_event(&mut self, event: &ProgressEvent) {
        (self.0)(event)
    }
}

// -------------------------------------------------------------- config

/// Where and how often to write `.sbpc` golden-loop checkpoints (see
/// [`crate::checkpoint`]).
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// The `.sbpc` file to (over)write. Writes are atomic: a temp file
    /// in the same directory is renamed over `path`, so a crash mid-write
    /// never leaves a torn checkpoint.
    pub path: PathBuf,
    /// Write after every `every`-th golden-loop sync boundary (iteration
    /// end). `1` checkpoints every iteration; values are clamped to ≥ 1.
    pub every: usize,
}

impl CheckpointSpec {
    /// Checkpoint to `path` at every sync boundary.
    pub fn every_boundary(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every: 1,
        }
    }
}

/// Seeds the golden search from an existing partition instead of the
/// identity partition at `C = V` — the incremental re-partitioning entry
/// point used by `sbp-serve` after edge-delta ingest.
///
/// The bracket is seeded at the warm partition's block count, so the
/// search agglomerates down from there rather than re-halving from `V`.
/// When `dirty` is set, only those vertices re-enter MCMC sweeps (the
/// subset-sweep determinism contract makes this exact: a vertex's
/// proposal stream is keyed by `(seed, iteration, sweep, vertex)`, never
/// by which other vertices sweep). The description length is still
/// computed over the full blockmodel, so bracket decisions stay exact.
///
/// Contract: `assignment.len()` must equal the graph's vertex count and
/// every label must be `< num_blocks` — the `Partitioner` facade and the
/// server validate this before building a config.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// Dense starting assignment (labels `0..num_blocks`).
    pub assignment: Vec<u32>,
    /// Block count of the starting assignment.
    pub num_blocks: usize,
    /// When `Some`, only these vertices are swept in MCMC phases
    /// (out-of-range ids are ignored; order and duplicates don't matter).
    /// `None` sweeps every vertex, as a cold run does.
    pub dirty: Option<Vec<Vertex>>,
}

impl WarmStart {
    /// A warm start that sweeps every vertex.
    pub fn new(assignment: Vec<u32>, num_blocks: usize) -> Self {
        WarmStart {
            assignment,
            num_blocks,
            dirty: None,
        }
    }

    /// Restricts MCMC sweeps to the given vertices.
    pub fn with_dirty(mut self, dirty: Vec<Vertex>) -> Self {
        self.dirty = Some(dirty);
        self
    }
}

/// The backend-independent run configuration: the shared SBP
/// hyper-parameters plus the cancellation token and optional
/// checkpoint/resume/warm-start state. Backend-specific knobs (rank
/// counts, cost models, ownership schemes, sampling fractions) live on
/// the backend values themselves.
#[derive(Clone, Debug, Default)]
pub struct RunConfig {
    /// Hyper-parameters of the underlying SBP search, shared by every
    /// backend (the distributed ones run the same golden loop).
    pub sbp: SbpConfig,
    /// Cooperative cancellation handle; `Default` never cancels.
    pub cancel: CancelToken,
    /// When set, the golden loop writes a `.sbpc` snapshot at sync
    /// boundaries (distributed backends: rank 0 writes — every replica
    /// holds identical state there).
    pub checkpoint: Option<CheckpointSpec>,
    /// When set, the golden loop starts from this snapshot instead of
    /// the identity partition; the run is bit-identical to the
    /// uninterrupted one because every RNG stream is keyed by the
    /// (restored) iteration index, never by elapsed state.
    pub resume: Option<CheckpointState>,
    /// When set (and `resume` is not), the golden loop seeds its bracket
    /// from this partition instead of the identity partition. Only
    /// honoured by backends whose [`Solver::supports_warm_start`] is
    /// true; others must be rejected by the caller, never silently run
    /// cold.
    pub warm: Option<WarmStart>,
}

impl RunConfig {
    /// Wraps existing SBP hyper-parameters with a fresh (inert) token.
    pub fn from_sbp(sbp: SbpConfig) -> Self {
        RunConfig {
            sbp,
            cancel: CancelToken::new(),
            checkpoint: None,
            resume: None,
            warm: None,
        }
    }

    /// Default hyper-parameters with the given master seed.
    pub fn seeded(seed: u64) -> Self {
        RunConfig::from_sbp(SbpConfig {
            seed,
            ..SbpConfig::default()
        })
    }

    /// Seeds the golden search from `warm` (builder-style).
    pub fn warm_start(mut self, warm: WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }
}

// -------------------------------------------------------------- result

/// Why a run returned best-so-far instead of completing: the coarse,
/// rank-comparable classification of the `DistError` (see `sbp-dist`)
/// that aborted the schedule. Recorded on [`RunOutcome::degraded`]; the
/// partition is still the best bracket entry found before the failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedReason {
    /// A rank died (injected kill or peer abort observed mid-collective).
    RankFailure,
    /// A collective payload failed to decode on this rank.
    DecodeFailure,
    /// Distributed shard ingest failed before or during the run.
    ShardLoadFailure,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::RankFailure => write!(f, "rank failure"),
            DegradedReason::DecodeFailure => write!(f, "collective decode failure"),
            DegradedReason::ShardLoadFailure => write!(f, "shard ingest failure"),
        }
    }
}

/// The unified result shape every [`Solver`] returns.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Inferred block assignment (dense labels `0..num_blocks`).
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
    /// Per-iteration trajectory of the golden-ratio search (for
    /// DC-SBP, the root fine-tuning trajectory).
    pub iterations: Vec<IterationStat>,
    /// True when the run stopped early on its [`CancelToken`]; the
    /// partition is then the best bracket entry found so far.
    pub cancelled: bool,
    /// Virtual runtime: thread-CPU seconds for single-node backends,
    /// the BSP makespan for distributed ones (see `sbp-mpi`).
    pub virtual_seconds: f64,
    /// Communication/runtime report — `Some` for distributed backends.
    pub cluster: Option<ClusterReport>,
    /// Vertices actually sampled — `Some` for `Sampled` pipelines.
    pub sampled_vertices: Option<usize>,
    /// `Some` when a fault degraded the run: the partition is the best
    /// entry found before the failure, not the converged optimum. Every
    /// surviving rank reports the same classification (coordinated
    /// unwind), though the rank that *detected* a decode failure reports
    /// [`DegradedReason::DecodeFailure`] while its peers observe the
    /// cascade as [`DegradedReason::RankFailure`].
    pub degraded: Option<DegradedReason>,
}

impl RunOutcome {
    /// An empty outcome for the zero-vertex graph.
    pub fn empty() -> Self {
        RunOutcome {
            assignment: Vec::new(),
            num_blocks: 0,
            description_length: 0.0,
            iterations: Vec::new(),
            cancelled: false,
            virtual_seconds: 0.0,
            cluster: None,
            sampled_vertices: None,
            degraded: None,
        }
    }
}

// --------------------------------------------------------------- trait

/// A partitioning backend: one execution strategy of the shared SBP
/// inference engine.
///
/// Object-safe by design — the `edist` facade stores `Box<dyn Solver>`
/// and decorators like `sbp_sample::Sampled` wrap any inner solver.
/// Implementations must be deterministic given `cfg.sbp.seed` (modulo
/// cancellation timing) and must honour `cfg.cancel` at iteration
/// granularity or finer.
pub trait Solver {
    /// Human-readable backend name (e.g. `"edist(ranks=4)"`).
    fn name(&self) -> String;

    /// Runs inference on `graph`, reporting progress to `progress`.
    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome;

    /// Whether this backend honours [`RunConfig::warm_start`]. Defaults
    /// to `false`; callers must reject a warm config for a backend that
    /// returns false rather than let it silently run cold.
    fn supports_warm_start(&self) -> bool {
        false
    }
}

impl<S: Solver + ?Sized> Solver for &S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        (**self).solve(graph, cfg, progress)
    }

    fn supports_warm_start(&self) -> bool {
        (**self).supports_warm_start()
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        (**self).solve(graph, cfg, progress)
    }

    fn supports_warm_start(&self) -> bool {
        (**self).supports_warm_start()
    }
}

// ------------------------------------------------- single-node backends

fn solve_with_strategy(
    graph: &Graph,
    cfg: &RunConfig,
    strategy: McmcStrategy,
    progress: &mut dyn ProgressSink,
) -> RunOutcome {
    let mut cfg = cfg.clone();
    cfg.sbp.strategy = strategy;
    solve_sbp(graph, None, &cfg, progress)
}

/// Sequential SBP: the paper's single-node baseline (Metropolis–Hastings
/// sweeps, Alg. 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl Solver for Sequential {
    fn name(&self) -> String {
        "sequential".into()
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        solve_with_strategy(graph, cfg, McmcStrategy::MetropolisHastings, progress)
    }

    fn supports_warm_start(&self) -> bool {
        true
    }
}

/// Hybrid SBP: sequential high-degree head + chunked asynchronous-Gibbs
/// tail (the paper's intra-rank shared-memory parallelization).
#[derive(Clone, Copy, Debug, Default)]
pub struct Hybrid(pub HybridConfig);

impl Solver for Hybrid {
    fn name(&self) -> String {
        "hybrid".into()
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        solve_with_strategy(graph, cfg, McmcStrategy::Hybrid(self.0), progress)
    }

    fn supports_warm_start(&self) -> bool {
        true
    }
}

/// Batch SBP: whole sweeps evaluated against frozen state
/// (python-reference parallelism). The only strategy whose trajectory is
/// exactly invariant to EDiSt's rank count — see the backend-equivalence
/// tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct Batch;

impl Solver for Batch {
    fn name(&self) -> String {
        "batch".into()
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        solve_with_strategy(graph, cfg, McmcStrategy::Batch, progress)
    }

    fn supports_warm_start(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::fixtures::two_cliques;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn backends_are_object_safe_and_solve() {
        let g = two_cliques(6);
        let cfg = RunConfig::seeded(3);
        let backends: Vec<Box<dyn Solver>> = vec![
            Box::new(Sequential),
            Box::new(Hybrid(HybridConfig {
                parallel: false,
                ..HybridConfig::default()
            })),
            Box::new(Batch),
        ];
        for solver in &backends {
            let out = solver.solve(&g, &cfg, &mut NoProgress);
            assert_eq!(out.assignment.len(), 12, "{}", solver.name());
            assert_eq!(out.num_blocks, 2, "{}", solver.name());
            assert!(!out.cancelled);
            assert!(out.cluster.is_none());
            assert!(!out.iterations.is_empty());
        }
    }

    #[test]
    fn progress_events_bracket_the_run() {
        let g = two_cliques(5);
        let mut events: Vec<String> = Vec::new();
        let mut sink = ProgressFn(|e: &ProgressEvent| {
            events.push(match e {
                ProgressEvent::Started { .. } => "started".into(),
                ProgressEvent::Merged { .. } => "merged".into(),
                ProgressEvent::Iteration { .. } => "iteration".into(),
                ProgressEvent::Finished { .. } => "finished".into(),
                other => format!("{other:?}"),
            });
        });
        let out = Sequential.solve(&g, &RunConfig::seeded(1), &mut sink);
        assert_eq!(events.first().map(String::as_str), Some("started"));
        assert_eq!(events.last().map(String::as_str), Some("finished"));
        let iterations = events.iter().filter(|e| *e == "iteration").count();
        assert_eq!(iterations, out.iterations.len());
    }

    #[test]
    fn pre_cancelled_token_returns_start_partition() {
        let g = two_cliques(6);
        let cfg = RunConfig::seeded(2);
        cfg.cancel.cancel();
        let out = Sequential.solve(&g, &cfg, &mut NoProgress);
        assert!(out.cancelled);
        // Nothing ran: the seeded identity bracket entry comes back.
        assert_eq!(out.num_blocks, 12);
        assert!(out.iterations.is_empty());
    }
}

//! Canonical sparse matrix lines: iteration order is a pure function of
//! the line's *contents*, never of its mutation history.
//!
//! ## Why canonical order is load-bearing
//!
//! Three observable computations iterate block-matrix lines: the weighted
//! proposal scans ([`crate::propose`]), the ΔS/Hastings kernels
//! ([`crate::delta`]), and the f64 entropy/description-length sums
//! ([`crate::Blockmodel::entropy`]). With hash-map rows those iterations
//! visit cells in layout order — a function of insertion history — so two
//! replicas holding the *same integers* could consume different weighted-
//! scan prefixes and accumulate the same entropy terms in different f64
//! order. That made the sharded ≡ monolithic EDiSt guarantee hold only in
//! the dense regime (`C ≤ 64`), where the flat array fixes the order.
//!
//! [`CanonicalLine`] closes that gap: a sorted `(key, weight)` vector whose
//! iteration is always ascending by key — exactly the order a dense line
//! scan produces — so every observable line walk is identical across
//! storage layouts and move histories.
//!
//! ## Why a sorted vector (and not a hash map with a sorted snapshot)
//!
//! Two canonical-line designs were benchmarked before this type shipped
//! (the `line/*` rows of the PR 4 addendum in `benchmarks/summary.md`
//! record the numbers; the losing `SnapshotLine` implementation was
//! retired once the design settled):
//!
//! * **sorted vec** (this type): O(log n) point lookups, O(n) memmove
//!   inserts, contiguous O(n) iteration;
//! * **hash map + sorted snapshot**: O(1) lookups/mutations, but
//!   iteration must rebuild a sorted snapshot whenever the key set
//!   changed — and the MCMC loop mutates the four affected lines between
//!   every pair of scans, so the snapshot is nearly always stale and the
//!   rebuild dominates (3.4× slower at 512-cell lines).
//!
//! Sparse lines in SBP are short (`E/C` cells on average; the identity
//! partition's lines are single-vertex adjacency lists), so the sorted
//! vec's O(n) insert is a small memmove while its iteration — the
//! operation the ΔS snapshot, proposal scans and entropy sums hammer —
//! is a linear slice walk with no hashing. The bulk constructor
//! ([`CanonicalLine::from_unsorted`]) amortizes the sort at
//! `compacted()`/rebuild boundaries, where every line is rebuilt anyway.

use sbp_graph::Weight;

/// A sparse matrix line (row or column) holding `(key, weight)` cells
/// sorted ascending by key. All weights are kept strictly positive —
/// a cell that reaches zero is removed, so iteration never yields zeros
/// and `len` counts exactly the nonzero cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CanonicalLine {
    cells: Vec<(u32, Weight)>,
}

impl CanonicalLine {
    /// An empty line.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a line from unsorted, possibly-duplicated contributions by
    /// sort-and-fold — O(n log n) once, instead of O(n²) repeated sorted
    /// inserts. Entries with the same key accumulate; keys that fold to
    /// zero (or arrive as zero) are dropped.
    ///
    /// This is the rebuild-boundary constructor: `from_assignment` /
    /// `from_parts` gather each line's raw contributions and sort here,
    /// so full-matrix construction costs one sort per line.
    pub fn from_unsorted(mut raw: Vec<(u32, Weight)>) -> Self {
        raw.sort_unstable_by_key(|e| e.0);
        let mut cells: Vec<(u32, Weight)> = Vec::with_capacity(raw.len());
        for (k, w) in raw {
            match cells.last_mut() {
                Some(last) if last.0 == k => last.1 += w,
                _ => cells.push((k, w)),
            }
        }
        cells.retain(|&(k, w)| {
            debug_assert!(w >= 0, "cell {k} folded to negative weight {w}");
            w != 0
        });
        CanonicalLine { cells }
    }

    /// Weight at `key` (zero when absent). O(log n).
    #[inline]
    pub fn get(&self, key: u32) -> Weight {
        match self.cells.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => self.cells[i].1,
            Err(_) => 0,
        }
    }

    /// Adds `w > 0` to the cell at `key`, inserting it when absent.
    /// O(log n) search plus an O(n) shift on insert.
    #[inline]
    pub fn add(&mut self, key: u32, w: Weight) {
        debug_assert!(w > 0, "add must receive positive weight, got {w}");
        match self.cells.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => self.cells[i].1 += w,
            Err(i) => self.cells.insert(i, (key, w)),
        }
    }

    /// Subtracts `w > 0` from the cell at `key`, removing it when it
    /// reaches zero.
    ///
    /// # Panics
    /// Panics if the cell is absent; debug-panics if it would go negative
    /// — both mean the caller's bookkeeping is broken.
    #[inline]
    pub fn sub(&mut self, key: u32, w: Weight) {
        debug_assert!(w > 0, "sub must receive positive weight, got {w}");
        let i = self
            .cells
            .binary_search_by_key(&key, |e| e.0)
            .unwrap_or_else(|_| panic!("subtracting from empty cell {key}"));
        let e = &mut self.cells[i].1;
        *e -= w;
        debug_assert!(*e >= 0, "cell {key} went negative");
        if *e == 0 {
            self.cells.remove(i);
        }
    }

    /// The cells as a sorted slice — the canonical iteration order.
    #[inline]
    pub fn as_slice(&self) -> &[(u32, Weight)] {
        &self.cells
    }

    /// Iterates `(key, weight)` ascending by key.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, (u32, Weight)> {
        self.cells.iter()
    }

    /// Number of nonzero cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the line has no nonzero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl<'a> IntoIterator for &'a CanonicalLine {
    type Item = &'a (u32, Weight);
    type IntoIter = std::slice::Iter<'a, (u32, Weight)>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_folds_and_sorts() {
        let line = CanonicalLine::from_unsorted(vec![(5, 2), (1, 1), (5, 3), (9, 4), (1, -1)]);
        assert_eq!(line.as_slice(), &[(5, 5), (9, 4)]);
        assert_eq!(line.get(5), 5);
        assert_eq!(line.get(1), 0);
        assert_eq!(line.len(), 2);
    }

    #[test]
    fn add_keeps_sorted_order() {
        let mut line = CanonicalLine::new();
        for k in [7u32, 2, 9, 2, 0] {
            line.add(k, 1);
        }
        assert_eq!(line.as_slice(), &[(0, 1), (2, 2), (7, 1), (9, 1)]);
    }

    #[test]
    fn sub_removes_exhausted_cells() {
        let mut line = CanonicalLine::from_unsorted(vec![(1, 2), (3, 1)]);
        line.sub(1, 1);
        assert_eq!(line.get(1), 1);
        line.sub(1, 1);
        assert_eq!(line.as_slice(), &[(3, 1)]);
        assert!(!line.is_empty());
        line.sub(3, 1);
        assert!(line.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty cell")]
    fn sub_from_absent_cell_panics() {
        let mut line = CanonicalLine::new();
        line.sub(4, 1);
    }

    /// The canonical guarantee itself: any insertion history with the
    /// same net contents iterates identically.
    #[test]
    fn iteration_is_insertion_order_invariant() {
        let mut a = CanonicalLine::new();
        for k in [9u32, 1, 5, 3, 7] {
            a.add(k, i64::from(k) + 1);
        }
        let mut b = CanonicalLine::new();
        for k in [3u32, 7, 9, 5, 1] {
            b.add(k, i64::from(k) + 1);
        }
        // A third history: over-add then subtract back down.
        let mut c = CanonicalLine::new();
        for k in [5u32, 9, 3, 1, 7] {
            c.add(k, i64::from(k) + 3);
            c.sub(k, 2);
        }
        let canon: Vec<_> = a.iter().copied().collect();
        assert_eq!(canon, b.iter().copied().collect::<Vec<_>>());
        assert_eq!(canon, c.iter().copied().collect::<Vec<_>>());
        assert_eq!(
            canon,
            CanonicalLine::from_unsorted(vec![(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)])
                .iter()
                .copied()
                .collect::<Vec<_>>()
        );
    }
}

//! A minimal FxHash implementation (the rustc hash).
//!
//! Blockmodel rows are hash maps keyed by small integers; SipHash's
//! HashDoS resistance is wasted there and costs 2-4× on lookups (see the
//! Rust Performance Book, "Hashing"). This is the standard Fx multiply-
//! rotate mix, reimplemented here so the workspace needs no extra
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEADBEEF);
        b.write_u64(0xDEADBEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_as_expected() {
        let mut m: FxHashMap<u32, i64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i as i64 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn byte_stream_and_word_paths_consistent_lengths() {
        // Writing the same logical value through `write` must be
        // deterministic for any partial-chunk length.
        for len in 0..20 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            let mut b = FxHasher::default();
            a.write(&bytes);
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish());
        }
    }
}

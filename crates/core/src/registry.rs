//! Name-keyed [`Solver`] registry.
//!
//! The CLI's `--backend` flag and the `sbp-serve` daemon's `Repartition`
//! request both resolve backend names through one [`SolverRegistry`], so
//! downstream crates can plug new execution strategies into every entry
//! point by registering a factory — no edits to the CLI or server
//! required. `sbp-core` seeds the registry with the single-node backends
//! ([`SolverRegistry::with_core_backends`]); `sbp_dist::register_solvers`
//! adds the distributed ones; the `edist` facade's `default_registry`
//! combines both.

use crate::hybrid::HybridConfig;
use crate::run::{Batch, Hybrid, Sequential, Solver};
use std::collections::BTreeMap;

/// Backend-construction parameters a registry factory may consume.
/// Factories are free to ignore fields that don't apply to them (the
/// single-node backends ignore everything).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverSpec {
    /// Simulated MPI ranks for distributed backends.
    pub ranks: usize,
    /// Sweeps between allgather sync points (EDiSt).
    pub sync_period: usize,
}

impl Default for SolverSpec {
    fn default() -> Self {
        SolverSpec {
            ranks: 1,
            sync_period: 1,
        }
    }
}

/// Why a registry lookup or construction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No factory is registered under this name.
    UnknownBackend {
        /// The name that was looked up.
        name: String,
        /// Every registered name, sorted — for error messages.
        known: Vec<String>,
    },
    /// The factory rejected the spec (e.g. zero ranks).
    InvalidSpec {
        /// The backend whose factory rejected the spec.
        name: String,
        /// The factory's reason.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownBackend { name, known } => {
                write!(f, "unknown backend '{name}' (known: {})", known.join(", "))
            }
            RegistryError::InvalidSpec { name, reason } => {
                write!(f, "invalid spec for backend '{name}': {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

type Factory = Box<dyn Fn(&SolverSpec) -> Result<Box<dyn Solver>, String> + Send + Sync>;

/// A name → solver-factory map. Names are matched exactly (the callers
/// lowercase user input before lookup by convention).
#[derive(Default)]
pub struct SolverRegistry {
    factories: BTreeMap<String, Factory>,
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry holding the single-node backends: `sequential` (alias
    /// `sbp`), `hybrid`, and `batch`.
    pub fn with_core_backends() -> Self {
        let mut reg = Self::new();
        reg.register("sequential", |_| Ok(Box::new(Sequential)));
        reg.register("sbp", |_| Ok(Box::new(Sequential)));
        reg.register("hybrid", |_| Ok(Box::new(Hybrid(HybridConfig::default()))));
        reg.register("batch", |_| Ok(Box::new(Batch)));
        reg
    }

    /// Registers (or replaces) the factory for `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&SolverSpec) -> Result<Box<dyn Solver>, String> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Builds the backend registered under `name` with the given spec.
    pub fn build(&self, name: &str, spec: &SolverSpec) -> Result<Box<dyn Solver>, RegistryError> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| RegistryError::UnknownBackend {
                name: name.to_string(),
                known: self.names(),
            })?;
        factory(spec).map_err(|reason| RegistryError::InvalidSpec {
            name: name.to_string(),
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{NoProgress, RunConfig, RunOutcome};
    use sbp_graph::fixtures::two_cliques;

    #[test]
    fn core_backends_resolve_and_solve() {
        let reg = SolverRegistry::with_core_backends();
        let g = two_cliques(6);
        let cfg = RunConfig::seeded(3);
        for name in ["sequential", "sbp", "hybrid", "batch"] {
            let solver = reg.build(name, &SolverSpec::default()).unwrap();
            assert!(solver.supports_warm_start(), "{name}");
            let out = solver.solve(&g, &cfg, &mut NoProgress);
            assert_eq!(out.num_blocks, 2, "{name}");
        }
    }

    #[test]
    fn unknown_backend_lists_known_names() {
        let reg = SolverRegistry::with_core_backends();
        match reg.build("nope", &SolverSpec::default()) {
            Err(RegistryError::UnknownBackend { name, known }) => {
                assert_eq!(name, "nope");
                assert_eq!(known, vec!["batch", "hybrid", "sbp", "sequential"]);
            }
            Err(other) => panic!("expected UnknownBackend, got {other:?}"),
            Ok(_) => panic!("expected UnknownBackend, got a solver"),
        }
    }

    #[test]
    fn downstream_registration_and_spec_rejection() {
        struct Fake;
        impl Solver for Fake {
            fn name(&self) -> String {
                "fake".into()
            }
            fn solve(
                &self,
                _g: &sbp_graph::Graph,
                _cfg: &RunConfig,
                _p: &mut dyn crate::run::ProgressSink,
            ) -> RunOutcome {
                RunOutcome::empty()
            }
        }
        let mut reg = SolverRegistry::new();
        reg.register("fake", |spec| {
            if spec.ranks == 0 {
                Err("ranks must be >= 1".into())
            } else {
                Ok(Box::new(Fake))
            }
        });
        assert!(reg.contains("fake"));
        let built = reg.build("fake", &SolverSpec::default()).unwrap();
        assert_eq!(built.name(), "fake");
        assert!(!built.supports_warm_start());
        let zero_ranks = SolverSpec {
            ranks: 0,
            sync_period: 1,
        };
        match reg.build("fake", &zero_ranks) {
            Err(RegistryError::InvalidSpec { reason, .. }) => {
                assert!(reason.contains("ranks"));
            }
            Err(other) => panic!("expected InvalidSpec, got {other:?}"),
            Ok(_) => panic!("expected InvalidSpec, got a solver"),
        }
    }
}

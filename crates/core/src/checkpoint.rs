//! `.sbpc` golden-loop checkpoints: snapshot, binary codec, resume.
//!
//! A checkpoint captures the complete cross-iteration state of the
//! golden search at a sync boundary (the end of a merge+MCMC iteration):
//! the three bracket points, the index of the next iteration, and the
//! recorded trajectory. That is *sufficient* for a bit-identical resume
//! because every RNG stream in the engine is a pure function of
//! `(seed, iteration, sweep, vertex)` — nothing is keyed on elapsed
//! wall-clock state, rank id, or consumed randomness (see
//! [`crate::sbp::merge_phase_seed`] / [`crate::sbp::mcmc_phase_seed`]).
//! Description lengths are stored as raw IEEE-754 bits, so bracket
//! comparisons after a resume see the exact same f64s.
//!
//! # Format (`.sbpc`, version 1)
//!
//! All multi-byte integers are LEB128 varints (`sbp_graph::varint`)
//! unless marked `le64`; f64s are stored as `le64` of `to_bits()`.
//!
//! ```text
//! magic      "SBPC" (4 bytes)
//! version    u8 = 1
//! strategy   u8 tag (0 = MetropolisHastings, 1 = Hybrid, 2 = Batch)
//! payload:
//!   seed                 le64
//!   num_vertices         varint   (graph fingerprint)
//!   total_edge_weight    varint   (graph fingerprint)
//!   next_iter            varint
//!   trajectory_len       varint
//!   trajectory entries   { num_blocks varint, sweeps varint,
//!                          moves varint, dl le64 }
//!   bracket_mask         u8 (bit0 = hi, bit1 = mid, bit2 = lo)
//!   bracket entries      { num_blocks varint, dl le64,
//!                          assignment_len varint, labels varint… }
//! checksum   le64 (order-sensitive mix over every preceding byte,
//!                  header included)
//! ```
//!
//! Decoding is strict and hostile-input safe: every declared count is
//! checked against the bytes actually remaining *before* any allocation,
//! labels must be dense (`< num_blocks`), assignment lengths must match
//! the fingerprint, trailing bytes are rejected, and the checksum is
//! verified before any field is interpreted. Writes are atomic
//! (temp-file + rename), so a crash mid-write never leaves a torn file.

use crate::golden::{BracketEntry, GoldenBracket};
use crate::sbp::{IterationStat, McmcStrategy};
use sbp_graph::varint::{read_u64, write_u64};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SBPC";
const VERSION: u8 = 1;

/// Vertex-count ceiling shared with the `.sbps` reader: assignments are
/// `u32`-labelled, so anything above `u32::MAX + 1` vertices is malformed
/// by construction and rejected before allocating.
const MAX_VERTICES: u64 = (u32::MAX as u64) + 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not a well-formed `.sbpc` snapshot.
    Malformed(String),
    /// The snapshot is well-formed but belongs to a different run
    /// (graph fingerprint, seed, or strategy disagree).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The complete cross-iteration state of the golden search at a sync
/// boundary, plus the run fingerprint used to reject resuming against
/// the wrong graph/seed/strategy.
#[derive(Clone, Debug)]
pub struct CheckpointState {
    /// Master seed of the run (fingerprint; RNG streams derive from it).
    pub seed: u64,
    /// Strategy tag (fingerprint): 0 = MH, 1 = Hybrid, 2 = Batch.
    pub strategy_tag: u8,
    /// Vertex count of the graph (fingerprint).
    pub num_vertices: u64,
    /// Total edge weight of the graph (fingerprint).
    pub total_edge_weight: u64,
    /// Index of the next golden-loop iteration to run.
    pub next_iter: u64,
    /// Trajectory recorded so far.
    pub iterations: Vec<IterationStat>,
    /// Bracket point with the most blocks.
    pub hi: Option<BracketEntry>,
    /// Best bracket point (must be present in any resumable snapshot —
    /// the bracket is seeded before the first boundary).
    pub mid: Option<BracketEntry>,
    /// Bracket point with the fewest blocks.
    pub lo: Option<BracketEntry>,
}

/// The wire tag for a strategy (Hybrid sub-configuration is not part of
/// the fingerprint; resume with the same `RunConfig`).
pub fn strategy_tag(strategy: &McmcStrategy) -> u8 {
    match strategy {
        McmcStrategy::MetropolisHastings => 0,
        McmcStrategy::Hybrid(_) => 1,
        McmcStrategy::Batch => 2,
    }
}

impl CheckpointState {
    /// Rebuilds the golden bracket this snapshot captured.
    pub fn bracket(&self, rate: f64) -> GoldenBracket {
        GoldenBracket::from_parts(rate, self.hi.clone(), self.mid.clone(), self.lo.clone())
    }

    /// Checks this snapshot against the run about to consume it.
    pub fn validate_against(
        &self,
        seed: u64,
        strategy: &McmcStrategy,
        num_vertices: usize,
        total_edge_weight: u64,
    ) -> Result<(), CheckpointError> {
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot seed {} != run seed {seed}",
                self.seed
            )));
        }
        if self.strategy_tag != strategy_tag(strategy) {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot strategy tag {} != run strategy tag {}",
                self.strategy_tag,
                strategy_tag(strategy)
            )));
        }
        if self.num_vertices != num_vertices as u64 {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {} vertices, graph has {num_vertices}",
                self.num_vertices
            )));
        }
        if self.total_edge_weight != total_edge_weight {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot total edge weight {} != graph's {total_edge_weight}",
                self.total_edge_weight
            )));
        }
        if self.mid.is_none() {
            return Err(CheckpointError::Mismatch(
                "snapshot has no best bracket entry to resume from".into(),
            ));
        }
        Ok(())
    }

    /// Serializes to `.sbpc` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.assignment_bytes_hint());
        payload.extend_from_slice(&self.seed.to_le_bytes());
        write_u64(&mut payload, self.num_vertices);
        write_u64(&mut payload, self.total_edge_weight);
        write_u64(&mut payload, self.next_iter);
        write_u64(&mut payload, self.iterations.len() as u64);
        for stat in &self.iterations {
            write_u64(&mut payload, stat.num_blocks as u64);
            write_u64(&mut payload, stat.sweeps as u64);
            write_u64(&mut payload, stat.moves as u64);
            payload.extend_from_slice(&stat.dl.to_bits().to_le_bytes());
        }
        let mask = u8::from(self.hi.is_some())
            | (u8::from(self.mid.is_some()) << 1)
            | (u8::from(self.lo.is_some()) << 2);
        payload.push(mask);
        for entry in [&self.hi, &self.mid, &self.lo].into_iter().flatten() {
            write_u64(&mut payload, entry.num_blocks as u64);
            payload.extend_from_slice(&entry.dl.to_bits().to_le_bytes());
            write_u64(&mut payload, entry.assignment.len() as u64);
            for &label in &entry.assignment {
                write_u64(&mut payload, u64::from(label));
            }
        }
        let mut buf = Vec::with_capacity(payload.len() + 14);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(self.strategy_tag);
        buf.extend_from_slice(&payload);
        // The checksum covers everything before it — header bytes
        // included, so a flipped strategy tag (still a "valid" tag) can
        // never masquerade as an intact snapshot.
        let sum = mix_bytes(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parses `.sbpc` bytes (strict; see the module docs for the
    /// hostile-input guarantees).
    pub fn decode(buf: &[u8]) -> Result<Self, CheckpointError> {
        let malformed = |m: &str| CheckpointError::Malformed(m.into());
        if buf.len() < MAGIC.len() + 2 + 8 {
            return Err(malformed("file shorter than the fixed header"));
        }
        if &buf[..4] != MAGIC {
            return Err(malformed("bad magic (not an .sbpc file)"));
        }
        if buf[4] != VERSION {
            return Err(CheckpointError::Malformed(format!(
                "unsupported version {}",
                buf[4]
            )));
        }
        let strategy_tag = buf[5];
        if strategy_tag > 2 {
            return Err(CheckpointError::Malformed(format!(
                "unknown strategy tag {strategy_tag}"
            )));
        }
        let payload = &buf[6..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
        if mix_bytes(&buf[..buf.len() - 8]) != stored {
            return Err(malformed("checksum mismatch"));
        }

        let mut pos = 0usize;
        let seed = read_le64(payload, &mut pos).ok_or_else(|| malformed("seed truncated"))?;
        let mut next = |what: &str| -> Result<u64, CheckpointError> {
            read_u64(payload, &mut pos)
                .ok_or_else(|| CheckpointError::Malformed(format!("{what} truncated")))
        };
        let num_vertices = next("num_vertices")?;
        if num_vertices > MAX_VERTICES {
            return Err(CheckpointError::Malformed(format!(
                "vertex count {num_vertices} exceeds the u32 label space"
            )));
        }
        let total_edge_weight = next("total_edge_weight")?;
        let next_iter = next("next_iter")?;

        let traj_len = next("trajectory length")? as usize;
        // Each entry occupies ≥ 11 bytes (three varints + le64 DL); a
        // larger declared count cannot fit and is rejected before the
        // vector is sized.
        let remaining = payload.len() - pos;
        if traj_len > remaining / 11 {
            return Err(CheckpointError::Malformed(format!(
                "trajectory count {traj_len} exceeds what {remaining} bytes could hold"
            )));
        }
        let mut iterations = Vec::with_capacity(traj_len);
        for _ in 0..traj_len {
            let num_blocks = read_u64(payload, &mut pos)
                .ok_or_else(|| malformed("trajectory entry truncated"))?;
            let sweeps = read_u64(payload, &mut pos)
                .ok_or_else(|| malformed("trajectory entry truncated"))?;
            let moves = read_u64(payload, &mut pos)
                .ok_or_else(|| malformed("trajectory entry truncated"))?;
            let dl = f64::from_bits(
                read_le64(payload, &mut pos).ok_or_else(|| malformed("trajectory DL truncated"))?,
            );
            iterations.push(IterationStat {
                num_blocks: usize::try_from(num_blocks)
                    .map_err(|_| malformed("trajectory block count out of range"))?,
                dl,
                sweeps: usize::try_from(sweeps)
                    .map_err(|_| malformed("trajectory sweep count out of range"))?,
                moves: usize::try_from(moves)
                    .map_err(|_| malformed("trajectory move count out of range"))?,
            });
        }

        let mask = *payload
            .get(pos)
            .ok_or_else(|| malformed("bracket mask truncated"))?;
        pos += 1;
        if mask > 0b111 {
            return Err(CheckpointError::Malformed(format!(
                "bracket mask {mask:#04x} has unknown bits set"
            )));
        }
        let mut entries: [Option<BracketEntry>; 3] = [None, None, None];
        for (bit, slot) in entries.iter_mut().enumerate() {
            if mask & (1 << bit) == 0 {
                continue;
            }
            let num_blocks =
                read_u64(payload, &mut pos).ok_or_else(|| malformed("bracket entry truncated"))?;
            let dl = f64::from_bits(
                read_le64(payload, &mut pos).ok_or_else(|| malformed("bracket DL truncated"))?,
            );
            let len = read_u64(payload, &mut pos)
                .ok_or_else(|| malformed("assignment length truncated"))?
                as usize;
            if len as u64 != num_vertices {
                return Err(CheckpointError::Malformed(format!(
                    "assignment length {len} != vertex count {num_vertices}"
                )));
            }
            // ≥ 1 byte per label: a count beyond the remaining bytes is
            // rejected before the vector is sized.
            let remaining = payload.len() - pos;
            if len > remaining {
                return Err(CheckpointError::Malformed(format!(
                    "assignment length {len} exceeds the {remaining} bytes remaining"
                )));
            }
            if num_blocks > num_vertices.max(1) {
                return Err(CheckpointError::Malformed(format!(
                    "block count {num_blocks} exceeds vertex count {num_vertices}"
                )));
            }
            let mut assignment = Vec::with_capacity(len);
            for _ in 0..len {
                let label =
                    read_u64(payload, &mut pos).ok_or_else(|| malformed("label truncated"))?;
                if label >= num_blocks {
                    return Err(CheckpointError::Malformed(format!(
                        "label {label} not below block count {num_blocks}"
                    )));
                }
                assignment.push(label as u32);
            }
            *slot = Some(BracketEntry {
                assignment,
                num_blocks: num_blocks as usize,
                dl,
            });
        }
        if pos != payload.len() {
            return Err(malformed("trailing bytes after bracket entries"));
        }
        let [hi, mid, lo] = entries;
        Ok(CheckpointState {
            seed,
            strategy_tag,
            num_vertices,
            total_edge_weight,
            next_iter,
            iterations,
            hi,
            mid,
            lo,
        })
    }

    /// Atomically writes this snapshot to `path` (temp file + rename in
    /// the same directory).
    pub fn write_to(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let tmp = tmp_sibling(path);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads and parses a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    fn assignment_bytes_hint(&self) -> usize {
        [&self.hi, &self.mid, &self.lo]
            .into_iter()
            .flatten()
            .map(|e| e.assignment.len() * 2 + 16)
            .sum()
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint.sbpc".into());
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

fn read_le64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Order-sensitive checksum over the payload bytes (same mixing family
/// as the `.sbps` edge checksum): detects truncation, bit flips, and
/// reordering without a dependency on a hash crate.
fn mix_bytes(bytes: &[u8]) -> u64 {
    let mut acc = 0x5BC5_BC5B_C5BC_5BC5u64 ^ (bytes.len() as u64);
    for &b in bytes {
        acc = acc
            .rotate_left(5)
            .wrapping_add(u64::from(b))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    acc ^= acc >> 31;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            seed: 42,
            strategy_tag: 0,
            num_vertices: 6,
            total_edge_weight: 14,
            next_iter: 3,
            iterations: vec![
                IterationStat {
                    num_blocks: 3,
                    dl: 123.456,
                    sweeps: 7,
                    moves: 11,
                },
                IterationStat {
                    num_blocks: 2,
                    dl: 99.25,
                    sweeps: 5,
                    moves: 2,
                },
            ],
            hi: Some(BracketEntry {
                assignment: vec![0, 1, 2, 3, 4, 5],
                num_blocks: 6,
                dl: 200.0,
            }),
            mid: Some(BracketEntry {
                assignment: vec![0, 0, 1, 1, 2, 2],
                num_blocks: 3,
                dl: 123.456,
            }),
            lo: None,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let state = sample_state();
        let decoded = CheckpointState::decode(&state.encode()).expect("roundtrip");
        assert_eq!(decoded.seed, 42);
        assert_eq!(decoded.strategy_tag, 0);
        assert_eq!(decoded.next_iter, 3);
        assert_eq!(decoded.iterations.len(), 2);
        assert_eq!(
            decoded.iterations[0].dl.to_bits(),
            state.iterations[0].dl.to_bits()
        );
        let mid = decoded.mid.expect("mid present");
        assert_eq!(mid.assignment, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(mid.dl.to_bits(), 123.456f64.to_bits());
        assert!(decoded.lo.is_none());
        assert_eq!(decoded.hi.expect("hi present").num_blocks, 6);
    }

    #[test]
    fn file_roundtrip_and_atomic_overwrite() {
        let dir = std::env::temp_dir().join(format!("sbpc_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.sbpc");
        let state = sample_state();
        state.write_to(&path).expect("write");
        state.write_to(&path).expect("overwrite");
        let back = CheckpointState::read_from(&path).expect("read");
        assert_eq!(back.next_iter, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected_not_panicking() {
        let good = sample_state().encode();
        for cut in 0..good.len() {
            assert!(
                CheckpointState::decode(&good[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                // A flip may survive only by being rejected; it must
                // never be silently accepted (checksum covers payload,
                // header bytes are each validated).
                if let Ok(state) = CheckpointState::decode(&bad) {
                    panic!(
                        "bit flip at byte {byte} bit {bit} accepted (next_iter {})",
                        state.next_iter
                    );
                }
            }
        }
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        // Hand-craft a payload declaring a gigantic trajectory.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        write_u64(&mut payload, 4); // num_vertices
        write_u64(&mut payload, 3); // total weight
        write_u64(&mut payload, 0); // next_iter
        write_u64(&mut payload, u64::MAX); // trajectory length: absurd
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(0);
        buf.extend_from_slice(&payload);
        let sum = mix_bytes(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        match CheckpointState::decode(&buf) {
            Err(CheckpointError::Malformed(m)) => {
                assert!(m.contains("trajectory count"), "{m}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn non_dense_labels_are_rejected() {
        let mut state = sample_state();
        state.mid.as_mut().expect("mid").assignment[0] = 5; // ≥ num_blocks=3
        let err = CheckpointState::decode(&state.encode()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
    }

    #[test]
    fn validate_catches_fingerprint_drift() {
        let state = sample_state();
        let strategy = McmcStrategy::MetropolisHastings;
        assert!(state.validate_against(42, &strategy, 6, 14).is_ok());
        assert!(state.validate_against(43, &strategy, 6, 14).is_err());
        assert!(state.validate_against(42, &strategy, 7, 14).is_err());
        assert!(state.validate_against(42, &strategy, 6, 15).is_err());
        assert!(state
            .validate_against(42, &McmcStrategy::Batch, 6, 14)
            .is_err());
    }
}

//! A deliberately naive SBP implementation equivalent to the original
//! python DC-SBP reference (Uppal et al., translated by the paper's
//! authors to C++ — Table VI measures exactly this gap).
//!
//! Differences from the optimized engine, mirroring §III-A:
//! * dense `C×C` matrix instead of sparse rows + transpose (optimization
//!   a/b inverted): every ΔS evaluation scans whole rows/columns, O(C)
//!   instead of O(nnz);
//! * no sparse cell deltas (optimization c inverted);
//! * merges applied by rewriting the assignment and rebuilding the dense
//!   matrix rather than union-find pointer tracking (optimization d
//!   inverted);
//! * batch-parallel MCMC (the python reference evaluated whole sweeps
//!   against frozen state).
//!
//! The *objective*, proposal distribution, and golden-ratio control are
//! identical, so NMI parity with the optimized engine (Table VI's finding)
//! is expected — only the runtime differs.
//!
//! The batch sweep's frozen-state evaluation fans out over the
//! persistent pool with the same `(seed, sweep, vertex)`-keyed RNG
//! streams the optimized engine uses (the python reference's
//! multiprocessing map likewise evaluated vertices independently), so
//! the baseline's trajectories are deterministic at any thread count and
//! the Table VI comparison isolates data-structure asymptotics, not
//! scheduling noise. The merge phase keeps its single sequential stream.

use crate::golden::{BracketEntry, GoldenBracket, NextStep};
use crate::hybrid::vertex_rng;
use crate::mcmc::ConvergenceCheck;
use crate::model_description_length;
use crate::sbp::{mcmc_phase_seed, SbpConfig, SbpResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sbp_graph::{Graph, Vertex, Weight};
use std::cell::RefCell;

/// Dense blockmodel: row-major `C×C` edge-count matrix.
pub struct DenseBlockmodel {
    assignment: Vec<u32>,
    c: usize,
    m: Vec<Weight>,
    d_out: Vec<Weight>,
    d_in: Vec<Weight>,
    num_vertices: usize,
    total_edge_weight: Weight,
}

impl DenseBlockmodel {
    /// Builds the dense model from an assignment.
    pub fn from_assignment(graph: &Graph, assignment: Vec<u32>, c: usize) -> Self {
        assert_eq!(assignment.len(), graph.num_vertices());
        let mut m = vec![0 as Weight; c * c];
        let mut d_out = vec![0 as Weight; c];
        let mut d_in = vec![0 as Weight; c];
        for (src, dst, w) in graph.arcs() {
            let (r, t) = (
                assignment[src as usize] as usize,
                assignment[dst as usize] as usize,
            );
            m[r * c + t] += w;
            d_out[r] += w;
            d_in[t] += w;
        }
        DenseBlockmodel {
            assignment,
            c,
            m,
            d_out,
            d_in,
            num_vertices: graph.num_vertices(),
            total_edge_weight: graph.total_edge_weight(),
        }
    }

    #[inline]
    fn get(&self, r: usize, t: usize) -> Weight {
        self.m[r * self.c + t]
    }

    /// The assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.c
    }

    /// Full entropy by scanning the dense matrix, O(C²).
    pub fn entropy(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.c {
            if self.d_out[r] == 0 {
                continue;
            }
            let ldr = (self.d_out[r] as f64).ln();
            for t in 0..self.c {
                let m = self.get(r, t);
                if m > 0 {
                    let mf = m as f64;
                    s -= mf * (mf.ln() - ldr - (self.d_in[t] as f64).ln());
                }
            }
        }
        s
    }

    /// Description length (Eq. 2) on the dense model.
    pub fn description_length(&self) -> f64 {
        model_description_length(self.num_vertices, self.total_edge_weight, self.c) + self.entropy()
    }

    /// Entropy contribution of rows {r, s} and columns {r, s}, scanning
    /// densely — the O(C) kernel the python reference used per proposal.
    fn lines_entropy(
        &self,
        r: usize,
        s: usize,
        cell: impl Fn(usize, usize) -> Weight,
        d_out: impl Fn(usize) -> Weight,
        d_in: impl Fn(usize) -> Weight,
    ) -> f64 {
        let mut sum = 0.0;
        let term = |m: Weight, dr: Weight, di: Weight| -> f64 {
            if m <= 0 {
                0.0
            } else {
                let mf = m as f64;
                -mf * (mf.ln() - (dr as f64).ln() - (di as f64).ln())
            }
        };
        for row in [r, s] {
            let dr = d_out(row);
            for t in 0..self.c {
                sum += term(cell(row, t), dr, d_in(t));
            }
        }
        for col in [r, s] {
            let di = d_in(col);
            for t in 0..self.c {
                if t == r || t == s {
                    continue; // already counted in the row pass
                }
                sum += term(cell(t, col), d_out(t), di);
            }
        }
        sum
    }

    /// ΔS for moving vertex `v` to block `s`, via dense line rescans
    /// (allocating convenience wrapper over
    /// [`DenseBlockmodel::delta_entropy_move_with`]).
    pub fn delta_entropy_move(&self, graph: &Graph, v: Vertex, s: usize) -> f64 {
        self.delta_entropy_move_with(graph, v, s, &mut NaiveScratch::default())
    }

    /// ΔS for moving vertex `v` to block `s`, reusing the caller's
    /// scratch buffers (no allocation after the first call).
    pub fn delta_entropy_move_with(
        &self,
        graph: &Graph,
        v: Vertex,
        s: usize,
        scratch: &mut NaiveScratch,
    ) -> f64 {
        let r = self.assignment[v as usize] as usize;
        if r == s {
            return 0.0;
        }
        // Dense per-line deltas.
        scratch.reset(self.c);
        let NaiveScratch {
            d_row_r,
            d_row_s,
            d_col_r,
            d_col_s,
            ..
        } = scratch;
        for &(u, w) in graph.out_edges(v) {
            if u == v {
                d_row_r[r] -= w;
                d_row_s[s] += w;
            } else {
                let t = self.assignment[u as usize] as usize;
                d_row_r[t] -= w;
                d_row_s[t] += w;
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u == v {
                continue;
            }
            let t = self.assignment[u as usize] as usize;
            d_col_r[t] -= w;
            d_col_s[t] += w;
        }
        let (ov, iv) = (graph.out_degree(v), graph.in_degree(v));
        let cell_new = |x: usize, y: usize| -> Weight {
            let mut m = self.get(x, y);
            if x == r {
                m += d_row_r[y];
            }
            if x == s {
                m += d_row_s[y];
            }
            // Column deltas only apply to rows other than r/s for cells we
            // haven't already adjusted via row deltas... but the corner
            // cells (r/s, r/s) receive both row and column contributions.
            if y == r && x != r && x != s {
                m += d_col_r[x];
            }
            if y == s && x != r && x != s {
                m += d_col_s[x];
            }
            // Corner cells: add the column-delta part that the row pass
            // does not cover (in-edges touch columns r/s at rows r/s too).
            if (x == r || x == s) && (y == r || y == s) {
                if y == r {
                    m += d_col_r[x];
                } else {
                    m += d_col_s[x];
                }
            }
            m
        };
        let d_out_new = |x: usize| {
            if x == r {
                self.d_out[x] - ov
            } else if x == s {
                self.d_out[x] + ov
            } else {
                self.d_out[x]
            }
        };
        let d_in_new = |y: usize| {
            if y == r {
                self.d_in[y] - iv
            } else if y == s {
                self.d_in[y] + iv
            } else {
                self.d_in[y]
            }
        };
        let old = self.lines_entropy(
            r,
            s,
            |x, y| self.get(x, y),
            |x| self.d_out[x],
            |y| self.d_in[y],
        );
        let new = self.lines_entropy(r, s, cell_new, d_out_new, d_in_new);
        new - old
    }

    /// ΔS for merging block `r` into block `s`, dense rescan.
    pub fn delta_entropy_merge(&self, r: usize, s: usize) -> f64 {
        assert_ne!(r, s);
        let cell_new = |x: usize, y: usize| -> Weight {
            if x == r || y == r {
                return 0;
            }
            let mut m = self.get(x, y);
            if x == s && y == s {
                m += self.get(r, r) + self.get(r, s) + self.get(s, r);
            } else if x == s {
                m += self.get(r, y);
            } else if y == s {
                m += self.get(x, r);
            }
            m
        };
        let d_out_new = |x: usize| {
            if x == r {
                0
            } else if x == s {
                self.d_out[s] + self.d_out[r]
            } else {
                self.d_out[x]
            }
        };
        let d_in_new = |y: usize| {
            if y == r {
                0
            } else if y == s {
                self.d_in[s] + self.d_in[r]
            } else {
                self.d_in[y]
            }
        };
        let old = self.lines_entropy(
            r,
            s,
            |x, y| self.get(x, y),
            |x| self.d_out[x],
            |y| self.d_in[y],
        );
        let new = self.lines_entropy(r, s, cell_new, d_out_new, d_in_new);
        new - old
    }

    /// Proposal distribution — same semantics as the sparse engine but
    /// scanning dense rows.
    fn propose<R: Rng + ?Sized>(&self, rng: &mut R, graph: &Graph, v: Vertex) -> Option<usize> {
        if self.c <= 1 {
            return None;
        }
        let self_w: Weight = graph
            .out_edges(v)
            .iter()
            .filter(|&&(u, _)| u == v)
            .map(|&(_, w)| w)
            .sum();
        let d_excl = graph.degree(v) - 2 * self_w;
        if d_excl <= 0 {
            return Some(rng.random_range(0..self.c));
        }
        let mut x = rng.random_range(0..d_excl);
        let mut t = 0usize;
        for &(u, w) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if u == v {
                continue;
            }
            if x < w {
                t = self.assignment[u as usize] as usize;
                break;
            }
            x -= w;
        }
        let dt = self.d_out[t] + self.d_in[t];
        if dt == 0 || rng.random::<f64>() < self.c as f64 / (dt as f64 + self.c as f64) {
            return Some(rng.random_range(0..self.c));
        }
        let mut x = rng.random_range(0..dt);
        for y in 0..self.c {
            let m = self.get(t, y);
            if x < m {
                return Some(y);
            }
            x -= m;
        }
        for y in 0..self.c {
            let m = self.get(y, t);
            if x < m {
                return Some(y);
            }
            x -= m;
        }
        Some(t)
    }

    fn hastings(
        &self,
        graph: &Graph,
        v: Vertex,
        r: usize,
        s: usize,
        scratch: &mut NaiveScratch,
    ) -> f64 {
        let b = self.c as f64;
        scratch.reset(self.c);
        let NaiveScratch {
            w_t,
            d_row_r: d_row,
            d_col_r: d_col,
            ..
        } = scratch;
        for &(u, w) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if u == v {
                continue;
            }
            let t = self.assignment[u as usize] as usize;
            match w_t.iter_mut().find(|(bt, _)| *bt == t) {
                Some((_, tw)) => *tw += w,
                None => w_t.push((t, w)),
            }
        }
        if w_t.is_empty() {
            return 1.0;
        }
        let (ov, iv) = (graph.out_degree(v), graph.in_degree(v));
        let shift = ov + iv;
        // Post-move cell values for the backward direction.
        for &(u, w) in graph.out_edges(v) {
            if u != v {
                d_row[self.assignment[u as usize] as usize] += w;
            }
        }
        for &(u, w) in graph.in_edges(v) {
            if u != v {
                d_col[self.assignment[u as usize] as usize] += w;
            }
        }
        let mut fwd = 0.0;
        let mut bwd = 0.0;
        for &(t, w) in w_t.iter() {
            let wf = w as f64;
            let dt = (self.d_out[t] + self.d_in[t]) as f64;
            fwd += wf * ((self.get(t, s) + self.get(s, t) + 1) as f64) / (dt + b);
            // After the move: row/col r lose v's contributions, row/col s gain.
            let adj = |x: usize, y: usize| -> Weight {
                let mut m = self.get(x, y);
                if x == r {
                    m -= d_row[y];
                }
                if x == s {
                    m += d_row[y];
                }
                if y == r {
                    m -= d_col[x];
                }
                if y == s {
                    m += d_col[x];
                }
                m
            };
            let dt_new = if t == r {
                dt - shift as f64
            } else if t == s {
                dt + shift as f64
            } else {
                dt
            };
            bwd += wf * ((adj(t, r) + adj(r, t) + 1) as f64) / (dt_new + b);
        }
        if fwd <= 0.0 {
            return 1.0;
        }
        bwd / fwd
    }
}

/// Reusable dense per-line delta buffers for the naive engine — the same
/// role [`crate::delta::DeltaScratch`] plays for the sparse engine, so the
/// naive baseline's *allocation* behavior no longer pollutes the Table VI
/// comparison (which isolates the data-structure asymptotics).
#[derive(Debug, Default)]
pub struct NaiveScratch {
    d_row_r: Vec<Weight>,
    d_row_s: Vec<Weight>,
    d_col_r: Vec<Weight>,
    d_col_s: Vec<Weight>,
    w_t: Vec<(usize, Weight)>,
}

impl NaiveScratch {
    fn reset(&mut self, c: usize) {
        for buf in [
            &mut self.d_row_r,
            &mut self.d_row_s,
            &mut self.d_col_r,
            &mut self.d_col_s,
        ] {
            buf.clear();
            buf.resize(c, 0);
        }
        self.w_t.clear();
    }
}

/// Compacts arbitrary labels to the dense range `0..k`; returns `k`.
fn compact_labels(assignment: &mut [u32]) -> usize {
    let max = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut map = vec![u32::MAX; max];
    let mut next = 0u32;
    for a in assignment.iter_mut() {
        if map[*a as usize] == u32::MAX {
            map[*a as usize] = next;
            next += 1;
        }
        *a = map[*a as usize];
    }
    next as usize
}

/// Naive (python-equivalent) SBP inference from the identity partition.
pub fn naive_sbp(graph: &Graph, cfg: &SbpConfig) -> SbpResult {
    let n = graph.num_vertices();
    naive_sbp_from(graph, (0..n as u32).collect(), cfg)
}

/// Naive SBP from an arbitrary starting partition (labels are compacted
/// internally) — the fine-tuning entry point of the naive DC-SBP baseline.
pub fn naive_sbp_from(graph: &Graph, mut assignment: Vec<u32>, cfg: &SbpConfig) -> SbpResult {
    if graph.num_vertices() == 0 {
        return SbpResult {
            assignment: Vec::new(),
            num_blocks: 0,
            description_length: 0.0,
            iterations: Vec::new(),
        };
    }
    let c0 = compact_labels(&mut assignment);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let start = DenseBlockmodel::from_assignment(graph, assignment, c0);
    let mut bracket = GoldenBracket::new(cfg.block_reduction_rate);
    bracket.seed(BracketEntry {
        assignment: start.assignment.clone(),
        num_blocks: c0,
        dl: start.description_length(),
    });

    for iter_idx in 0..cfg.max_iterations {
        match bracket.next() {
            NextStep::Done(best) => {
                return SbpResult {
                    assignment: best.assignment,
                    num_blocks: best.num_blocks,
                    description_length: best.dl,
                    iterations: Vec::new(),
                };
            }
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                let mut bm =
                    DenseBlockmodel::from_assignment(graph, start.assignment, start.num_blocks);
                naive_merge_phase(graph, &mut bm, blocks_to_merge, cfg, &mut rng);
                let threshold = if bracket.established() {
                    cfg.threshold_post
                } else {
                    cfg.threshold_pre
                };
                naive_mcmc_phase(graph, &mut bm, cfg, threshold, iter_idx);
                bracket.record(BracketEntry {
                    assignment: bm.assignment.clone(),
                    num_blocks: bm.c,
                    dl: bm.description_length(),
                });
            }
        }
    }
    let best = bracket.best().expect("seeded").clone();
    SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        description_length: best.dl,
        iterations: Vec::new(),
    }
}

fn naive_merge_phase(
    graph: &Graph,
    bm: &mut DenseBlockmodel,
    blocks_to_merge: usize,
    cfg: &SbpConfig,
    rng: &mut SmallRng,
) {
    let c = bm.c;
    // Best merge per block, dense evaluation.
    let mut cands: Vec<(f64, usize, usize)> = Vec::with_capacity(c);
    for r in 0..c {
        let mut best: Option<(f64, usize)> = None;
        for _ in 0..cfg.merge_proposals_per_block {
            if c <= 1 {
                break;
            }
            // Uniform-ish proposal mixing, as in the python reference's
            // agglomerative mode.
            let s = {
                let mut s = rng.random_range(0..c - 1);
                if s >= r {
                    s += 1;
                }
                s
            };
            let ds = bm.delta_entropy_merge(r, s);
            if best.is_none() || ds < best.expect("checked").0 {
                best = Some((ds, s));
            }
        }
        if let Some((ds, s)) = best {
            cands.push((ds, r, s));
        }
    }
    cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    // No pointer scheme: apply merges one at a time by rewriting the
    // assignment and rebuilding — the naive path Table VI measures.
    let mut assignment = bm.assignment.clone();
    let mut merged = 0usize;
    let mut alias: Vec<usize> = (0..c).collect();
    for (_, r, s) in cands {
        if merged >= blocks_to_merge {
            break;
        }
        let (mut r2, mut s2) = (alias[r], alias[s]);
        while alias[r2] != r2 {
            r2 = alias[r2];
        }
        while alias[s2] != s2 {
            s2 = alias[s2];
        }
        if r2 == s2 {
            continue;
        }
        alias[r2] = s2;
        for a in assignment.iter_mut() {
            if *a as usize == r2 {
                *a = s2 as u32;
            }
        }
        merged += 1;
    }
    // Compact labels and rebuild densely.
    let mut map = vec![u32::MAX; c];
    let mut next = 0u32;
    for &a in &assignment {
        if map[a as usize] == u32::MAX {
            map[a as usize] = next;
            next += 1;
        }
    }
    for a in assignment.iter_mut() {
        *a = map[*a as usize];
    }
    *bm = DenseBlockmodel::from_assignment(graph, assignment, next as usize);
}

thread_local! {
    /// One [`NaiveScratch`] per (pool or caller) thread — with the
    /// persistent pool this is allocated once per worker and reused
    /// across every naive batch sweep, like the optimized engine's
    /// `DeltaScratch`.
    static TLS_NAIVE_SCRATCH: RefCell<NaiveScratch> = RefCell::new(NaiveScratch::default());
}

/// Evaluates one vertex of a naive batch sweep against the frozen dense
/// model: propose, ΔS, Hastings, accept — a pure function of
/// `(state, seed, sweep, v)`, so the parallel fan-out below cannot
/// perturb trajectories.
fn evaluate_naive(
    graph: &Graph,
    bm: &DenseBlockmodel,
    v: Vertex,
    beta: f64,
    seed: u64,
    sweep: usize,
) -> Option<(Vertex, usize)> {
    if graph.degree(v) == 0 {
        return None;
    }
    let mut rng = vertex_rng(seed, sweep, v);
    let s = bm.propose(&mut rng, graph, v)?;
    let r = bm.assignment[v as usize] as usize;
    if s == r {
        return None;
    }
    TLS_NAIVE_SCRATCH.with(|cell| {
        let scratch = &mut cell.borrow_mut();
        let ds = bm.delta_entropy_move_with(graph, v, s, scratch);
        let h = bm.hastings(graph, v, r, s, scratch);
        let p = ((-beta * ds).exp() * h).min(1.0);
        (rng.random::<f64>() < p).then_some((v, s))
    })
}

fn naive_mcmc_phase(
    graph: &Graph,
    bm: &mut DenseBlockmodel,
    cfg: &SbpConfig,
    threshold: f64,
    iter_idx: usize,
) {
    let initial = bm.description_length();
    let mut check = ConvergenceCheck::new(initial, threshold);
    let sweep_seed = mcmc_phase_seed(cfg.seed, iter_idx);
    let vertices: Vec<Vertex> = (0..graph.num_vertices() as u32).collect();
    for sweep in 0..cfg.max_sweeps {
        // Batch sweep: evaluate all vertices against frozen state, fanned
        // out over the pool with per-vertex keyed streams; ordered
        // collection keeps the accepted list identical to a serial scan.
        let frozen: &DenseBlockmodel = bm;
        let accepted: Vec<(Vertex, usize)> = if vertices.len() >= 32 {
            vertices
                .par_iter()
                .filter_map(|&v| evaluate_naive(graph, frozen, v, cfg.beta, sweep_seed, sweep))
                .collect()
        } else {
            vertices
                .iter()
                .filter_map(|&v| evaluate_naive(graph, frozen, v, cfg.beta, sweep_seed, sweep))
                .collect()
        };
        // Apply batch and rebuild (the python reference updated rows
        // densely; a rebuild has the same asymptotics at this scale).
        if !accepted.is_empty() {
            let mut assignment = bm.assignment.clone();
            for (v, s) in accepted {
                assignment[v as usize] = s as u32;
            }
            *bm = DenseBlockmodel::from_assignment(graph, assignment, bm.c);
        }
        if check.record(bm.description_length()) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockmodel::Blockmodel;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 2),
                (1, 2, 2),
                (2, 0, 2),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn dense_entropy_matches_sparse() {
        let g = two_triangles();
        let assignment = vec![0u32, 0, 0, 1, 1, 1];
        let dense = DenseBlockmodel::from_assignment(&g, assignment.clone(), 2);
        let sparse = Blockmodel::from_assignment(&g, assignment, 2);
        assert!((dense.entropy() - sparse.entropy()).abs() < 1e-12);
        assert!((dense.description_length() - sparse.description_length()).abs() < 1e-12);
    }

    #[test]
    fn dense_move_delta_matches_recompute() {
        let g = two_triangles();
        let bm = DenseBlockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        for v in 0..6u32 {
            for s in 0..2usize {
                let ds = bm.delta_entropy_move(&g, v, s);
                let mut assignment = bm.assignment.clone();
                assignment[v as usize] = s as u32;
                let after = DenseBlockmodel::from_assignment(&g, assignment, 2);
                let exact = after.entropy() - bm.entropy();
                assert!(
                    (ds - exact).abs() < 1e-9,
                    "v={v} s={s}: got {ds}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn dense_merge_delta_matches_recompute() {
        let g = two_triangles();
        let bm = DenseBlockmodel::from_assignment(&g, vec![0, 1, 1, 2, 2, 3], 4);
        for r in 0..4usize {
            for s in 0..4usize {
                if r == s {
                    continue;
                }
                let ds = bm.delta_entropy_merge(r, s);
                let merged: Vec<u32> = bm
                    .assignment
                    .iter()
                    .map(|&b| if b as usize == r { s as u32 } else { b })
                    .collect();
                let after = DenseBlockmodel::from_assignment(&g, merged, 4);
                let exact = after.entropy() - bm.entropy();
                assert!(
                    (ds - exact).abs() < 1e-9,
                    "merge {r}->{s}: got {ds}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn naive_sbp_recovers_two_cliques() {
        // Two 8-cliques joined by one edge (big enough that the 2-block
        // model's likelihood gain beats its description-length cost).
        let k = 8u32;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k + i, k + j, 1));
                }
            }
        }
        edges.push((0, k, 1));
        let g = Graph::from_edges(2 * k as usize, edges);
        let res = naive_sbp(
            &g,
            &SbpConfig {
                seed: 6,
                ..Default::default()
            },
        );
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment[0], res.assignment[7]);
        assert_eq!(res.assignment[8], res.assignment[15]);
        assert_ne!(res.assignment[0], res.assignment[8]);
    }

    #[test]
    fn naive_sbp_empty_graph() {
        let g = Graph::from_edges(0, Vec::new());
        let res = naive_sbp(&g, &SbpConfig::default());
        assert_eq!(res.num_blocks, 0);
    }

    #[test]
    fn naive_sbp_from_finetunes_oversegmentation() {
        let k = 8u32;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k + i, k + j, 1));
                }
            }
        }
        edges.push((0, k, 1));
        let g = Graph::from_edges(2 * k as usize, edges);
        // 4-block over-segmentation with sparse labels (tests compaction).
        let start: Vec<u32> = (0..16u32).map(|v| (v / 8) * 10 + v % 2).collect();
        let res = naive_sbp_from(
            &g,
            start,
            &SbpConfig {
                seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn compact_labels_densifies() {
        let mut a = vec![7u32, 7, 2, 9, 2];
        let k = compact_labels(&mut a);
        assert_eq!(k, 3);
        assert_eq!(a, vec![0, 0, 1, 2, 1]);
    }
}

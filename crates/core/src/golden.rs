//! The golden-ratio search over the number of communities (paper §II-B).
//!
//! Up to three `(num_blocks, DL, partition)` snapshots are kept, ordered by
//! decreasing block count. While the snapshots are also in decreasing order
//! of description length, the search keeps agglomerating from the best
//! snapshot; once a higher DL appears (the "golden ratio criterion"), the
//! optimum is bracketed and golden-section steps shrink the bracket until
//! the block-count window is ≤ 2 wide.
//!
//! The bracket compares raw f64 description lengths (`entry.dl <= mid.dl`
//! in [`GoldenBracket::record`]), so its decisions are only replica-stable
//! because those DLs are themselves bit-stable: entropy sums accumulate
//! over canonical matrix lines (see `crate::line`), making equal logical
//! states produce equal bits in both the dense and sparse regimes.

/// A stored search point: partition + its block count and description
/// length. The partition is the dense assignment vector, from which a
/// `Blockmodel` can be rebuilt in O(E).
#[derive(Clone, Debug)]
pub struct BracketEntry {
    /// Dense block assignment (labels `0..num_blocks`).
    pub assignment: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
    /// Description length of this partition.
    pub dl: f64,
}

/// What the driver should do next.
#[derive(Clone, Debug)]
pub enum NextStep {
    /// Start from `start` and merge `blocks_to_merge` blocks, then run the
    /// MCMC phase and record the outcome.
    Continue {
        /// Snapshot to resume from.
        start: BracketEntry,
        /// Number of merges to apply this iteration.
        blocks_to_merge: usize,
    },
    /// The optimum is bracketed within ±1 block: return the best snapshot.
    Done(BracketEntry),
}

/// The three-point bracket. `hi` holds the most blocks, `lo` the fewest;
/// `mid` is the best description length seen.
#[derive(Clone, Debug, Default)]
pub struct GoldenBracket {
    hi: Option<BracketEntry>,
    mid: Option<BracketEntry>,
    lo: Option<BracketEntry>,
    rate: f64,
}

impl GoldenBracket {
    /// Creates an empty bracket with the agglomeration rate used before the
    /// bracket is established (the paper halves: rate = 0.5).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "reduction rate must be in (0,1)");
        GoldenBracket {
            rate,
            ..Default::default()
        }
    }

    /// Seeds the search with the starting partition (typically the identity
    /// partition at `C = V`). Fills both `hi` and `mid`, so a first result
    /// that is *worse* immediately establishes the bracket instead of
    /// looping.
    pub fn seed(&mut self, entry: BracketEntry) {
        self.hi = Some(entry.clone());
        self.mid = Some(entry);
    }

    /// True once all three points are known (the golden ratio criterion has
    /// been met). The paper switches the MCMC convergence threshold from
    /// loose to tight at this moment.
    pub fn established(&self) -> bool {
        self.hi.is_some() && self.mid.is_some() && self.lo.is_some()
    }

    /// Best snapshot so far.
    pub fn best(&self) -> Option<&BracketEntry> {
        self.mid.as_ref()
    }

    /// The three bracket points `(hi, mid, lo)` — the complete search
    /// state besides the rate. Exposed for checkpointing: together with
    /// [`GoldenBracket::from_parts`] this round-trips the bracket
    /// exactly, which is what makes a resumed golden search bit-identical
    /// to an uninterrupted one.
    pub fn parts(
        &self,
    ) -> (
        Option<&BracketEntry>,
        Option<&BracketEntry>,
        Option<&BracketEntry>,
    ) {
        (self.hi.as_ref(), self.mid.as_ref(), self.lo.as_ref())
    }

    /// Rebuilds a bracket from checkpointed parts.
    ///
    /// # Panics
    /// Panics if `rate` is outside `(0, 1)` (same contract as
    /// [`GoldenBracket::new`]).
    pub fn from_parts(
        rate: f64,
        hi: Option<BracketEntry>,
        mid: Option<BracketEntry>,
        lo: Option<BracketEntry>,
    ) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "reduction rate must be in (0,1)");
        GoldenBracket { hi, mid, lo, rate }
    }

    /// Records the outcome of an iteration.
    pub fn record(&mut self, entry: BracketEntry) {
        let Some(mid) = self.mid.as_ref() else {
            self.mid = Some(entry);
            return;
        };
        if entry.dl <= mid.dl {
            // New best: old mid becomes the bound on its side.
            let old_mid = self.mid.take().expect("mid checked above");
            if old_mid.num_blocks > entry.num_blocks {
                self.replace_hi(old_mid);
            } else {
                self.replace_lo(old_mid);
            }
            self.mid = Some(entry);
        } else if entry.num_blocks < mid.num_blocks {
            self.replace_lo(entry);
        } else {
            self.replace_hi(entry);
        }
    }

    fn replace_hi(&mut self, e: BracketEntry) {
        // Keep the tighter (smaller-B) bound when one already exists.
        match &self.hi {
            Some(hi) if hi.num_blocks <= e.num_blocks => {}
            _ => self.hi = Some(e),
        }
    }

    fn replace_lo(&mut self, e: BracketEntry) {
        match &self.lo {
            Some(lo) if lo.num_blocks >= e.num_blocks => {}
            _ => self.lo = Some(e),
        }
    }

    /// Decides the next iteration (paper §II-B; Graph-Challenge reference
    /// `prepare_for_partition_on_next_num_blocks`).
    ///
    /// # Panics
    /// Panics if called before any entry was recorded or seeded.
    pub fn next(&self) -> NextStep {
        let mid = self
            .mid
            .as_ref()
            .expect("GoldenBracket::next called before seed/record");
        if mid.num_blocks <= 1 {
            return NextStep::Done(mid.clone());
        }
        if !self.established() {
            // Keep agglomerating from the best snapshot.
            let b = mid.num_blocks;
            let to_merge = (((b as f64) * self.rate).round() as usize).clamp(1, b - 1);
            return NextStep::Continue {
                start: mid.clone(),
                blocks_to_merge: to_merge,
            };
        }
        let hi = self.hi.as_ref().expect("established");
        let lo = self.lo.as_ref().expect("established");
        if hi.num_blocks.saturating_sub(lo.num_blocks) <= 2 {
            return NextStep::Done(mid.clone());
        }
        let upper = hi.num_blocks - mid.num_blocks;
        let lower = mid.num_blocks - lo.num_blocks;
        if upper >= lower && upper >= 2 {
            // Probe the upper interval: merge down from hi.
            let probe = (mid.num_blocks + ((upper as f64) * 0.618).round() as usize)
                .clamp(mid.num_blocks + 1, hi.num_blocks - 1);
            NextStep::Continue {
                start: hi.clone(),
                blocks_to_merge: hi.num_blocks - probe,
            }
        } else {
            // Probe the lower interval: merge down from mid.
            let probe = (lo.num_blocks + ((lower as f64) * 0.618).round() as usize).clamp(
                lo.num_blocks + 1,
                mid.num_blocks.saturating_sub(1).max(lo.num_blocks + 1),
            );
            NextStep::Continue {
                start: mid.clone(),
                blocks_to_merge: mid.num_blocks - probe,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(b: usize, dl: f64) -> BracketEntry {
        BracketEntry {
            assignment: vec![0; 4],
            num_blocks: b,
            dl,
        }
    }

    #[test]
    fn pre_bracket_agglomerates_at_rate() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(100, 1000.0));
        match g.next() {
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                assert_eq!(start.num_blocks, 100);
                assert_eq!(blocks_to_merge, 50);
            }
            _ => panic!("expected Continue"),
        }
    }

    #[test]
    fn improving_results_shift_mid_down() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(100, 1000.0));
        g.record(entry(50, 900.0));
        assert!(!g.established());
        assert_eq!(g.best().unwrap().num_blocks, 50);
        g.record(entry(25, 850.0));
        assert_eq!(g.best().unwrap().num_blocks, 25);
        assert!(!g.established());
    }

    #[test]
    fn worse_result_establishes_bracket() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(100, 1000.0));
        g.record(entry(50, 900.0));
        g.record(entry(25, 950.0)); // worse → lower bound
        assert!(g.established());
        assert_eq!(g.best().unwrap().num_blocks, 50);
    }

    #[test]
    fn worse_first_result_is_handled_via_seed() {
        // If merging immediately makes things worse, the seeded hi==mid
        // ensures the bracket establishes instead of looping.
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(10, 100.0));
        g.record(entry(5, 200.0));
        assert!(g.established());
        match g.next() {
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                // Bracket is (10, 10, 5): probes the lower interval.
                assert_eq!(start.num_blocks, 10);
                assert!((1..5).contains(&blocks_to_merge));
            }
            NextStep::Done(_) => panic!("should keep searching"),
        }
    }

    #[test]
    fn golden_probe_stays_strictly_inside() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(100, 1000.0));
        g.record(entry(50, 900.0));
        g.record(entry(25, 950.0));
        match g.next() {
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                let probe = start.num_blocks - blocks_to_merge;
                assert!(probe > 25 && probe < 100);
                assert_ne!(probe, 50);
            }
            _ => panic!("expected Continue"),
        }
    }

    #[test]
    fn narrow_bracket_terminates() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(5, 100.0));
        g.record(entry(4, 90.0));
        g.record(entry(3, 95.0));
        // hi=5, mid=4, lo=3 → width 2 → done.
        match g.next() {
            NextStep::Done(best) => assert_eq!(best.num_blocks, 4),
            _ => panic!("expected Done"),
        }
    }

    #[test]
    fn single_block_terminates() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(1, 10.0));
        assert!(matches!(g.next(), NextStep::Done(_)));
    }

    #[test]
    fn bounds_only_tighten() {
        let mut g = GoldenBracket::new(0.5);
        g.seed(entry(100, 1000.0));
        g.record(entry(50, 900.0)); // mid=50, hi=100
        g.record(entry(25, 950.0)); // lo=25
        g.record(entry(40, 980.0)); // worse, fewer blocks than mid → lo side, tighter
        match g.next() {
            NextStep::Continue { start, .. } => {
                // lo must now be 40, so probes stay in (40, 100).
                let probe = start.num_blocks; // either hi(100) or mid(50)
                assert!(probe == 100 || probe == 50);
            }
            NextStep::Done(_) => {}
        }
        // A looser lo must NOT replace the tighter one.
        g.record(entry(10, 990.0));
        // Simulate convergence loop: the search space never widens.
        let mut width_seen = usize::MAX;
        for _ in 0..50 {
            match g.next() {
                NextStep::Continue {
                    start,
                    blocks_to_merge,
                } => {
                    let probe = start.num_blocks - blocks_to_merge;
                    // Probe must be inside the current bracket.
                    assert!(probe >= 40, "probe {probe} below tight lo 40");
                    // Pretend the probe was slightly worse than mid.
                    g.record(entry(probe, 901.0 + probe as f64 * 1e-6));
                    let w = g.hi.as_ref().unwrap().num_blocks - g.lo.as_ref().unwrap().num_blocks;
                    assert!(w <= width_seen, "bracket widened");
                    width_seen = w;
                }
                NextStep::Done(best) => {
                    assert_eq!(best.num_blocks, 50);
                    return;
                }
            }
        }
        panic!("golden search failed to terminate");
    }
}

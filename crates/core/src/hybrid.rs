//! Hybrid shared-memory parallel MCMC (paper §II-B, citing Wanye et al.
//! ICPP'22), plus the python-style batch variant.
//!
//! The hybrid scheme processes the informative, high-degree vertices
//! sequentially (exact Metropolis–Hastings) and the low-degree majority in
//! parallel chunks of asynchronous Gibbs: proposals within a chunk are
//! evaluated concurrently against a frozen blockmodel snapshot, accepted
//! moves are applied between chunks. Determinism is preserved by deriving
//! each vertex's RNG stream from `(seed, sweep, vertex)`, independent of
//! thread scheduling.
//!
//! The batch variant evaluates *every* vertex against the frozen state and
//! then applies all accepted moves — the parallelization used by the
//! original python DC-SBP reference, kept for the Table VI comparison and
//! as an ablation.

use crate::blockmodel::Blockmodel;
use crate::delta::{with_scratch, DeltaScratch};
use crate::mcmc::{AcceptedMove, SweepOutcome};
use crate::propose::propose_for_vertex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sbp_graph::{Graph, Vertex};

/// Configuration of the hybrid MCMC sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridConfig {
    /// Fraction of the (degree-sorted) vertex set processed sequentially,
    /// from the top. The ICPP'22 hybrid treats high-degree vertices as too
    /// informative for stale evaluation.
    pub sequential_fraction: f64,
    /// Chunk size for the asynchronous-Gibbs portion; state is refreshed
    /// between chunks.
    pub chunk_size: usize,
    /// Evaluate chunk proposals with rayon. With `false` the schedule is
    /// identical but single-threaded (useful when many simulated MPI ranks
    /// already saturate the machine).
    pub parallel: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            sequential_fraction: 0.1,
            chunk_size: 256,
            parallel: true,
        }
    }
}

/// Derives the `(seed, sweep, vertex)`-keyed RNG stream shared by every
/// keyed sweep implementation (hybrid, batch, and keyed MH). Keying by
/// vertex — never by rank or thread — is what makes sweep schedules
/// deterministic under thread scheduling and invariant to how the
/// distributed drivers partition the vertex set.
pub(crate) fn vertex_rng(seed: u64, sweep: usize, v: Vertex) -> SmallRng {
    // SplitMix-style mixing of the three stream coordinates.
    let mut z = seed
        ^ (sweep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (v as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Evaluates one vertex against the current (frozen) blockmodel; returns
/// the accepted move, if any. Allocation-free via the caller's scratch.
pub(crate) fn evaluate_vertex(
    graph: &Graph,
    bm: &Blockmodel,
    v: Vertex,
    beta: f64,
    rng: &mut SmallRng,
    scratch: &mut DeltaScratch,
) -> Option<AcceptedMove> {
    if graph.degree(v) == 0 {
        return None;
    }
    let to = propose_for_vertex(rng, graph, bm, v)?;
    if to == bm.block_of(v) {
        return None;
    }
    scratch.vertex_move_delta(graph, bm, v, to);
    let ds = scratch.delta_entropy(bm);
    let hastings = scratch.hastings_correction(graph, bm, v);
    let p_accept = ((-beta * ds).exp() * hastings).min(1.0);
    (rng.random::<f64>() < p_accept).then_some(AcceptedMove { v, to })
}

/// One hybrid sweep over `vertices` (which EDiSt passes as the rank's owned
/// set). High-degree head: sequential exact MH. Low-degree tail: chunked
/// asynchronous Gibbs.
pub fn hybrid_sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    beta: f64,
    cfg: &HybridConfig,
    seed: u64,
    sweep_idx: usize,
) -> SweepOutcome {
    let mut order: Vec<Vertex> = vertices.to_vec();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let n_seq = ((order.len() as f64) * cfg.sequential_fraction).ceil() as usize;
    let n_seq = n_seq.min(order.len());
    let (head, tail) = order.split_at(n_seq);

    let mut out = SweepOutcome::default();

    // Sequential high-degree portion.
    with_scratch(|scratch| {
        for &v in head {
            let mut rng = vertex_rng(seed, sweep_idx, v);
            out.proposals += 1;
            if let Some(m) = evaluate_vertex(graph, bm, v, beta, &mut rng, scratch) {
                bm.move_vertex(graph, v, m.to);
                out.moves.push(m);
            }
        }
    });

    // Chunked asynchronous Gibbs over the low-degree tail. Each worker
    // thread evaluates through its own thread-local scratch.
    let chunk_size = cfg.chunk_size.max(1);
    for chunk in tail.chunks(chunk_size) {
        let accepted: Vec<AcceptedMove> = if cfg.parallel && chunk.len() >= 32 {
            chunk
                .par_iter()
                .filter_map(|&v| {
                    let mut rng = vertex_rng(seed, sweep_idx, v);
                    with_scratch(|scratch| evaluate_vertex(graph, &*bm, v, beta, &mut rng, scratch))
                })
                .collect()
        } else {
            with_scratch(|scratch| {
                chunk
                    .iter()
                    .filter_map(|&v| {
                        let mut rng = vertex_rng(seed, sweep_idx, v);
                        evaluate_vertex(graph, &*bm, v, beta, &mut rng, scratch)
                    })
                    .collect()
            })
        };
        out.proposals += chunk.len();
        for m in accepted {
            // Asynchronous Gibbs: apply even though the decision was made
            // against a (slightly) stale snapshot.
            bm.move_vertex(graph, m.v, m.to);
            out.moves.push(m);
        }
    }
    out
}

/// One batch sweep (python-reference style): evaluate *all* vertices
/// against the frozen state, then apply every accepted move.
///
/// Evaluation fans out over the persistent pool (each vertex's decision
/// is a pure function of the frozen state and its `(seed, sweep, vertex)`
/// stream, and the accepted list is collected in input order), so the
/// sweep — and every trajectory built on it — is bit-identical to the
/// serial evaluation at any thread count.
pub fn batch_sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    beta: f64,
    seed: u64,
    sweep_idx: usize,
) -> SweepOutcome {
    let accepted: Vec<AcceptedMove> = if vertices.len() >= 32 {
        vertices
            .par_iter()
            .filter_map(|&v| {
                let mut rng = vertex_rng(seed, sweep_idx, v);
                with_scratch(|scratch| evaluate_vertex(graph, &*bm, v, beta, &mut rng, scratch))
            })
            .collect()
    } else {
        with_scratch(|scratch| {
            vertices
                .iter()
                .filter_map(|&v| {
                    let mut rng = vertex_rng(seed, sweep_idx, v);
                    evaluate_vertex(graph, &*bm, v, beta, &mut rng, scratch)
                })
                .collect()
        })
    };
    let mut out = SweepOutcome {
        proposals: vertices.len(),
        ..Default::default()
    };
    for m in accepted {
        bm.move_vertex(graph, m.v, m.to);
        out.moves.push(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 2),
                (1, 2, 2),
                (2, 0, 2),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn hybrid_sweep_is_deterministic_given_seed() {
        let g = two_triangles();
        let vertices: Vec<u32> = (0..6).collect();
        let cfg = HybridConfig::default();
        let run = || {
            let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
            let mut all_moves = Vec::new();
            for sweep in 0..5 {
                let out = hybrid_sweep(&g, &mut bm, &vertices, 3.0, &cfg, 77, sweep);
                all_moves.extend(out.moves);
            }
            (bm.assignment().to_vec(), all_moves)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hybrid_sweep_keeps_invariants() {
        let g = two_triangles();
        let vertices: Vec<u32> = (0..6).collect();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        for sweep in 0..10 {
            hybrid_sweep(
                &g,
                &mut bm,
                &vertices,
                3.0,
                &HybridConfig::default(),
                5,
                sweep,
            );
            bm.validate(&g).unwrap();
        }
    }

    #[test]
    fn sequential_fraction_one_is_pure_mh() {
        // With fraction 1.0, every vertex goes through the sequential path;
        // the sweep must behave like plain MH (state always fresh).
        let g = two_triangles();
        let vertices: Vec<u32> = (0..6).collect();
        let cfg = HybridConfig {
            sequential_fraction: 1.0,
            chunk_size: 1,
            parallel: false,
        };
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let before = bm.description_length();
        for sweep in 0..20 {
            hybrid_sweep(&g, &mut bm, &vertices, 3.0, &cfg, 9, sweep);
        }
        bm.validate(&g).unwrap();
        assert!(bm.description_length() <= before);
    }

    #[test]
    fn batch_sweep_improves_bad_partition() {
        let g = two_triangles();
        let vertices: Vec<u32> = (0..6).collect();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let before = bm.description_length();
        for sweep in 0..20 {
            batch_sweep(&g, &mut bm, &vertices, 3.0, 13, sweep);
            bm.validate(&g).unwrap();
        }
        assert!(bm.description_length() < before);
    }

    #[test]
    fn subset_sweeps_do_not_touch_other_vertices() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let before = bm.assignment().to_vec();
        hybrid_sweep(&g, &mut bm, &[0, 2], 3.0, &HybridConfig::default(), 21, 0);
        for v in [1usize, 3, 4, 5] {
            assert_eq!(bm.assignment()[v], before[v]);
        }
    }
}

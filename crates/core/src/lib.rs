//! # sbp-core — stochastic block partitioning
//!
//! A from-scratch Rust implementation of the degree-corrected stochastic
//! blockmodel (DCSBM) inference engine the paper builds on — the shared
//! foundation of sequential SBP, shared-memory Hybrid SBP, DC-SBP and
//! EDiSt:
//!
//! * [`Blockmodel`] — the inter-block edge-count matrix with **adaptive
//!   storage**: a flat dense `C×C` array (plus transpose) when the block
//!   count is at most [`blockmodel::dense_threshold`], and sparse
//!   [`line::CanonicalLine`] rows (sorted vectors) plus a stored
//!   transpose above it (the paper's §III-A optimizations a and b).
//!   Every line iterates in canonical ascending order regardless of
//!   storage or move history — the property the distributed drivers'
//!   unconditional bit-identity rests on. Incremental vertex moves,
//!   cached `ln(degree)` vectors, and exact description-length (Eq. 2)
//!   evaluation;
//! * [`delta`] — sparse O(affected-lines) change-in-entropy computation for
//!   vertex moves and block merges (optimization c), built around the
//!   reusable per-thread [`DeltaScratch`] so the MCMC inner loop performs
//!   zero heap allocation per proposal;
//! * [`propose`] — the Graph-Challenge proposal distribution and
//!   Metropolis–Hastings correction;
//! * [`merge`] — the agglomerative block-merge phase (Alg. 1) with
//!   union-find merge resolution (optimization d);
//! * [`mcmc`] — the sequential Metropolis–Hastings phase (Alg. 2) plus
//!   sweep-loop convergence control;
//! * [`hybrid`] — the Hybrid-SBP shared-memory parallel MCMC (sequential
//!   high-degree vertices + chunked asynchronous-Gibbs low-degree ones);
//! * [`golden`] — the golden-ratio search over the number of communities;
//! * [`run`] — the unified backend API: the object-safe [`Solver`] trait,
//!   the shared [`RunConfig`]/[`RunOutcome`] types, progress events, and
//!   cooperative cancellation via [`CancelToken`];
//! * [`mod@sbp`] — the end-to-end driver ([`solve_sbp`]);
//! * [`naive`] — a deliberately dense/batched baseline equivalent to the
//!   original python reference implementation, used to regenerate Table VI.
//!
//! The phase functions accept explicit vertex/block subsets so the
//! distributed algorithms in `sbp-dist` can reuse them unchanged: EDiSt's
//! distributed phases are literally these functions run on the owned subset
//! followed by an allgather.
//!
//! ## Shared-memory parallelism and the determinism contract
//!
//! Merge-phase proposals, Hybrid chunk evaluation, Batch sweeps, the
//! naive baseline's batch sweeps, sparse-matrix rebuilds, and the full
//! entropy/DL reductions all run on the persistent work-stealing pool
//! behind the `rayon` shim (worker count from `SBP_THREADS`, read once
//! per process; default: available parallelism). Workers persist, so
//! each one's thread-local [`DeltaScratch`] is allocated once and reused
//! across every parallel region. Results are **bit-identical at any
//! thread count**: parallel collections preserve input order, RNG
//! streams are keyed by `(seed, sweep, vertex)` or block id (never by
//! thread or rank), and [`Blockmodel::entropy`] is a fixed-shape chunked
//! reduction whose f64 summation layout depends only on the block count
//! — enforced end to end by the root `tests/threads.rs` suite.
//!
//! The contract extends **into the SIMD lanes** ([`mod@simd`]): the AVX2
//! kernels compute each cell's term with the same elementwise IEEE op
//! sequence as the scalar code (never fused) and fold the fixed-width
//! lane blocks into the accumulator left to right — the scalar loop's
//! association order — with skipped cells masked to `+0.0` (a bitwise
//! no-op on any accumulator this crate can produce). Vectorized and
//! scalar paths are therefore bit-identical, proven by `to_bits`
//! property tests; `SBP_NO_SIMD=1` forces the scalar path and must
//! change nothing.
//!
//! ## Tuning the dense/sparse threshold
//!
//! The storage representation switches at `compacted()`/rebuild boundaries
//! based on block count and occupancy: dense when `C <= 64`, or when
//! `C <= SBP_DENSE_THRESHOLD` (environment variable, default 1024, read
//! once per process) *and* the mean cell occupancy `E/C²` clears the
//! occupancy bar — a dense line scan only wins when the lines are
//! populated, so the sparse early phase (`C ≈ V`, near-empty lines)
//! stays sparse even below the threshold. By default the bar is measured
//! once at startup by a micro-probe of this machine's dense-vs-sparse
//! walk costs (clamped to `[1/8, 1/2]`); explicitly setting
//! `SBP_DENSE_THRESHOLD` reverts to the fixed legacy bar `E ≥ C²/8` —
//! see [`blockmodel::dense_threshold`] for the precedence. The dense
//! side costs `2·C²·8` bytes per blockmodel but makes `get` O(1) and
//! line scans contiguous — at `C ≤ 256` the ΔS kernel runs several
//! times faster than the sparse path (see `benchmarks/summary.md`).
//! Raise the threshold on large-memory machines whose graphs converge
//! to a few thousand communities; lower it when simulating many MPI
//! ranks in one process (every rank keeps its own replica) or under
//! tight memory. Storage selection never changes results — only speed
//! and memory — so machine-dependent probing is safe in distributed
//! runs.

pub mod blockmodel;
pub mod checkpoint;
pub mod delta;
pub mod fxhash;
pub mod golden;
pub mod hybrid;
pub mod line;
pub mod lntab;
pub mod mcmc;
pub mod merge;
pub mod naive;
pub mod propose;
pub mod registry;
pub mod run;
pub mod sbp;
pub mod simd;

pub use blockmodel::{
    auto_picks_dense, dense_occupancy_crossover, dense_threshold, Blockmodel, LineIter, StorageKind,
};
pub use checkpoint::{CheckpointError, CheckpointState};
pub use delta::{
    delta_entropy, merge_delta, vertex_move_delta, with_scratch, DeltaScratch, LineDelta,
};
pub use golden::{GoldenBracket, NextStep};
pub use hybrid::HybridConfig;
pub use mcmc::{keyed_mh_sweep, mcmc_phase, mh_sweep, AcceptedMove, McmcStats};
pub use merge::{apply_merges, propose_merges, MergeCandidate};
pub use naive::{naive_sbp, naive_sbp_from, NaiveScratch};
pub use propose::{hastings_correction, propose_for_block, propose_for_vertex};
pub use registry::{RegistryError, SolverRegistry, SolverSpec};
pub use run::{
    Batch, CancelToken, CheckpointSpec, DegradedReason, Hybrid, NoProgress, ProgressEvent,
    ProgressFn, ProgressSink, RunConfig, RunOutcome, Sequential, Solver, WarmStart,
};
pub use sbp::{checkpoint_state, solve_sbp, IterationStat, McmcStrategy, SbpConfig, SbpResult};
#[allow(deprecated)]
pub use sbp::{sbp, sbp_from};

/// `h(x) = (1+x)·ln(1+x) − x·ln(x)`, the model-complexity kernel of the
/// description length (paper Eq. 2).
pub fn h(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        (1.0 + x) * (1.0 + x).ln() - x * x.ln()
    }
}

/// Model-complexity part of the description length for a graph with `e`
/// total edge weight and `v` vertices partitioned into `c` blocks:
/// `E·h(C²/E) + V·ln(C)`.
pub fn model_description_length(v: usize, e: i64, c: usize) -> f64 {
    if e <= 0 || c == 0 {
        return 0.0;
    }
    let (v, e, c) = (v as f64, e as f64, c as f64);
    e * h(c * c / e) + v * c.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_matches_eval_crate_convention() {
        assert_eq!(h(0.0), 0.0);
        assert!((h(1.0) - 2.0 * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn model_dl_increases_with_blocks() {
        let a = model_description_length(100, 1000, 2);
        let b = model_description_length(100, 1000, 50);
        assert!(b > a);
    }

    #[test]
    fn model_dl_degenerate_inputs() {
        assert_eq!(model_description_length(10, 0, 3), 0.0);
        assert_eq!(model_description_length(10, 5, 0), 0.0);
    }
}

//! The Metropolis–Hastings MCMC phase (paper Alg. 2).
//!
//! `keyed_mh_sweep` performs one sequential pass over an explicit vertex
//! subset (EDiSt calls it with a rank's owned vertices, Alg. 5 lines
//! 4–15) drawing each vertex's proposal randomness from a
//! `(seed, sweep, vertex)`-keyed stream, so the same vertex draws the
//! same randomness no matter which rank sweeps it; `mh_sweep` is the
//! explicit-RNG variant for callers that manage their own stream.
//! `mcmc_phase` wraps the sweep loop with the paper's convergence rule —
//! stop when the moving average of the last three per-sweep ΔDL values
//! falls below `threshold × initial DL`, or after `max_sweeps` — plus a
//! cancellation check between sweeps.
//!
//! Proposal draws, acceptance tests, and the per-sweep DL the convergence
//! rule consumes all flow through canonical-order line iteration
//! ([`crate::line`]), so a sweep over a given blockmodel state is a pure
//! function of `(state, seed, sweep, vertex set)` — never of the storage
//! layout's history. The distributed drivers inherit sparse-regime
//! bit-identity from exactly this property.

use crate::blockmodel::Blockmodel;
use crate::delta::with_scratch;
use crate::hybrid::{evaluate_vertex, vertex_rng};
use crate::propose::propose_for_vertex;
use crate::run::CancelToken;
use rand::Rng;
use sbp_graph::{Graph, Vertex};

/// A move accepted during a sweep, in application order. This is exactly
/// the payload EDiSt allgathers between ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcceptedMove {
    /// The vertex that moved.
    pub v: Vertex,
    /// Its new block.
    pub to: u32,
}

/// Outcome of a single sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Accepted moves in order.
    pub moves: Vec<AcceptedMove>,
    /// Number of proposals evaluated.
    pub proposals: usize,
}

/// Aggregate statistics for a full MCMC phase.
#[derive(Clone, Debug, Default)]
pub struct McmcStats {
    /// Sweeps executed.
    pub sweeps: usize,
    /// Total accepted moves.
    pub moves: usize,
    /// Total proposals evaluated.
    pub proposals: usize,
    /// Description length when the phase ended.
    pub final_dl: f64,
}

/// One sequential Metropolis–Hastings pass over `vertices`, applying
/// accepted moves to `bm` immediately (Alg. 2 lines 3–10).
///
/// Zero-degree vertices are skipped: their block membership does not
/// affect the likelihood, so proposals would be wasted work. Proposal
/// evaluation runs through the thread-local [`crate::delta::DeltaScratch`],
/// so the per-proposal hot path performs no heap allocation.
pub fn mh_sweep<R: Rng + ?Sized>(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    beta: f64,
    rng: &mut R,
) -> SweepOutcome {
    with_scratch(|scratch| {
        let mut out = SweepOutcome::default();
        for &v in vertices {
            if graph.degree(v) == 0 {
                continue;
            }
            let Some(to) = propose_for_vertex(rng, graph, bm, v) else {
                continue;
            };
            let from = bm.block_of(v);
            if to == from {
                continue;
            }
            out.proposals += 1;
            scratch.vertex_move_delta(graph, bm, v, to);
            let ds = scratch.delta_entropy(bm);
            let hastings = scratch.hastings_correction(graph, bm, v);
            let p_accept = ((-beta * ds).exp() * hastings).min(1.0);
            if rng.random::<f64>() < p_accept {
                bm.move_vertex(graph, v, to);
                out.moves.push(AcceptedMove { v, to });
            }
        }
        out
    })
}

/// One sequential Metropolis–Hastings pass over `vertices` with
/// per-vertex keyed RNG streams: vertex `v`'s proposal randomness is a
/// pure function of `(seed, sweep_idx, v)`, independent of sweep order,
/// history, and — in the distributed drivers — of which rank owns `v`.
/// Accepted moves are applied to `bm` immediately, exactly like
/// [`mh_sweep`].
pub fn keyed_mh_sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    beta: f64,
    seed: u64,
    sweep_idx: usize,
) -> SweepOutcome {
    with_scratch(|scratch| {
        let mut out = SweepOutcome::default();
        for &v in vertices {
            if graph.degree(v) == 0 {
                continue;
            }
            out.proposals += 1;
            let mut rng = vertex_rng(seed, sweep_idx, v);
            if let Some(m) = evaluate_vertex(graph, bm, v, beta, &mut rng, scratch) {
                bm.move_vertex(graph, v, m.to);
                out.moves.push(m);
            }
        }
        out
    })
}

/// The sweep-loop convergence controller used by both the single-node and
/// the distributed drivers: feeds per-sweep ΔDL values and answers whether
/// the phase should stop.
#[derive(Clone, Debug)]
pub struct ConvergenceCheck {
    initial_dl: f64,
    prev_dl: f64,
    window: [f64; 3],
    filled: usize,
    threshold: f64,
}

impl ConvergenceCheck {
    /// Starts a check from the DL at phase entry with the given relative
    /// threshold (paper Alg. 2 line 12: `ΔDL < t × DL`).
    pub fn new(initial_dl: f64, threshold: f64) -> Self {
        ConvergenceCheck {
            initial_dl,
            prev_dl: initial_dl,
            window: [0.0; 3],
            filled: 0,
            threshold,
        }
    }

    /// Records the DL after a sweep; returns true when the moving average
    /// of the last three per-sweep improvements is below threshold.
    pub fn record(&mut self, dl: f64) -> bool {
        let delta = self.prev_dl - dl;
        self.prev_dl = dl;
        self.window[self.filled % 3] = delta;
        self.filled += 1;
        if self.filled < 3 {
            return false;
        }
        let avg = self.window.iter().sum::<f64>() / 3.0;
        avg.abs() < self.threshold * self.initial_dl.abs()
    }
}

/// Runs sweeps until convergence (paper Alg. 2). `sweep` is the sweep
/// implementation — sequential MH, hybrid, or batch — so the same
/// controller drives every MCMC variant. `cancel` is polled between
/// sweeps: a cancelled phase stops early and reports the sweeps it
/// completed (the distributed drivers coordinate the equivalent check
/// through a broadcast instead, so ranks never disagree). `on_sweep` is
/// invoked with `(sweep_idx, dl, &outcome)` after every sweep — the
/// driver turns it into `ProgressEvent::Sweep` (the outcome carries the
/// accepted/proposed counts); pass `|_, _, _| {}` to observe nothing.
#[allow(clippy::too_many_arguments)]
pub fn mcmc_phase<F, S>(
    graph: &Graph,
    bm: &mut Blockmodel,
    vertices: &[Vertex],
    max_sweeps: usize,
    threshold: f64,
    cancel: &CancelToken,
    mut sweep: F,
    mut on_sweep: S,
) -> McmcStats
where
    F: FnMut(&Graph, &mut Blockmodel, &[Vertex], usize) -> SweepOutcome,
    S: FnMut(usize, f64, &SweepOutcome),
{
    let initial_dl = bm.description_length();
    let mut check = ConvergenceCheck::new(initial_dl, threshold);
    let mut stats = McmcStats {
        final_dl: initial_dl,
        ..Default::default()
    };
    for sweep_idx in 0..max_sweeps {
        if cancel.is_cancelled() {
            break;
        }
        let outcome = sweep(graph, bm, vertices, sweep_idx);
        stats.sweeps += 1;
        stats.moves += outcome.moves.len();
        stats.proposals += outcome.proposals;
        let dl = bm.description_length();
        stats.final_dl = dl;
        on_sweep(sweep_idx, dl, &outcome);
        if check.record(dl) {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sbp_graph::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(
            6,
            vec![
                (0, 1, 2),
                (1, 2, 2),
                (2, 0, 2),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn sweep_repairs_a_misassigned_vertex() {
        // Only vertex 0 is misassigned and only vertex 0 is swept: its
        // neighbors anchor proposals at its home block, and at high beta
        // the improving move is accepted. (Sweeping everything can descend
        // into a different local optimum on a graph this small — that is
        // expected MCMC behavior, not a defect.)
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![1, 0, 0, 1, 1, 1], 2);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            mh_sweep(&g, &mut bm, &[0], 10.0, &mut rng);
            if bm.block_of(0) == 0 {
                break;
            }
        }
        assert_eq!(bm.block_of(0), 0, "vertex 0 never returned home");
        bm.validate(&g).unwrap();
    }

    #[test]
    fn ground_truth_is_stable_at_high_beta() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let truth = bm.assignment().to_vec();
        let mut rng = SmallRng::seed_from_u64(16);
        let vertices: Vec<u32> = (0..6).collect();
        for _ in 0..30 {
            mh_sweep(&g, &mut bm, &vertices, 12.0, &mut rng);
        }
        assert_eq!(bm.assignment(), &truth[..], "truth destabilized");
    }

    #[test]
    fn sweep_keeps_blockmodel_consistent() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let mut rng = SmallRng::seed_from_u64(12);
        let vertices: Vec<u32> = (0..6).collect();
        for _ in 0..20 {
            mh_sweep(&g, &mut bm, &vertices, 3.0, &mut rng);
            bm.validate(&g).unwrap();
        }
    }

    #[test]
    fn sweep_over_subset_only_moves_subset() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let before = bm.assignment().to_vec();
        let mut rng = SmallRng::seed_from_u64(13);
        let out = mh_sweep(&g, &mut bm, &[0, 1], 3.0, &mut rng);
        for m in &out.moves {
            assert!(m.v <= 1);
        }
        for (v, &b) in before.iter().enumerate().skip(2) {
            assert_eq!(bm.assignment()[v], b, "vertex {v} moved");
        }
    }

    #[test]
    fn zero_degree_vertices_are_skipped() {
        let g = Graph::from_edges(3, vec![(0, 1, 1), (1, 0, 1)]);
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0], 2);
        let mut rng = SmallRng::seed_from_u64(14);
        let out = mh_sweep(&g, &mut bm, &[2], 3.0, &mut rng);
        assert_eq!(out.proposals, 0);
        assert!(out.moves.is_empty());
    }

    #[test]
    fn mcmc_phase_reduces_dl_from_bad_start() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let initial = bm.description_length();
        let mut rng = SmallRng::seed_from_u64(15);
        let vertices: Vec<u32> = (0..6).collect();
        let mut observed = Vec::new();
        let stats = mcmc_phase(
            &g,
            &mut bm,
            &vertices,
            60,
            1e-6,
            &CancelToken::default(),
            |g, bm, vs, _| mh_sweep(g, bm, vs, 3.0, &mut rng),
            |sweep, dl, outcome| observed.push((sweep, dl, outcome.moves.len())),
        );
        assert!(stats.final_dl <= initial);
        assert!(stats.sweeps > 0);
        // The hook fires once per sweep, in order, ending on the final DL,
        // and its per-sweep move counts add up to the phase total.
        assert_eq!(observed.len(), stats.sweeps);
        assert_eq!(observed.last().unwrap().1, stats.final_dl);
        assert!(observed.iter().enumerate().all(|(i, &(s, _, _))| s == i));
        assert_eq!(
            observed.iter().map(|&(_, _, m)| m).sum::<usize>(),
            stats.moves
        );
    }

    #[test]
    fn mcmc_phase_stops_on_cancel() {
        let g = two_triangles();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
        let cancel = CancelToken::default();
        cancel.cancel();
        let vertices: Vec<u32> = (0..6).collect();
        let stats = mcmc_phase(
            &g,
            &mut bm,
            &vertices,
            60,
            1e-6,
            &cancel,
            |g, bm, vs, s| keyed_mh_sweep(g, bm, vs, 3.0, 1, s),
            |_, _, _| {},
        );
        assert_eq!(stats.sweeps, 0, "cancelled phase must not sweep");
    }

    #[test]
    fn keyed_mh_sweep_is_deterministic_and_stateless_across_runs() {
        // The stream for vertex v in sweep s is a pure function of
        // (seed, s, v): re-running the whole schedule reproduces the
        // exact move sequence, with no hidden RNG state carried over.
        let g = two_triangles();
        let run = || {
            let mut bm = Blockmodel::from_assignment(&g, vec![0, 1, 0, 1, 0, 1], 2);
            let vertices: Vec<u32> = (0..6).collect();
            let mut all_moves = Vec::new();
            for sweep in 0..5 {
                all_moves.extend(keyed_mh_sweep(&g, &mut bm, &vertices, 3.0, 7, sweep).moves);
            }
            (bm.assignment().to_vec(), all_moves)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn convergence_check_stops_on_plateau() {
        let mut c = ConvergenceCheck::new(1000.0, 1e-4);
        assert!(!c.record(900.0)); // big improvement
        assert!(!c.record(899.99));
        // The third record fills the window; by the fourth, three
        // consecutive tiny deltas must trigger convergence.
        let third = c.record(899.989);
        let fourth = c.record(899.9889);
        assert!(third || fourth, "plateau not detected");
    }

    #[test]
    fn convergence_check_needs_three_sweeps() {
        let mut c = ConvergenceCheck::new(1000.0, 0.5);
        assert!(!c.record(999.0));
        assert!(!c.record(998.0));
        // From sweep 3 on the window is full and the (huge) threshold fires.
        assert!(c.record(997.0));
    }
}

//! Runtime-dispatched AVX2 kernels for the dense-storage hot loops —
//! bit-identical to the scalar paths by construction.
//!
//! ## Why explicit intrinsics
//!
//! The ΔS/entropy hot path walks contiguous `C`-cell lines (dense rows,
//! the stored transpose's columns, and the direct-indexed delta arrays)
//! doing the same four-step dance per cell: zero-skip, `lntab` lookup,
//! one multiply-subtract term, one accumulate. Auto-vectorization never
//! fires on it — the zero-skip branch and the table gather defeat it —
//! so this module hand-vectorizes the *term evaluation* with AVX2 while
//! keeping the **accumulation scalar and in-order**.
//!
//! ## The determinism contract, extended to lanes
//!
//! Every observable f64 sum in this crate has a fixed shape: terms are
//! added in canonical (ascending cell) order, so identical logical state
//! produces identical bits on every storage layout, thread count, and
//! rank count. The SIMD kernels preserve that shape *exactly*:
//!
//! * lanes are loaded in 4-cell blocks, but each lane's term is computed
//!   with the **same IEEE op sequence** as the scalar code (add, sub,
//!   mul, sign-flip — elementwise, never fused: scalar Rust emits no
//!   FMA here, so neither do the kernels), which makes the per-lane
//!   values bit-equal to the scalar terms;
//! * the four lane results are then folded into the running scalar
//!   accumulator **left to right** (lane 0 first), i.e. in ascending
//!   cell order — the same association order as the scalar loop;
//! * cells the scalar loop *skips* (zero `m` and delta) are masked to
//!   `+0.0` before the fold. Adding `+0.0` is a bitwise no-op for every
//!   accumulator value this crate can produce: the accumulators start at
//!   `+0.0` and a finite-sum accumulator can never become `-0.0`
//!   (`a + b == -0.0` requires both operands to be `-0.0`), so
//!   `acc + (+0.0) == acc` and `acc - (+0.0) == acc` bit-for-bit.
//!
//! Cells whose weights fall outside the ranges the vector ops convert
//! exactly (`lntab` table bounds, 2⁵² for `i64 → f64`) are handled by
//! running that 4-cell block through the scalar step — as are blocks
//! containing the moved pair's special columns/rows. Correctness never
//! depends on the vector path being taken.
//!
//! ## Dispatch
//!
//! [`enabled`] performs one-time runtime detection (`is_x86_feature_
//! detected!("avx2")`), overridable with `SBP_NO_SIMD=1`. Callers thread
//! the decision through an explicit `use_simd` argument — there is no
//! global toggle to race on — and the public API exposes `*_scalar`
//! twins (on [`crate::Blockmodel`] and [`crate::DeltaScratch`]) so the
//! property tests can assert `to_bits` equality between the two paths
//! in one process. On non-x86_64 targets every kernel compiles to the
//! scalar body and [`enabled`] is `false`.
//!
//! `lntab` lookups inside the vector body use `vgatherdpd`; an unrolled
//! scalar-load variant is kept behind [`ln_batch_unrolled`] for the
//! bench A/B (`simd/lntab_*` ids in `sbp-bench`; see
//! `benchmarks/summary.md`). On the recording machine the two are
//! within run-to-run noise both standalone and in-kernel; the gather is
//! kept for its smaller instruction footprint (one instruction vs four
//! extracts + four loads + a pack, leaving scalar ports to the
//! accumulator folds). Re-audit per host with the bench ids.

use crate::delta::term;
use crate::lntab;
use sbp_graph::Weight;
use std::sync::OnceLock;

/// Largest `i64` the packed `i64 → f64` conversion trick is exact for
/// (all values below 2⁵² are exactly representable in a double).
const MAX_EXACT: Weight = (1i64 << 52) - 1;

/// Whether the vectorized kernels should run in this process: AVX2
/// detected at runtime and not vetoed by `SBP_NO_SIMD=1`. Read once per
/// process; the scalar fallback is always available regardless.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os("SBP_NO_SIMD").is_some_and(|v| v == "1") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Where a line pass reads its per-cell delta from.
pub(crate) enum DmSource<'a> {
    /// Direct-indexed delta line (dense vertex-move scratch): `dm[i]` is
    /// the delta of cell `i`.
    Slice(&'a [Weight]),
    /// Sorted `(index, delta)` pairs (merge deltas / sorted cell lists),
    /// ascending by index, every index below the line length.
    Pairs(&'a [(u32, Weight)]),
}

/// Cursor over a [`DmSource`], advanced in ascending cell order by both
/// the scalar loop and the 4-cell vector blocks.
struct DmCursor<'a> {
    src: DmSource<'a>,
    p: usize,
}

impl<'a> DmCursor<'a> {
    fn new(src: DmSource<'a>) -> Self {
        DmCursor { src, p: 0 }
    }

    /// Delta of cell `i`; must be called with strictly ascending `i`.
    #[inline(always)]
    fn at(&mut self, i: usize) -> Weight {
        match self.src {
            DmSource::Slice(dm) => dm[i],
            DmSource::Pairs(pairs) => {
                if self.p < pairs.len() && pairs[self.p].0 == i as u32 {
                    let v = pairs[self.p].1;
                    self.p += 1;
                    v
                } else {
                    0
                }
            }
        }
    }

    /// Deltas of cells `i..i + 4` as a fixed block.
    #[inline(always)]
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    fn block4(&mut self, i: usize) -> [Weight; 4] {
        match self.src {
            DmSource::Slice(dm) => [dm[i], dm[i + 1], dm[i + 2], dm[i + 3]],
            DmSource::Pairs(pairs) => {
                let mut out = [0; 4];
                while self.p < pairs.len() {
                    let (idx, v) = pairs[self.p];
                    let idx = idx as usize;
                    if idx >= i + 4 {
                        break;
                    }
                    debug_assert!(idx >= i, "delta pairs out of order");
                    out[idx - i] = v;
                    self.p += 1;
                }
                out
            }
        }
    }

    /// Debug check: every sorted pair was consumed by the walk.
    fn finish(&self) {
        if let DmSource::Pairs(pairs) = self.src {
            debug_assert_eq!(self.p, pairs.len(), "delta cells not consumed");
        }
    }
}

/// How the moved pair's two special indices are treated by a line pass.
pub(crate) enum LaneFix {
    /// Row pass: the *new* term at columns `r`/`s` uses the post-move
    /// `ln(d_in)` instead of the cached per-column value.
    Substitute {
        /// Source block of the move.
        r: u32,
        /// Destination block of the move.
        s: u32,
        /// Post-move `ln(d_in(r))`.
        ln_r: f64,
        /// Post-move `ln(d_in(s))`.
        ln_s: f64,
    },
    /// Column pass: rows `r`/`s` are skipped entirely (already counted
    /// by the row passes).
    Skip {
        /// Source block of the move.
        r: u32,
        /// Destination block of the move.
        s: u32,
    },
}

impl LaneFix {
    #[inline(always)]
    fn special(&self) -> (u32, u32) {
        match *self {
            LaneFix::Substitute { r, s, .. } | LaneFix::Skip { r, s } => (r, s),
        }
    }
}

/// One cell of a ΔS line pass — the scalar source of truth. Replicates
/// the historical loop bodies of `delta_entropy_direct` /
/// `delta_entropy_cells` op for op.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn delta_step(
    i: usize,
    m: Weight,
    dm: Weight,
    lv: f64,
    ln_old: f64,
    ln_new: f64,
    fix: &LaneFix,
    old_sum: &mut f64,
    new_sum: &mut f64,
) {
    if m == 0 && dm == 0 {
        return;
    }
    let iu = i as u32;
    if let LaneFix::Skip { r, s } = fix {
        if iu == *r || iu == *s {
            return;
        }
    }
    if m > 0 {
        *old_sum += term(m, ln_old + lv);
    }
    let m2 = m + dm;
    debug_assert!(m2 >= 0, "cell {i} went negative in delta");
    if m2 > 0 {
        let ln_cell = match fix {
            LaneFix::Substitute { r, s, ln_r, ln_s } => {
                if iu == *r {
                    *ln_r
                } else if iu == *s {
                    *ln_s
                } else {
                    lv
                }
            }
            LaneFix::Skip { .. } => lv,
        };
        *new_sum += term(m2, ln_new + ln_cell);
    }
}

/// Accumulates the old/new entropy terms of one affected matrix line
/// under a cell delta — the shared ΔS line pass behind both delta
/// representations. `ln_vec` holds the per-cell cached `ln(degree)`
/// (`ln_d_in` for row passes, `ln_d_out` for column passes); `ln_old` /
/// `ln_new` are the line's own pre-/post-move `ln(degree)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn delta_line_pass(
    line: &[Weight],
    dm: DmSource<'_>,
    ln_vec: &[f64],
    ln_old: f64,
    ln_new: f64,
    fix: &LaneFix,
    old_sum: &mut f64,
    new_sum: &mut f64,
    use_simd: bool,
) {
    debug_assert!(ln_vec.len() >= line.len());
    if let DmSource::Slice(d) = &dm {
        debug_assert_eq!(d.len(), line.len());
    }
    #[cfg(target_arch = "x86_64")]
    if use_simd && line.len() >= 4 {
        // SAFETY: `use_simd` is only true when `enabled()` detected AVX2.
        unsafe {
            avx2::delta_line_pass(line, dm, ln_vec, ln_old, ln_new, fix, old_sum, new_sum);
        }
        return;
    }
    let _ = use_simd;
    // Specialize the direct-indexed source on zipped iterators — the
    // zero-skip check dominates this loop, and per-cell bounds checks
    // would double its cost (the shape of the pre-SIMD loops).
    match dm {
        DmSource::Slice(d) => {
            for (i, ((&m, &dmv), &lv)) in line.iter().zip(d).zip(ln_vec).enumerate() {
                delta_step(i, m, dmv, lv, ln_old, ln_new, fix, old_sum, new_sum);
            }
        }
        DmSource::Pairs(_) => {
            let mut cur = DmCursor::new(dm);
            for (i, (&m, &lv)) in line.iter().zip(ln_vec).enumerate() {
                let dmv = cur.at(i);
                delta_step(i, m, dmv, lv, ln_old, ln_new, fix, old_sum, new_sum);
            }
            cur.finish();
        }
    }
}

/// One cell of the dense entropy row walk — scalar source of truth,
/// replicating `Blockmodel::entropy_rows`' historical inner loop.
#[inline(always)]
fn entropy_step(i: usize, m: Weight, ln_vec: &[f64], ldr: f64, acc: &mut f64) {
    if m == 0 {
        return;
    }
    debug_assert!(m > 0, "matrix cell {i} is negative");
    let mf = m as f64;
    *acc -= mf * (lntab::ln_int(m) - ldr - ln_vec[i]);
}

/// Subtracts one dense row's entropy terms `m·(ln m − ln d_out(r) −
/// ln d_in(c))` from `acc`, in ascending column order. `ldr` is the
/// row's cached `ln(d_out)`; `ln_vec` the `ln_d_in` cache.
pub(crate) fn entropy_line(
    line: &[Weight],
    ln_vec: &[f64],
    ldr: f64,
    acc: &mut f64,
    use_simd: bool,
) {
    debug_assert!(ln_vec.len() >= line.len());
    #[cfg(target_arch = "x86_64")]
    if use_simd && line.len() >= 4 {
        // SAFETY: `use_simd` is only true when `enabled()` detected AVX2.
        unsafe {
            avx2::entropy_line(line, ln_vec, ldr, acc);
        }
        return;
    }
    let _ = use_simd;
    for (i, &m) in line.iter().enumerate() {
        entropy_step(i, m, ln_vec, ldr, acc);
    }
}

/// Everything the dense Hastings pass reads, gathered once per proposal:
/// the four affected matrix lines, the degree vectors, the
/// direct-indexed delta arrays, and the move parameters.
pub(crate) struct HastingsInputs<'a> {
    /// Matrix row `s` (`M[s][·]`).
    pub row_s: &'a [Weight],
    /// Matrix column `s` via the stored transpose (`M[·][s]`).
    pub col_s: &'a [Weight],
    /// Matrix row `r`.
    pub row_r: &'a [Weight],
    /// Matrix column `r`.
    pub col_r: &'a [Weight],
    /// Block out-degrees.
    pub d_out: &'a [Weight],
    /// Block in-degrees.
    pub d_in: &'a [Weight],
    /// Direct-indexed delta of row `r` (the move's source row).
    pub drow_from: &'a [Weight],
    /// Direct-indexed delta of row `s` (the destination row).
    pub drow_to: &'a [Weight],
    /// Direct-indexed delta of column `r` for rows outside `{r, s}`.
    pub dcol_from: &'a [Weight],
    /// Source block of the move.
    pub r: u32,
    /// Destination block of the move.
    pub s: u32,
    /// Total degree mass the move shifts from `r` to `s`.
    pub shift: Weight,
    /// Number of blocks as f64 (the `+ B` smoothing term).
    pub b: f64,
}

/// One neighbor-block term of the Hastings correction — scalar source of
/// truth, replicating the historical closure-based kernel op for op.
#[inline(always)]
fn hastings_step(t: u32, w: Weight, h: &HastingsInputs<'_>, fwd: &mut f64, bwd: &mut f64) {
    let wf = w as f64;
    let tu = t as usize;
    *fwd +=
        wf * ((h.col_s[tu] + h.row_s[tu]) as f64 + 1.0) / ((h.d_out[tu] + h.d_in[tu]) as f64 + h.b);
    let dtr = if t == h.r {
        h.drow_from[h.r as usize]
    } else if t == h.s {
        h.drow_to[h.r as usize]
    } else {
        h.dcol_from[tu]
    };
    let nc_tr = (h.col_r[tu] + dtr) as f64;
    let nc_rt = (h.row_r[tu] + h.drow_from[tu]) as f64;
    let base = h.d_out[tu] + h.d_in[tu];
    let ndt = (if t == h.r {
        base - h.shift
    } else if t == h.s {
        base + h.shift
    } else {
        base
    }) as f64;
    *bwd += wf * (nc_tr + nc_rt + 1.0) / (ndt + h.b);
}

/// Accumulates the forward/backward Hastings sums over the folded
/// neighbor-block weights `wt` (dense storage, direct-indexed delta).
pub(crate) fn hastings_pass(
    wt: &[(u32, Weight)],
    h: &HastingsInputs<'_>,
    fwd: &mut f64,
    bwd: &mut f64,
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd && wt.len() >= 4 {
        // SAFETY: `use_simd` is only true when `enabled()` detected AVX2.
        unsafe {
            avx2::hastings_pass(wt, h, fwd, bwd);
        }
        return;
    }
    let _ = use_simd;
    for &(t, w) in wt {
        hastings_step(t, w, h, fwd, bwd);
    }
}

/// Batched `lntab` lookup via AVX2 gathers (scalar `ln_int` fallback off
/// x86_64 / without AVX2) — bench probe for the gather-vs-unrolled A/B.
#[doc(hidden)]
pub fn ln_batch_gather(ws: &[Weight], out: &mut [f64]) {
    assert_eq!(ws.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` detected AVX2.
        unsafe {
            avx2::ln_batch_gather(ws, out);
        }
        return;
    }
    for (o, &w) in out.iter_mut().zip(ws) {
        *o = lntab::ln_int(w);
    }
}

/// Batched `lntab` lookup via 4-wide unrolled scalar table loads — the
/// gather's A/B rival (see `benchmarks/summary.md`, PR 10 addendum).
#[doc(hidden)]
pub fn ln_batch_unrolled(ws: &[Weight], out: &mut [f64]) {
    assert_eq!(ws.len(), out.len());
    let tab = lntab::table();
    let n = ws.len() / 4 * 4;
    let in_range = |w: Weight| (0..lntab::TABLE_SIZE as Weight).contains(&w);
    for i in (0..n).step_by(4) {
        let w = [ws[i], ws[i + 1], ws[i + 2], ws[i + 3]];
        if w.iter().all(|&x| in_range(x)) {
            out[i] = tab[w[0] as usize];
            out[i + 1] = tab[w[1] as usize];
            out[i + 2] = tab[w[2] as usize];
            out[i + 3] = tab[w[3] as usize];
        } else {
            for k in 0..4 {
                out[i + k] = lntab::ln_int(w[k]);
            }
        }
    }
    for i in n..ws.len() {
        out[i] = lntab::ln_int(ws[i]);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 bodies. Every `#[target_feature]` function is only
    //! reachable through a `use_simd` flag derived from [`super::enabled`],
    //! which performed the runtime detection.
    use super::*;
    use std::arch::x86_64::*;

    /// Packs the low 32 bits of each 64-bit lane into a 4×i32 vector.
    /// Exact for values in `[0, 2³¹)` — callers range-check first.
    #[inline(always)]
    unsafe fn low32(v: __m256i) -> __m128i {
        let shuf = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, shuf))
    }

    /// `ln` of four table indices (callers guarantee `[0, TABLE_SIZE)`).
    /// The PR 10 bench A/B (`simd/lntab_*`, plus an in-kernel swap test)
    /// put gather and unrolled loads within noise of each other on the
    /// recording machine; the gather stays for its smaller footprint
    /// (module docs).
    #[inline(always)]
    unsafe fn ln4(tab: *const f64, idx: __m128i) -> __m256d {
        _mm256_i32gather_pd::<8>(tab, idx)
    }

    /// True when any 64-bit lane of `v` falls outside `[0, hi]`.
    #[inline(always)]
    unsafe fn any_outside(v: __m256i, hi: __m256i, zero: __m256i) -> bool {
        let bad = _mm256_or_si256(_mm256_cmpgt_epi64(v, hi), _mm256_cmpgt_epi64(zero, v));
        _mm256_testz_si256(bad, bad) == 0
    }

    /// Folds four lane results into the scalar accumulator in ascending
    /// lane order — the association order of the scalar loop.
    #[inline(always)]
    unsafe fn fold_add(acc: &mut f64, v: __m256d) {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        *acc += lanes[0];
        *acc += lanes[1];
        *acc += lanes[2];
        *acc += lanes[3];
    }

    /// As [`fold_add`] but subtracting (the entropy accumulator's shape).
    #[inline(always)]
    unsafe fn fold_sub(acc: &mut f64, v: __m256d) {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        *acc -= lanes[0];
        *acc -= lanes[1];
        *acc -= lanes[2];
        *acc -= lanes[3];
    }

    /// The per-block vector body shared by both delta sources: evaluates
    /// cells `i..i+4` given their weights `m` and deltas `d` already in
    /// vector registers. Returns `false` when the block needs the scalar
    /// source of truth (special columns/rows, out-of-table weights).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn delta_block(
        i: usize,
        m: __m256i,
        d: __m256i,
        k: &DeltaConsts,
        rb: usize,
        sb: usize,
        ln_vec: &[f64],
        old_sum: &mut f64,
        new_sum: &mut f64,
    ) -> bool {
        let m2 = _mm256_add_epi64(m, d);
        let blk = i / 4;
        if blk == rb
            || blk == sb
            || any_outside(m, k.max_idx, k.zero)
            || any_outside(m2, k.max_idx, k.zero)
        {
            return false;
        }
        // All weights in [0, TABLE_SIZE): the i32 truncation is exact,
        // so cvtepi32_pd reproduces `m as f64` bit-for-bit.
        let mi = low32(m);
        let m2i = low32(m2);
        let ln_m = ln4(k.tab, mi);
        let ln_m2 = ln4(k.tab, m2i);
        let mf = _mm256_cvtepi32_pd(mi);
        let m2f = _mm256_cvtepi32_pd(m2i);
        let lv = _mm256_loadu_pd(ln_vec.as_ptr().add(i));
        // term(m, lds) = -(m as f64) * (ln m - lds), lds = ln_line + ln_vec[i].
        // Same op sequence as the scalar `term`: add, sub, mul, negate.
        let t_old = _mm256_xor_pd(
            _mm256_mul_pd(mf, _mm256_sub_pd(ln_m, _mm256_add_pd(k.v_ln_old, lv))),
            k.sign,
        );
        let t_new = _mm256_xor_pd(
            _mm256_mul_pd(m2f, _mm256_sub_pd(ln_m2, _mm256_add_pd(k.v_ln_new, lv))),
            k.sign,
        );
        // Lanes the scalar loop skips (m == 0 / m2 == 0) are masked
        // to +0.0, a bitwise no-op on the accumulator (module docs).
        let old_mask = _mm256_castsi256_pd(_mm256_cmpgt_epi64(m, k.zero));
        let new_mask = _mm256_castsi256_pd(_mm256_cmpgt_epi64(m2, k.zero));
        fold_add(old_sum, _mm256_and_pd(t_old, old_mask));
        fold_add(new_sum, _mm256_and_pd(t_new, new_mask));
        true
    }

    /// Loop-invariant vector constants of a delta line pass.
    struct DeltaConsts {
        tab: *const f64,
        v_ln_old: __m256d,
        v_ln_new: __m256d,
        sign: __m256d,
        zero: __m256i,
        max_idx: __m256i,
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn delta_line_pass(
        line: &[Weight],
        dm: DmSource<'_>,
        ln_vec: &[f64],
        ln_old: f64,
        ln_new: f64,
        fix: &LaneFix,
        old_sum: &mut f64,
        new_sum: &mut f64,
    ) {
        let c = line.len();
        let k = DeltaConsts {
            tab: lntab::table().as_ptr(),
            v_ln_old: _mm256_set1_pd(ln_old),
            v_ln_new: _mm256_set1_pd(ln_new),
            sign: _mm256_set1_pd(-0.0),
            zero: _mm256_setzero_si256(),
            max_idx: _mm256_set1_epi64x(lntab::TABLE_SIZE as i64 - 1),
        };
        let (r, s) = fix.special();
        let (rb, sb) = (r as usize / 4, s as usize / 4);
        let mut i = 0usize;
        match dm {
            // Direct-indexed deltas live in a contiguous C-slot array —
            // load them straight into a lane block; no per-block staging
            // through the stack (the skip-dominated case rides on this).
            DmSource::Slice(dms) => {
                while i + 4 <= c {
                    let m = _mm256_loadu_si256(line.as_ptr().add(i).cast());
                    let d = _mm256_loadu_si256(dms.as_ptr().add(i).cast());
                    let nz = _mm256_or_si256(m, d);
                    if _mm256_testz_si256(nz, nz) == 1 {
                        // All four cells have zero weight and zero delta —
                        // the scalar loop would `continue` through each.
                        i += 4;
                        continue;
                    }
                    if !delta_block(i, m, d, &k, rb, sb, ln_vec, old_sum, new_sum) {
                        // Special columns/rows or out-of-table weights: run
                        // the block through the scalar source of truth.
                        for kk in 0..4 {
                            delta_step(
                                i + kk,
                                line[i + kk],
                                dms[i + kk],
                                ln_vec[i + kk],
                                ln_old,
                                ln_new,
                                fix,
                                old_sum,
                                new_sum,
                            );
                        }
                    }
                    i += 4;
                }
                while i < c {
                    delta_step(
                        i, line[i], dms[i], ln_vec[i], ln_old, ln_new, fix, old_sum, new_sum,
                    );
                    i += 1;
                }
            }
            DmSource::Pairs(_) => {
                let mut cur = DmCursor::new(dm);
                while i + 4 <= c {
                    let dm4 = cur.block4(i);
                    let m = _mm256_loadu_si256(line.as_ptr().add(i).cast());
                    let d = _mm256_loadu_si256(dm4.as_ptr().cast());
                    let nz = _mm256_or_si256(m, d);
                    if _mm256_testz_si256(nz, nz) == 1 {
                        i += 4;
                        continue;
                    }
                    if !delta_block(i, m, d, &k, rb, sb, ln_vec, old_sum, new_sum) {
                        for kk in 0..4 {
                            delta_step(
                                i + kk,
                                line[i + kk],
                                dm4[kk],
                                ln_vec[i + kk],
                                ln_old,
                                ln_new,
                                fix,
                                old_sum,
                                new_sum,
                            );
                        }
                    }
                    i += 4;
                }
                while i < c {
                    let dmv = cur.at(i);
                    delta_step(
                        i, line[i], dmv, ln_vec[i], ln_old, ln_new, fix, old_sum, new_sum,
                    );
                    i += 1;
                }
                cur.finish();
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn entropy_line(line: &[Weight], ln_vec: &[f64], ldr: f64, acc: &mut f64) {
        let c = line.len();
        let tab = lntab::table().as_ptr();
        let v_ldr = _mm256_set1_pd(ldr);
        let zero = _mm256_setzero_si256();
        let max_idx = _mm256_set1_epi64x(lntab::TABLE_SIZE as i64 - 1);
        let mut i = 0usize;
        while i + 4 <= c {
            let m = _mm256_loadu_si256(line.as_ptr().add(i).cast());
            if _mm256_testz_si256(m, m) == 1 {
                i += 4;
                continue;
            }
            if any_outside(m, max_idx, zero) {
                for k in 0..4 {
                    entropy_step(i + k, line[i + k], ln_vec, ldr, acc);
                }
                i += 4;
                continue;
            }
            let mi = low32(m);
            let ln_m = ln4(tab, mi);
            let mf = _mm256_cvtepi32_pd(mi);
            let lv = _mm256_loadu_pd(ln_vec.as_ptr().add(i));
            // mf * ((ln m - ldr) - ln_vec[i]) — two sequential subs, as
            // in the scalar row walk.
            let p = _mm256_mul_pd(mf, _mm256_sub_pd(_mm256_sub_pd(ln_m, v_ldr), lv));
            let mask = _mm256_castsi256_pd(_mm256_cmpgt_epi64(m, zero));
            // Subtracting the masked +0.0 lanes is a bitwise no-op for
            // every accumulator value (x - (+0.0) == x, all x).
            fold_sub(acc, _mm256_and_pd(p, mask));
            i += 4;
        }
        while i < c {
            entropy_step(i, line[i], ln_vec, ldr, acc);
            i += 1;
        }
    }

    /// Exact `i64 → f64` for lanes in `[0, 2⁵²)`: or-in the 2⁵² exponent
    /// bits, reinterpret, subtract 2⁵². The subtraction is exact, so the
    /// result is bit-equal to a scalar `as f64` cast.
    #[inline(always)]
    unsafe fn u52_to_f64(v: __m256i) -> __m256d {
        let magic_i = _mm256_set1_epi64x(0x4330_0000_0000_0000);
        let magic_f = _mm256_set1_pd(4_503_599_627_370_496.0); // 2^52
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, magic_i)), magic_f)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hastings_pass(
        wt: &[(u32, Weight)],
        h: &HastingsInputs<'_>,
        fwd: &mut f64,
        bwd: &mut f64,
    ) {
        let n = wt.len();
        let ones = _mm256_set1_pd(1.0);
        let v_b = _mm256_set1_pd(h.b);
        let zero = _mm256_setzero_si256();
        let max_exact = _mm256_set1_epi64x(MAX_EXACT);
        let mut j = 0usize;
        'blocks: while j + 4 <= n {
            let mut ts = [0u32; 4];
            let mut wf4 = [0.0f64; 4];
            for k in 0..4 {
                let (t, w) = wt[j + k];
                if t == h.r || t == h.s || !(0..=MAX_EXACT).contains(&w) {
                    // Special blocks (delta-dependent lanes) and huge
                    // weights take the scalar step.
                    for kk in 0..4 {
                        let (t, w) = wt[j + kk];
                        hastings_step(t, w, h, fwd, bwd);
                    }
                    j += 4;
                    continue 'blocks;
                }
                ts[k] = t;
                wf4[k] = w as f64;
            }
            let ti = _mm_set_epi32(ts[3] as i32, ts[2] as i32, ts[1] as i32, ts[0] as i32);
            let col_s = _mm256_i32gather_epi64::<8>(h.col_s.as_ptr(), ti);
            let row_s = _mm256_i32gather_epi64::<8>(h.row_s.as_ptr(), ti);
            let col_r = _mm256_i32gather_epi64::<8>(h.col_r.as_ptr(), ti);
            let row_r = _mm256_i32gather_epi64::<8>(h.row_r.as_ptr(), ti);
            let d_out = _mm256_i32gather_epi64::<8>(h.d_out.as_ptr(), ti);
            let d_in = _mm256_i32gather_epi64::<8>(h.d_in.as_ptr(), ti);
            let dcol = _mm256_i32gather_epi64::<8>(h.dcol_from.as_ptr(), ti);
            let drow = _mm256_i32gather_epi64::<8>(h.drow_from.as_ptr(), ti);
            let cells = _mm256_add_epi64(col_s, row_s);
            let den_i = _mm256_add_epi64(d_out, d_in);
            let nc_tr = _mm256_add_epi64(col_r, dcol);
            let nc_rt = _mm256_add_epi64(row_r, drow);
            if any_outside(cells, max_exact, zero)
                || any_outside(den_i, max_exact, zero)
                || any_outside(nc_tr, max_exact, zero)
                || any_outside(nc_rt, max_exact, zero)
            {
                for k in 0..4 {
                    let (t, w) = wt[j + k];
                    hastings_step(t, w, h, fwd, bwd);
                }
                j += 4;
                continue;
            }
            let wf = _mm256_loadu_pd(wf4.as_ptr());
            let den = _mm256_add_pd(u52_to_f64(den_i), v_b);
            // fwd term: wf * ((cells as f64) + 1.0) / (den) — mul before
            // div, left-associated like the scalar expression.
            let fwd_q = _mm256_div_pd(
                _mm256_mul_pd(wf, _mm256_add_pd(u52_to_f64(cells), ones)),
                den,
            );
            // bwd term: wf * ((nc_tr + nc_rt) + 1.0) / den — the two new
            // cells convert to f64 separately, as in the scalar closure.
            let num2 = _mm256_add_pd(_mm256_add_pd(u52_to_f64(nc_tr), u52_to_f64(nc_rt)), ones);
            let bwd_q = _mm256_div_pd(_mm256_mul_pd(wf, num2), den);
            fold_add(fwd, fwd_q);
            fold_add(bwd, bwd_q);
            j += 4;
        }
        while j < n {
            let (t, w) = wt[j];
            hastings_step(t, w, h, fwd, bwd);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ln_batch_gather(ws: &[Weight], out: &mut [f64]) {
        let tab = lntab::table().as_ptr();
        let zero = _mm256_setzero_si256();
        let max_idx = _mm256_set1_epi64x(lntab::TABLE_SIZE as i64 - 1);
        let n = ws.len() / 4 * 4;
        let mut i = 0usize;
        while i < n {
            let w = _mm256_loadu_si256(ws.as_ptr().add(i).cast());
            if any_outside(w, max_idx, zero) {
                for k in 0..4 {
                    out[i + k] = lntab::ln_int(ws[i + k]);
                }
            } else {
                _mm256_storeu_pd(out.as_mut_ptr().add(i), ln4(tab, low32(w)));
            }
            i += 4;
        }
        while i < ws.len() {
            out[i] = lntab::ln_int(ws[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_fixture(n: usize, seed: u64) -> (Vec<Weight>, Vec<Weight>, Vec<f64>) {
        // Deterministic pseudo-random line with plenty of zeros, a few
        // large cells, and deltas that keep m + dm >= 0.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut line = vec![0 as Weight; n];
        let mut dm = vec![0 as Weight; n];
        let mut lnv = vec![0.0f64; n];
        for i in 0..n {
            let roll = next() % 10;
            line[i] = match roll {
                0..=5 => 0,
                6..=7 => (next() % 7) as Weight,
                8 => (next() % 70_000) as Weight, // exercises table overflow
                _ => (next() % 1_000) as Weight,
            };
            dm[i] = match next() % 4 {
                0 => -(line[i].min(3)),
                1 => (next() % 5) as Weight,
                _ => 0,
            };
            lnv[i] = (next() % 1000) as f64 / 171.0;
        }
        (line, dm, lnv)
    }

    #[test]
    fn delta_line_pass_simd_matches_scalar_bitwise() {
        for seed in 0..8u64 {
            for n in [1usize, 3, 4, 5, 64, 169, 513] {
                let (line, dm, lnv) = line_fixture(n, seed);
                let fixes = [
                    LaneFix::Substitute {
                        r: (seed as u32) % n as u32,
                        s: (seed as u32 * 7 + 3) % n as u32,
                        ln_r: 0.123,
                        ln_s: 4.56,
                    },
                    LaneFix::Skip {
                        r: (seed as u32) % n as u32,
                        s: (seed as u32 * 7 + 3) % n as u32,
                    },
                ];
                for fix in &fixes {
                    let (mut so, mut sn) = (0.0f64, 0.0f64);
                    delta_line_pass(
                        &line,
                        DmSource::Slice(&dm),
                        &lnv,
                        1.5,
                        2.5,
                        fix,
                        &mut so,
                        &mut sn,
                        false,
                    );
                    let (mut vo, mut vn) = (0.0f64, 0.0f64);
                    delta_line_pass(
                        &line,
                        DmSource::Slice(&dm),
                        &lnv,
                        1.5,
                        2.5,
                        fix,
                        &mut vo,
                        &mut vn,
                        enabled(),
                    );
                    assert_eq!(so.to_bits(), vo.to_bits(), "old n={n} seed={seed}");
                    assert_eq!(sn.to_bits(), vn.to_bits(), "new n={n} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn pairs_source_equals_slice_source() {
        for seed in 0..8u64 {
            let (line, dm, lnv) = line_fixture(257, seed);
            let pairs: Vec<(u32, Weight)> = dm
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d != 0)
                .map(|(i, &d)| (i as u32, d))
                .collect();
            let fix = LaneFix::Skip { r: 2, s: 200 };
            for use_simd in [false, enabled()] {
                let (mut ao, mut an) = (0.0f64, 0.0f64);
                delta_line_pass(
                    &line,
                    DmSource::Slice(&dm),
                    &lnv,
                    0.5,
                    0.25,
                    &fix,
                    &mut ao,
                    &mut an,
                    use_simd,
                );
                let (mut bo, mut bn) = (0.0f64, 0.0f64);
                delta_line_pass(
                    &line,
                    DmSource::Pairs(&pairs),
                    &lnv,
                    0.5,
                    0.25,
                    &fix,
                    &mut bo,
                    &mut bn,
                    use_simd,
                );
                assert_eq!(ao.to_bits(), bo.to_bits(), "seed={seed} simd={use_simd}");
                assert_eq!(an.to_bits(), bn.to_bits(), "seed={seed} simd={use_simd}");
            }
        }
    }

    #[test]
    fn entropy_line_simd_matches_scalar_bitwise() {
        for seed in 0..8u64 {
            for n in [1usize, 4, 63, 64, 65, 512] {
                let (line, _, lnv) = line_fixture(n, seed);
                let mut a = 0.0f64;
                entropy_line(&line, &lnv, 0.75, &mut a, false);
                let mut b = 0.0f64;
                entropy_line(&line, &lnv, 0.75, &mut b, enabled());
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn ln_batches_match_ln_int() {
        let ws: Vec<Weight> = (0..1000)
            .map(|i| match i % 7 {
                0 => 0,
                1 => 70_000,
                _ => (i * 37 % 65_536) as Weight,
            })
            .collect();
        let mut a = vec![0.0; ws.len()];
        let mut b = vec![0.0; ws.len()];
        ln_batch_gather(&ws, &mut a);
        ln_batch_unrolled(&ws, &mut b);
        for (i, &w) in ws.iter().enumerate() {
            assert_eq!(a[i].to_bits(), lntab::ln_int(w).to_bits(), "gather i={i}");
            assert_eq!(b[i].to_bits(), lntab::ln_int(w).to_bits(), "unrolled i={i}");
        }
    }
}

//! The persistent work-stealing executor behind the parallel iterators.
//!
//! ## Why a pool (and not scoped threads)
//!
//! The previous shim spawned fresh scoped OS threads on **every**
//! `par_iter().collect()` call — once per merge phase, once per Hybrid
//! chunk, many times per sweep — so the hot phases paid a thread-spawn
//! tax proportional to how often they parallelized, and each worker's
//! thread-local state (notably `sbp_core`'s `DeltaScratch`) was created
//! and dropped per call. This module replaces that with one global pool:
//!
//! * **Lazy, grow-only workers.** No thread is spawned until a caller
//!   actually requests parallelism above 1. The worker target comes from
//!   the `SBP_THREADS` environment variable (read once per process),
//!   falling back to [`std::thread::available_parallelism`]; a scoped
//!   per-thread override ([`with_threads`]) can raise it, growing the
//!   pool on demand. Workers are detached and live for the process.
//! * **Per-worker chunk deques with stealing.** Submitted tasks are
//!   dealt round-robin onto per-worker deques; a worker pops its own
//!   deque from the front and steals from the back of a peer's when
//!   empty, so non-uniform chunk costs (hub-heavy merge proposals,
//!   skewed sweep chunks) rebalance instead of serializing on the
//!   slowest chunk. The deques share one mutex — task granularity is
//!   one *chunk* (hundreds of proposals), so the lock is uncontended in
//!   practice and the implementation stays `std`-only.
//! * **Pool-pinned thread-local storage.** Because workers persist,
//!   every `thread_local!` a kernel uses (the ΔS `DeltaScratch`, the
//!   naive engine's line buffers) is allocated once per worker and
//!   reused across *all* subsequent parallel regions, instead of being
//!   re-created by every scoped spawn.
//! * **Cooperative waiting.** A thread waiting on its batch (or on
//!   [`join`]) executes pending tasks from the pool instead of blocking,
//!   so nested parallelism (a pool worker calling `join` or `par_iter`
//!   inside a task) cannot deadlock and idle submitters contribute work.
//! * **Panic propagation.** A panicking task is caught on the worker,
//!   the batch still runs to completion (the completion barrier is what
//!   makes borrowed captures sound), and the first panic payload is
//!   rethrown on the submitting thread.
//!
//! ## Determinism contract
//!
//! The pool schedules *execution*, never *results*: batch outputs are
//! written into per-task slots and read back in submission order, so a
//! `collect` is a pure function of its input regardless of worker count,
//! stealing order, or timing. Combined with the fixed-shape reductions
//! in `sbp-core`, every result in this workspace is bit-identical under
//! `SBP_THREADS=1` and `SBP_THREADS=N` — enforced by the root
//! `tests/threads.rs` suite.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Cached handles for a worker's `sbp_pool_*{worker="id"}` counters,
/// resolved once per worker thread (registry lookups never sit on the
/// task hot path). Observe-only: the pool never reads these back, so
/// scheduling — and therefore results — is identical with metrics on
/// or off.
struct WorkerMetrics {
    tasks: Arc<sbp_metrics::Counter>,
    steals: Arc<sbp_metrics::Counter>,
}

impl WorkerMetrics {
    fn new(id: usize) -> Self {
        WorkerMetrics {
            tasks: sbp_metrics::counter(&sbp_metrics::labeled(
                "sbp_pool_tasks_total",
                "worker",
                id,
            )),
            steals: sbp_metrics::counter(&sbp_metrics::labeled(
                "sbp_pool_steals_total",
                "worker",
                id,
            )),
        }
    }
}

/// Tasks executed by threads *waiting* on a batch (cooperative helping)
/// rather than by pool workers.
fn helper_tasks() -> &'static Arc<sbp_metrics::Counter> {
    static C: OnceLock<Arc<sbp_metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| sbp_metrics::counter("sbp_pool_helper_tasks_total"))
}

/// Batches dispatched to the pool (inline/serial runs are not counted).
fn pool_batches() -> &'static Arc<sbp_metrics::Counter> {
    static C: OnceLock<Arc<sbp_metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| sbp_metrics::counter("sbp_pool_batches_total"))
}

/// Submit-to-first-execution latency of pooled batches.
fn dispatch_hist() -> &'static Arc<sbp_metrics::Histogram> {
    static H: OnceLock<Arc<sbp_metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        sbp_metrics::histogram("sbp_pool_dispatch_seconds", &sbp_metrics::TIME_BUCKETS)
    })
}

/// Per-batch dispatch-latency probe: stamps submission time and records
/// the delta when the batch's *first* task starts executing.
struct DispatchClock {
    submitted: Instant,
    fired: AtomicBool,
}

impl DispatchClock {
    /// `None` while recording is disabled, keeping the disabled path
    /// free of clock reads.
    fn start() -> Option<Self> {
        sbp_metrics::enabled().then(|| DispatchClock {
            submitted: Instant::now(),
            fired: AtomicBool::new(false),
        })
    }

    fn task_started(&self) {
        if !self.fired.swap(true, Ordering::Relaxed) {
            dispatch_hist().observe(self.submitted.elapsed().as_secs_f64());
        }
    }
}

/// Hard cap on pool workers, guarding against absurd `SBP_THREADS`
/// values (each worker costs a stack).
const MAX_WORKERS: usize = 512;

/// An erased, heap-allocated unit of work. Tasks are created with
/// borrowed captures and transmuted to `'static`; soundness comes from
/// the completion barrier — the submitting call never returns (or
/// unwinds) before every task of its batch has finished.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Transmutes a borrowing task to the `'static` the deques require.
///
/// # Safety
/// The caller must not let any borrow captured by `task` end before the
/// task has finished running (see [`Task`]).
unsafe fn erase<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    std::mem::transmute(task)
}

/// Poison-tolerant lock: a panic inside a task never poisons pool state
/// (panics are caught before any pool lock is taken, but tolerate it
/// anyway).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The process-wide worker target from `SBP_THREADS` (read once),
/// falling back to the machine's available parallelism.
fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("SBP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_WORKERS)
    })
}

thread_local! {
    /// Scoped parallelism override for this thread (see [`with_threads`]).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel regions started by *this* thread will use:
/// the innermost [`with_threads`] override, else `SBP_THREADS`, else
/// [`std::thread::available_parallelism`]. `1` means parallel calls run
/// inline on the caller with no pool interaction at all.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(default_threads)
}

/// Runs `f` with this thread's parallelism target overridden to
/// `threads`. `1` means truly inline serial execution (no pool
/// interaction at all); above 1 the value controls chunk decomposition
/// and how far the shared pool may *grow* — it is **not** a CPU
/// throttle: tasks land on the shared deques, where any already-spawned
/// worker may steal them. Scoped and re-entrant; used by the
/// thread-count-invariance suites to compare serial and pooled runs
/// inside one process (results are identical either way by the
/// determinism contract). Does not propagate to threads `f` spawns.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(threads.clamp(1, MAX_WORKERS))));
    let _restore = Restore(prev);
    f()
}

struct State {
    /// One deque per (potential) worker; owner pops the front, thieves
    /// pop the back.
    deques: Vec<VecDeque<Task>>,
    /// Workers actually spawned so far (grow-only, ≤ `deques.len()`).
    spawned: usize,
    /// Round-robin cursor for dealing new tasks.
    next: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Signalled when new tasks arrive; workers park here when every
    /// deque is empty.
    work_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            deques: Vec::new(),
            spawned: 0,
            next: 0,
        }),
        work_cv: Condvar::new(),
    })
}

impl Pool {
    /// Grows the pool to at least `want` workers (capped).
    fn ensure_workers(&self, st: &mut State, want: usize) {
        let want = want.min(MAX_WORKERS);
        while st.spawned < want {
            let id = st.spawned;
            st.deques.push(VecDeque::new());
            st.spawned += 1;
            std::thread::Builder::new()
                .name(format!("sbp-pool-{id}"))
                .spawn(move || pool().worker_loop(id))
                .expect("failed to spawn pool worker");
        }
    }

    /// Deals `tasks` round-robin across worker deques and wakes workers.
    fn submit(&self, tasks: Vec<Task>, want_workers: usize) {
        let mut st = lock(&self.state);
        self.ensure_workers(&mut st, want_workers);
        let width = st.spawned.max(1);
        for task in tasks {
            let i = st.next % width;
            st.next = st.next.wrapping_add(1);
            st.deques[i].push_back(task);
        }
        drop(st);
        self.work_cv.notify_all();
    }

    /// Worker `id`'s take policy: own deque front first (cache-warm
    /// chunks in submission order), then steal from the back of a peer.
    /// The flag reports whether the task came from a peer's deque.
    fn take(st: &mut State, id: usize) -> Option<(Task, bool)> {
        if let Some(t) = st.deques[id].pop_front() {
            return Some((t, false));
        }
        let n = st.deques.len();
        for off in 1..n {
            let j = (id + off) % n;
            if let Some(t) = st.deques[j].pop_back() {
                return Some((t, true));
            }
        }
        None
    }

    fn worker_loop(&self, id: usize) {
        let metrics = WorkerMetrics::new(id);
        loop {
            let (task, stolen) = {
                let mut st = lock(&self.state);
                loop {
                    if let Some(t) = Self::take(&mut st, id) {
                        break t;
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            task();
            metrics.tasks.inc();
            if stolen {
                metrics.steals.inc();
            }
        }
    }

    /// Pops any pending task (helper threads waiting on a batch).
    fn try_pop_any(&self) -> Option<Task> {
        let mut st = lock(&self.state);
        let n = st.deques.len();
        for i in 0..n {
            if let Some(t) = st.deques[i].pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Per-batch completion state: one result slot per task, a remaining
/// count doubling as the completion barrier, and the first panic.
struct Batch<U> {
    slots: Vec<Mutex<Option<U>>>,
    remaining: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Dispatch-latency probe; `None` while metrics are disabled.
    dispatch: Option<DispatchClock>,
}

impl<U> Batch<U> {
    fn new(n: usize) -> Self {
        Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            dispatch: DispatchClock::start(),
        }
    }

    /// Runs one task body, stores its result or panic, and signals the
    /// barrier. Never unwinds.
    fn run_slot(&self, i: usize, f: impl FnOnce() -> U) {
        if let Some(clock) = &self.dispatch {
            clock.task_started();
        }
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(u) => *lock(&self.slots[i]) = Some(u),
            Err(p) => {
                let mut g = lock(&self.panic);
                if g.is_none() {
                    *g = Some(p);
                }
            }
        }
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every task of this batch has finished, executing
    /// other pending pool tasks while waiting (cooperative helping — the
    /// waiter may run its own batch's tasks, a nested batch's, or an
    /// unrelated rank's).
    fn wait(&self) {
        loop {
            if *lock(&self.remaining) == 0 {
                return;
            }
            if let Some(task) = pool().try_pop_any() {
                task();
                helper_tasks().inc();
                continue;
            }
            let rem = lock(&self.remaining);
            if *rem == 0 {
                return;
            }
            // In-flight tasks are running on workers; park briefly on
            // the batch condvar (timeout guards the race where the last
            // task completes between the check and the wait of a helper
            // that consumed a foreign wake-up).
            let _ = self
                .done_cv
                .wait_timeout(rem, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Propagates the first recorded panic, if any.
    fn rethrow(&self) {
        if let Some(p) = lock(&self.panic).take() {
            resume_unwind(p);
        }
    }
}

/// Executes every closure of `fns` (on the pool when this thread's
/// parallelism is above 1, inline otherwise) and returns their results
/// **in submission order**. Panics rethrow the first panic after the
/// whole batch has completed.
pub(crate) fn run_batch<U, F>(fns: Vec<F>) -> Vec<U>
where
    U: Send,
    F: FnOnce() -> U + Send,
{
    let threads = current_num_threads();
    if threads <= 1 || fns.len() <= 1 {
        return fns.into_iter().map(|f| f()).collect();
    }
    let n = fns.len();
    let batch: Batch<U> = Batch::new(n);
    let batch_ref = &batch;
    let tasks: Vec<Task> = fns
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let t: Box<dyn FnOnce() + Send + '_> = Box::new(move || batch_ref.run_slot(i, f));
            // SAFETY: `wait()` below does not return until every task has
            // run, so the borrows of `batch` and the captures of `f`
            // outlive the tasks.
            unsafe { erase(t) }
        })
        .collect();
    pool_batches().inc();
    pool().submit(tasks, threads);
    batch.wait();
    batch.rethrow();
    batch
        .slots
        .iter()
        .map(|s| lock(s).take().expect("batch slot left unfilled"))
        .collect()
}

/// Runs `a` and `b`, potentially in parallel, returning both results —
/// rayon's `join`. `b` is offered to the pool while `a` runs on the
/// calling thread; with parallelism 1 both run inline. If either side
/// panics, the panic is rethrown here after **both** sides have finished
/// (`a`'s panic wins when both do).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let batch: Batch<RB> = Batch::new(1);
    let batch_ref = &batch;
    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || batch_ref.run_slot(0, b));
    // SAFETY: both arms of the barrier below run before this frame ends.
    pool().submit(vec![unsafe { erase(task) }], current_num_threads());
    let ra = catch_unwind(AssertUnwindSafe(a));
    batch.wait();
    match ra {
        Err(p) => resume_unwind(p),
        Ok(ra) => {
            batch.rethrow();
            let rb = lock(&batch.slots[0]).take().expect("join slot unfilled");
            (ra, rb)
        }
    }
}

//! Offline stand-in for `rayon`, covering the slice-parallelism subset this
//! workspace uses: `slice.par_iter().map(..)/.filter_map(..).collect()`.
//!
//! Work is split into contiguous chunks, one per available core, executed on
//! scoped OS threads, and results are concatenated in input order — the same
//! ordering guarantee rayon's indexed parallel iterators provide. There is
//! no work stealing; the kernels this repo parallelizes (per-block merge
//! proposals, per-vertex MCMC evaluation) are uniform enough that static
//! chunking loses nothing.

/// Everything call sites need in scope.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParFilterMap, ParIter, ParMap};
}

/// Number of worker threads used by `collect`.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `&collection → parallel iterator` entry point (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the parallel iterator.
    type Item: Send + 'data;
    /// Produces the parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map preserving input order.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { base: self, f }
    }

    /// Parallel filter-map preserving input order.
    pub fn filter_map<U, F>(self, f: F) -> ParFilterMap<T, F>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParFilterMap { base: self, f }
    }
}

/// Runs `f` over `items` on scoped threads, chunked contiguously, and
/// returns the per-item outputs flattened in input order.
fn run_chunked<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().filter_map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let f = &f;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // Split from the back to avoid shifting; reverse to restore order.
    while items.len() > chunk_len {
        let tail = items.split_off(items.len() - chunk_len);
        chunks.push(tail);
    }
    chunks.push(items);
    chunks.reverse();
    let results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().filter_map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in results {
        out.extend(part);
    }
    out
}

/// Pending parallel map; `collect` executes it.
pub struct ParMap<T, F> {
    base: ParIter<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map in parallel, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        let f = self.f;
        C::from_vec(run_chunked(self.base.items, |t| Some(f(t))))
    }
}

/// Pending parallel filter-map; `collect` executes it.
pub struct ParFilterMap<T, F> {
    base: ParIter<T>,
    f: F,
}

impl<T, U, F> ParFilterMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    /// Executes the filter-map in parallel, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_vec(run_chunked(self.base.items, self.f))
    }
}

/// Collection targets for `collect` (rayon's `FromParallelIterator`,
/// reduced to the shapes used here).
pub trait FromParallel<U> {
    /// Builds the collection from ordered results.
    fn from_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_vec(v: Vec<U>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let xs: Vec<u32> = (0..1000).collect();
        let evens: Vec<u32> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 500);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn closure_by_reference_works() {
        let xs: Vec<u32> = (0..64).collect();
        let f = |x: &u32| -> Option<u32> { Some(*x + 1) };
        let ys: Vec<u32> = xs.par_iter().filter_map(&f).collect();
        assert_eq!(ys[0], 1);
        assert_eq!(ys.len(), 64);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}

//! Offline stand-in for `rayon`, covering the parallelism subset this
//! workspace uses — now backed by a **persistent work-stealing thread
//! pool** ([`pool`]) instead of per-call scoped threads.
//!
//! Supported surface:
//!
//! * `slice.par_iter()` / `vec.par_iter()` — borrowed items;
//! * `vec.into_par_iter()` — owned items (bulk line construction);
//! * `slice.par_chunks(n)` — contiguous subslices;
//! * `.map(..)` / `.filter_map(..)` / `.enumerate()` → `.collect()`,
//!   always flattening per-item outputs **in input order** — the same
//!   ordering guarantee rayon's indexed parallel iterators provide, and
//!   the root of this workspace's thread-count-invariance contract;
//! * [`join`] — two-way fork-join;
//! * [`current_num_threads`] / [`with_threads`] — parallelism
//!   introspection and a scoped per-thread override (`SBP_THREADS` sets
//!   the process default; see [`pool`] for the full contract).
//!
//! Work is split into contiguous chunks — several per worker, so the
//! pool's stealing can rebalance non-uniform loads — executed on the
//! persistent workers, and concatenated in input order. With an
//! effective parallelism of 1 every combinator degenerates to an inline
//! loop on the caller with zero pool interaction.

pub mod pool;

pub use pool::{current_num_threads, join, with_threads};

/// Everything call sites need in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParFilterMap, ParIter, ParMap, ParallelSlice,
    };
}

/// `&collection → parallel iterator` entry point (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the parallel iterator.
    type Item: Send + 'data;
    /// Produces the parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        self.as_slice().par_iter()
    }
}

/// `collection → parallel iterator` over **owned** items
/// (`into_par_iter`) — how the sparse `StorageBuilder` hands each line's
/// raw cell vector to its worker without cloning.
pub trait IntoParallelIterator {
    /// Item yielded by the parallel iterator.
    type Item: Send;
    /// Produces the parallel iterator, consuming the collection.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel iteration over contiguous subslices (`par_chunks`) — part
/// of the rayon-compatible surface (no workspace kernel uses it today;
/// the fixed-shape reductions chunk by index ranges through `par_iter`).
pub trait ParallelSlice<T: Sync> {
    /// Splits into chunks of at most `chunk_size` items (the last may be
    /// shorter), yielded in order.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size.max(1)).collect(),
        }
    }
}

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map preserving input order.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { base: self, f }
    }

    /// Parallel filter-map preserving input order.
    pub fn filter_map<U, F>(self, f: F) -> ParFilterMap<T, F>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParFilterMap { base: self, f }
    }

    /// Pairs every item with its input index (rayon's indexed
    /// `enumerate`), preserving order.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

/// Runs `f` over `items` on the persistent pool, chunked contiguously
/// (several chunks per worker so stealing can rebalance), and returns the
/// per-item outputs flattened in input order. Inline when the effective
/// parallelism is 1.
fn run_chunked<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().filter_map(f).collect();
    }
    // Over-decompose: ~4 chunks per worker gives the deques something to
    // steal when chunk costs are skewed, at negligible per-chunk cost.
    let target_chunks = (threads * 4).min(n);
    let chunk_len = n.div_ceil(target_chunks);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(target_chunks);
    let mut items = items;
    // Split from the back to avoid shifting; reverse to restore order.
    while items.len() > chunk_len {
        let tail = items.split_off(items.len() - chunk_len);
        chunks.push(tail);
    }
    chunks.push(items);
    chunks.reverse();
    let f = &f;
    let parts: Vec<Vec<U>> = pool::run_batch(
        chunks
            .into_iter()
            .map(|chunk| move || chunk.into_iter().filter_map(f).collect::<Vec<U>>())
            .collect(),
    );
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Pending parallel map; `collect` executes it.
pub struct ParMap<T, F> {
    base: ParIter<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map in parallel, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        let f = self.f;
        C::from_vec(run_chunked(self.base.items, |t| Some(f(t))))
    }
}

/// Pending parallel filter-map; `collect` executes it.
pub struct ParFilterMap<T, F> {
    base: ParIter<T>,
    f: F,
}

impl<T, U, F> ParFilterMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    /// Executes the filter-map in parallel, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_vec(run_chunked(self.base.items, self.f))
    }
}

/// Collection targets for `collect` (rayon's `FromParallelIterator`,
/// reduced to the shapes used here).
pub trait FromParallel<U> {
    /// Builds the collection from ordered results.
    fn from_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_vec(v: Vec<U>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, with_threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Every test that wants real pool execution forces 4 workers; the
    /// box CI runs on may expose a single core, which would otherwise
    /// keep everything on the inline path.
    fn pooled<R>(f: impl FnOnce() -> R) -> R {
        with_threads(4, f)
    }

    #[test]
    fn map_preserves_order() {
        pooled(|| {
            let xs: Vec<u64> = (0..10_000).collect();
            let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
            assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        pooled(|| {
            let xs: Vec<u32> = (0..1000).collect();
            let evens: Vec<u32> = xs
                .par_iter()
                .filter_map(|&x| (x % 2 == 0).then_some(x))
                .collect();
            assert_eq!(evens.len(), 500);
            assert!(evens.windows(2).all(|w| w[0] < w[1]));
        });
    }

    #[test]
    fn closure_by_reference_works() {
        let xs: Vec<u32> = (0..64).collect();
        let f = |x: &u32| -> Option<u32> { Some(*x + 1) };
        let ys: Vec<u32> = xs.par_iter().filter_map(&f).collect();
        assert_eq!(ys[0], 1);
        assert_eq!(ys.len(), 64);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn into_par_iter_moves_items() {
        pooled(|| {
            let xs: Vec<Vec<u32>> = (0..256).map(|i| vec![i, i + 1]).collect();
            let sums: Vec<u32> = xs
                .into_par_iter()
                .map(|v| v.into_iter().sum::<u32>())
                .collect();
            assert_eq!(sums[0], 1);
            assert_eq!(sums[255], 511);
            assert_eq!(sums.len(), 256);
        });
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        pooled(|| {
            let xs: Vec<u32> = (0..1003).collect();
            let partial: Vec<u32> = xs.par_chunks(64).map(|c| c.iter().sum::<u32>()).collect();
            assert_eq!(partial.len(), 1003usize.div_ceil(64));
            assert_eq!(partial.iter().sum::<u32>(), xs.iter().sum::<u32>());
            // First chunk is exactly 0..64.
            assert_eq!(partial[0], (0..64).sum::<u32>());
        });
    }

    #[test]
    fn enumerate_pairs_input_indices() {
        pooled(|| {
            let xs: Vec<u32> = (100..400).collect();
            let pairs: Vec<(usize, u32)> =
                xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
            assert!(pairs
                .iter()
                .enumerate()
                .all(|(i, &(j, x))| i == j && x == 100 + i as u32));
        });
    }

    #[test]
    fn join_runs_both_sides() {
        pooled(|| {
            let (a, b) = join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        });
    }

    #[test]
    fn nested_join_and_par_iter_do_not_deadlock() {
        pooled(|| {
            let total = AtomicUsize::new(0);
            let (l, r) = join(
                || {
                    let xs: Vec<usize> = (0..128).collect();
                    let ys: Vec<usize> = xs
                        .par_iter()
                        .map(|&x| {
                            let (a, b) = join(|| x, || x + 1);
                            a + b
                        })
                        .collect();
                    ys.into_iter().sum::<usize>()
                },
                || {
                    total.fetch_add(1, Ordering::Relaxed);
                    join(|| 1usize, || 2usize)
                },
            );
            assert_eq!(l, (0..128).map(|x| 2 * x + 1).sum::<usize>());
            assert_eq!(r, (1, 2));
            assert_eq!(total.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn worker_panic_propagates_to_collect() {
        pooled(|| {
            let xs: Vec<u32> = (0..512).collect();
            let res = std::panic::catch_unwind(|| {
                let _: Vec<u32> = xs
                    .par_iter()
                    .map(|&x| {
                        if x == 300 {
                            panic!("boom {x}");
                        }
                        x
                    })
                    .collect();
            });
            let err = res.expect_err("panic must propagate");
            let msg = err.downcast_ref::<String>().expect("panic payload");
            assert!(msg.contains("boom 300"), "got {msg}");
            // The pool survives a panicking batch.
            let ys: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
            assert_eq!(ys.len(), 512);
        });
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        pooled(|| {
            let a = std::panic::catch_unwind(|| join(|| panic!("left"), || 1));
            assert!(a.is_err());
            let b = std::panic::catch_unwind(|| join(|| 1, || panic!("right")));
            assert!(b.is_err());
            // Still usable afterwards.
            assert_eq!(join(|| 1, || 2), (1, 2));
        });
    }

    #[test]
    fn nonuniform_loads_still_produce_ordered_output() {
        // Heavily skewed per-item cost: stealing rebalances, order must
        // still be input order.
        pooled(|| {
            let xs: Vec<u64> = (0..64).collect();
            let ys: Vec<u64> = xs
                .par_iter()
                .map(|&x| {
                    let spins = if x % 16 == 0 { 20_000 } else { 10 };
                    let mut acc = x;
                    for i in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                    x
                })
                .collect();
            assert_eq!(ys, xs);
        });
    }

    #[test]
    fn with_threads_is_scoped_and_restores() {
        let outside = super::current_num_threads();
        with_threads(3, || {
            assert_eq!(super::current_num_threads(), 3);
            with_threads(1, || assert_eq!(super::current_num_threads(), 1));
            assert_eq!(super::current_num_threads(), 3);
        });
        assert_eq!(super::current_num_threads(), outside);
    }

    #[test]
    fn serial_and_pooled_results_are_identical() {
        let xs: Vec<u64> = (0..4096).collect();
        let work = || -> Vec<u64> {
            xs.par_iter()
                .filter_map(|&x| (x % 3 != 0).then(|| x.wrapping_mul(x)))
                .collect()
        };
        let serial = with_threads(1, work);
        let pooled4 = with_threads(4, work);
        let pooled7 = with_threads(7, work);
        assert_eq!(serial, pooled4);
        assert_eq!(serial, pooled7);
    }
}

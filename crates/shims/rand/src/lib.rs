//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses (`Rng::random`, `Rng::random_range`, `SeedableRng::
//! seed_from_u64`, `rngs::SmallRng`). The container that builds this repo
//! has no crates.io access, so the workspace vendors this shim as a path
//! dependency under the same crate name.
//!
//! `SmallRng` is xoshiro256++ (the same family the real `rand` uses for its
//! small RNG), seeded through SplitMix64 — high-quality, fast, and
//! deterministic across platforms, which is all the inference engine needs.

pub mod rngs;

pub use rngs::SmallRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping (Lemire, biased by
                // at most 2^-64 — immaterial for MCMC proposal sampling).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing generator trait (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y: usize = rng.random_range(0..3usize);
            assert!(y < 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_rng_ref() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.random_range(0..10u32)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 10);
    }
}

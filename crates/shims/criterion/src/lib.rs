//! Offline stand-in for `criterion`, implementing the subset this
//! workspace's benches use: benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a warm-up phase sizes the iteration
//! batch so one sample lasts `measurement_time / sample_size`, then
//! `sample_size` wall-time samples are taken. The mean/min/max per-iteration
//! times are printed in criterion's familiar `time: [lo mean hi]` layout and
//! appended to `target/criterion-summary.json` (one JSON object per run) so
//! CI and `benchmarks/summary.md` can consume machine-readable results.
//! Passing `--test` (as `cargo bench -- --test` does) runs every benchmark
//! body exactly once — a smoke pass with no timing.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export used by benches for preventing optimization.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement marker types (only wall time is supported).
pub mod measurement {
    /// Wall-clock measurement (the default and only measurement).
    pub struct WallTime;
}

/// How `iter_batched` amortizes setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small batches (setup cost amortized over many iterations).
    SmallInput,
    /// Large batches (one setup per timed routine call).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark id with an optional parameter, e.g. `ownership/balanced/64`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark path (`group/name`).
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Harness configuration + collected results.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut test_mode = false;
        let mut filter = None;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--test" | "-t" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = it.next();
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion {
            test_mode,
            filter,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            crit: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            _measurement: std::marker::PhantomData,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id.to_string(), f);
        g.finish();
        self
    }

    fn run_one<F>(
        &mut self,
        full_id: String,
        sample_size: usize,
        warm_up: Duration,
        measurement: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher::smoke();
            f(&mut b);
            println!("{full_id}: smoke ok");
            return;
        }
        let mut b = Bencher::measured(sample_size, warm_up, measurement);
        f(&mut b);
        let rec = b.finish(full_id.clone());
        println!(
            "{full_id}\n                        time:   [{} {} {}]",
            fmt_ns(rec.min_ns),
            fmt_ns(rec.mean_ns),
            fmt_ns(rec.max_ns)
        );
        self.records.push(rec);
    }

    /// Writes the JSON summary of all measured benchmarks.
    pub fn final_summary(&self) {
        if self.test_mode || self.records.is_empty() {
            return;
        }
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}, \"iters\": {}}}{}\n",
                r.id,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.iters,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        let path = std::env::var("CRITERION_SUMMARY")
            .unwrap_or_else(|_| "target/criterion-summary.json".to_string());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote benchmark summary to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    crit: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn full_id(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = self.full_id(&id.into());
        let (s, w, m) = (self.sample_size, self.warm_up, self.measurement);
        self.crit.run_one(full, s, w, m, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = self.full_id(&id.full);
        let (s, w, m) = (self.sample_size, self.warm_up, self.measurement);
        self.crit.run_one(full, s, w, m, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; results live on the Criterion).
    pub fn finish(self) {}
}

enum BenchMode {
    Smoke,
    Measure {
        sample_size: usize,
        warm_up: Duration,
        measurement: Duration,
    },
}

/// Passed to the benchmark closure; `iter`/`iter_batched` do the timing.
pub struct Bencher {
    mode: BenchMode,
    total: Duration,
    iters: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn smoke() -> Self {
        Bencher {
            mode: BenchMode::Smoke,
            total: Duration::ZERO,
            iters: 0,
            samples_ns: Vec::new(),
        }
    }

    fn measured(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            mode: BenchMode::Measure {
                sample_size,
                warm_up,
                measurement,
            },
            total: Duration::ZERO,
            iters: 0,
            samples_ns: Vec::new(),
        }
    }

    /// Times `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iter_batched(|| (), |()| f(), BatchSize::SmallInput);
    }

    /// Times `routine` with untimed `setup` per invocation.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            BenchMode::Smoke => {
                let input = setup();
                std_black_box(routine(input));
                self.iters = 1;
            }
            BenchMode::Measure {
                sample_size,
                warm_up,
                measurement,
            } => {
                // Warm-up: also estimates the per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                let mut warm_busy = Duration::ZERO;
                while warm_start.elapsed() < warm_up {
                    let input = setup();
                    let t = Instant::now();
                    std_black_box(routine(input));
                    warm_busy += t.elapsed();
                    warm_iters += 1;
                }
                let per_iter = warm_busy
                    .checked_div(warm_iters.max(1) as u32)
                    .unwrap_or(Duration::from_nanos(1))
                    .max(Duration::from_nanos(1));
                let budget_per_sample = measurement / sample_size as u32;
                let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
                    .clamp(1, u32::MAX as u128) as u64;
                for _ in 0..sample_size {
                    let mut busy = Duration::ZERO;
                    for _ in 0..iters_per_sample {
                        let input = setup();
                        let t = Instant::now();
                        std_black_box(routine(input));
                        busy += t.elapsed();
                    }
                    self.samples_ns
                        .push(busy.as_nanos() as f64 / iters_per_sample as f64);
                    self.total += busy;
                    self.iters += iters_per_sample;
                }
            }
        }
    }

    fn finish(self, id: String) -> BenchRecord {
        let n = self.samples_ns.len().max(1) as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().copied().fold(0.0f64, f64::max);
        BenchRecord {
            id,
            mean_ns: mean,
            min_ns: if min.is_finite() { min } else { 0.0 },
            max_ns: max,
            iters: self.iters,
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher::smoke();
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut b = Bencher::measured(3, Duration::from_millis(5), Duration::from_millis(15));
        b.iter(|| std_black_box(2u64 + 2));
        let rec = b.finish("t".into());
        assert_eq!(rec.id, "t");
        assert!(rec.mean_ns > 0.0);
        assert!(rec.iters >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("ownership/balanced", 64);
        assert_eq!(id.full, "ownership/balanced/64");
    }
}

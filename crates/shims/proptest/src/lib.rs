//! Offline stand-in for `proptest`, implementing the subset this
//! workspace's property tests use: range and tuple strategies, `Just`,
//! `prop_flat_map`/`prop_map`, `proptest::collection::vec`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! * cases are generated from a seed derived from the test name, so runs
//!   are deterministic (no `PROPTEST_CASES` env handling — the count is
//!   fixed at 64 per test);
//! * failing cases are reported with their values but **not shrunk**.

use std::ops::Range;

/// Everything tests need in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name — the per-test base seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value-generation strategy.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { base: self, f }
    }

    /// Maps generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { base: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let inner = (self.f)(self.base.generate(rng));
        inner.generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Permitted sizes for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Each runs 64 deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])+
            fn $name() {
                const CASES: u32 = 64;
                const MAX_REJECTS: u32 = 4096;
                let mut passed = 0u32;
                let mut rejects = 0u32;
                let mut seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                while passed < CASES {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            if rejects > MAX_REJECTS {
                                panic!("proptest {}: too many rejected cases", stringify!($name));
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (seed {seed:#x}): {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -5i64..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..100, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_gracefully((a, b) in (0u32..5, 0u32..5)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::TestRng::new(1);
        let s = crate::collection::vec(0u32..7, 5usize);
        for _ in 0..20 {
            assert_eq!(crate::Strategy::generate(&s, &mut rng).len(), 5);
        }
    }
}

//! The `sbp-serve` wire protocol: strict length-prefixed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +------+------------------+---------------+------------------+
//! | "SF" | payload len u32le| payload bytes | checksum u64le   |
//! +------+------------------+---------------+------------------+
//!   2 B          4 B            ≤ 16 MiB           8 B
//! ```
//!
//! The checksum covers the payload bytes only ([`frame_checksum`], the
//! same mixer family as the `.sbpc` checkpoint trailer). The payload is
//! a tag byte followed by tag-specific fields encoded with the
//! [`sbp_graph::varint`] codec. Decoding is strict and allocation-
//! bounded: every count is validated against the remaining payload
//! before a vector is sized, strings have hard length limits, vertex-id
//! lists use the canonical ascending delta encoding, and trailing bytes
//! after a message are rejected. Every malformed input maps to a typed
//! [`WireError`] — decoders never panic, which the root `tests/fuzz.rs`
//! hostile-input wall enforces over both request and response decoders.

use sbp_graph::varint::{
    read_ascending_ids, read_i64, read_u64, write_ascending_ids, write_i64, write_u64,
};
use sbp_graph::{EdgeDelta, Vertex};

/// Protocol revision. Bumped to 2 when [`StatsReply`] grew the uptime
/// and cumulative ingest/repartition fields and the `Metrics`
/// request/reply pair was added. The frames themselves carry no version
/// byte — client and server ship from one tree — but the constant
/// records where the encoding changed.
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame magic: `b"SF"` ("serve frame").
pub const FRAME_MAGIC: [u8; 2] = *b"SF";
/// Hard cap on a frame's payload size (16 MiB).
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;
/// Hard cap on edge deltas in one `Ingest` request.
pub const MAX_DELTAS: usize = 1 << 20;
/// Hard cap on vertex ids in one `Membership` request (and labels in
/// its reply).
pub const MAX_IDS: usize = 1 << 20;
/// Hard cap on a backend-name string, in bytes.
pub const MAX_NAME: usize = 64;
/// Hard cap on a checkpoint-path string, in bytes.
pub const MAX_PATH: usize = 4096;
/// Hard cap on an error-message string, in bytes.
pub const MAX_MESSAGE: usize = 1024;
/// Hard cap on each text block (snapshot JSON, Prometheus exposition)
/// in a `Metrics` reply, in bytes.
pub const MAX_METRICS_TEXT: usize = 1 << 20;
/// Trajectory entries carried in a `Stats` reply (the tail).
pub const MAX_TRAJECTORY: usize = 8;

/// Why a frame or message failed to decode. Every hostile input maps
/// here; decoders never panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The buffer ended before the declared structure did.
    Truncated,
    /// The frame header declares a payload larger than [`MAX_PAYLOAD`].
    PayloadTooLarge {
        /// The declared payload length.
        declared: u64,
    },
    /// The frame checksum does not match its payload.
    ChecksumMismatch,
    /// Unknown message tag.
    BadTag(u8),
    /// A varint field failed to decode.
    BadVarint,
    /// A string field is not valid UTF-8.
    BadString,
    /// A count or length field exceeds its protocol limit.
    LimitExceeded(&'static str),
    /// A field violates canonical encoding (e.g. a non-ascending vertex
    /// id list, a zero edge delta, or an out-of-range enum byte).
    NonCanonical(&'static str),
    /// Bytes remain after the end of a complete message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::PayloadTooLarge { declared } => {
                write!(f, "declared payload {declared} exceeds {MAX_PAYLOAD} bytes")
            }
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadVarint => write!(f, "malformed varint field"),
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
            WireError::LimitExceeded(what) => write!(f, "{what} exceeds its protocol limit"),
            WireError::NonCanonical(what) => write!(f, "non-canonical encoding: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// The per-frame checksum: the same rotate/add/multiply mixer family as
/// the `.sbpc` checkpoint trailer, over the payload bytes.
pub fn frame_checksum(bytes: &[u8]) -> u64 {
    let mut acc = 0x5EF5_EF5E_F5EF_5EF5u64 ^ (bytes.len() as u64);
    for &b in bytes {
        acc = acc
            .rotate_left(5)
            .wrapping_add(u64::from(b))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    acc ^= acc >> 31;
    acc
}

/// Wraps a payload in a frame: magic, length, payload, checksum.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — encoders bound their
/// output by the same limits decoders enforce, so this is unreachable
/// for any message this module builds.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(payload.len() + 14);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out
}

/// Splits one frame off the front of `buf`: returns the payload slice
/// and the total bytes consumed. Fails on bad magic, oversized or
/// truncated payloads, and checksum mismatch.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    if buf[..2] != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf.len() < 6 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::PayloadTooLarge {
            declared: len as u64,
        });
    }
    let total = 6 + len + 8;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &buf[6..6 + len];
    let sum = u64::from_le_bytes(buf[6 + len..total].try_into().expect("8 bytes"));
    if sum != frame_checksum(payload) {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((payload, total))
}

// ------------------------------------------------------------- helpers

fn read_string(
    buf: &[u8],
    pos: &mut usize,
    max: usize,
    what: &'static str,
) -> Result<String, WireError> {
    let len = read_u64(buf, pos).ok_or(WireError::BadVarint)? as usize;
    if len > max {
        return Err(WireError::LimitExceeded(what));
    }
    if buf.len().saturating_sub(*pos) < len {
        return Err(WireError::Truncated);
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len]).map_err(|_| WireError::BadString)?;
    *pos += len;
    Ok(s.to_string())
}

fn write_string(buf: &mut Vec<u8>, s: &str) {
    write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Writes `s` truncated to at most `max` bytes at a char boundary —
/// used by the reply encoders that must never fail (errors, metrics).
fn write_capped_string(buf: &mut Vec<u8>, s: &str, max: usize) {
    let mut s = s;
    while s.len() > max {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s = &s[..cut];
    }
    write_string(buf, s);
}

fn read_f64_bits(buf: &[u8], pos: &mut usize) -> Result<f64, WireError> {
    if buf.len().saturating_sub(*pos) < 8 {
        return Err(WireError::Truncated);
    }
    let bits = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    Ok(f64::from_bits(bits))
}

fn write_f64_bits(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn finish(buf: &[u8], pos: usize) -> Result<(), WireError> {
    if pos == buf.len() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes)
    }
}

// ------------------------------------------------------------ requests

/// How a `Repartition` request restarts the golden search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepartitionMode {
    /// Warm-start from the current partition; only vertices within one
    /// hop of pending edge deltas re-enter MCMC sweeps.
    Warm,
    /// Full cold run from the identity partition (`C = V`).
    Cold,
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Queue edge deltas; they apply at the next `Repartition`.
    Ingest(Vec<EdgeDelta>),
    /// Apply pending deltas and re-run the golden search.
    Repartition {
        /// Warm or cold restart.
        mode: RepartitionMode,
        /// Backend name resolved through the server's solver registry;
        /// empty selects the server's configured default.
        backend: String,
    },
    /// Query block labels for a strictly ascending vertex-id list.
    Membership(Vec<Vertex>),
    /// Query DL, block count, trajectory tail, pending-delta count and
    /// the degraded flag.
    Stats,
    /// Write a `.sbpc` snapshot of the current server state to a
    /// server-side path.
    Checkpoint(String),
    /// Gracefully stop the server (writes the configured shutdown
    /// checkpoint first, if any).
    Shutdown,
    /// Query the process-wide metrics plane: a canonical-JSON snapshot
    /// plus a Prometheus-style text exposition.
    Metrics,
}

const TAG_INGEST: u8 = 0x01;
const TAG_REPARTITION: u8 = 0x02;
const TAG_MEMBERSHIP: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_CHECKPOINT: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;
const TAG_METRICS: u8 = 0x07;

impl Request {
    /// Encodes the request payload (no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ingest(deltas) => {
                buf.push(TAG_INGEST);
                write_u64(&mut buf, deltas.len() as u64);
                for d in deltas {
                    write_u64(&mut buf, u64::from(d.src));
                    write_u64(&mut buf, u64::from(d.dst));
                    write_i64(&mut buf, d.delta);
                }
            }
            Request::Repartition { mode, backend } => {
                buf.push(TAG_REPARTITION);
                buf.push(match mode {
                    RepartitionMode::Warm => 0,
                    RepartitionMode::Cold => 1,
                });
                write_string(&mut buf, backend);
            }
            Request::Membership(ids) => {
                buf.push(TAG_MEMBERSHIP);
                write_ascending_ids(&mut buf, ids);
            }
            Request::Stats => buf.push(TAG_STATS),
            Request::Checkpoint(path) => {
                buf.push(TAG_CHECKPOINT);
                write_string(&mut buf, path);
            }
            Request::Shutdown => buf.push(TAG_SHUTDOWN),
            Request::Metrics => buf.push(TAG_METRICS),
        }
        buf
    }

    /// Decodes a request payload. Strict: typed errors on any malformed,
    /// over-limit, non-canonical, or trailing input.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = buf.split_first().ok_or(WireError::Truncated)?;
        let mut pos = 0usize;
        let req = match tag {
            TAG_INGEST => {
                let count = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)? as usize;
                if count > MAX_DELTAS {
                    return Err(WireError::LimitExceeded("ingest delta count"));
                }
                // ≥ 3 bytes per delta; reject crafted counts before sizing.
                if count > rest.len().saturating_sub(pos) / 3 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut deltas = Vec::with_capacity(count);
                for _ in 0..count {
                    let src = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                    let dst = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                    let delta = read_i64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                    if src > u64::from(u32::MAX) || dst > u64::from(u32::MAX) {
                        return Err(WireError::NonCanonical("vertex id exceeds u32"));
                    }
                    if delta == 0 {
                        return Err(WireError::NonCanonical("zero edge delta"));
                    }
                    deltas.push(EdgeDelta {
                        src: src as u32,
                        dst: dst as u32,
                        delta,
                    });
                }
                Request::Ingest(deltas)
            }
            TAG_REPARTITION => {
                let (&mode, rest2) = rest.split_first().ok_or(WireError::Truncated)?;
                let mode = match mode {
                    0 => RepartitionMode::Warm,
                    1 => RepartitionMode::Cold,
                    _ => return Err(WireError::NonCanonical("repartition mode byte")),
                };
                let backend = read_string(rest2, &mut pos, MAX_NAME, "backend name")?;
                finish(rest2, pos)?;
                return Ok(Request::Repartition { mode, backend });
            }
            TAG_MEMBERSHIP => {
                let ids = read_ascending_ids(rest, &mut pos).ok_or(WireError::BadVarint)?;
                if ids.len() > MAX_IDS {
                    return Err(WireError::LimitExceeded("membership id count"));
                }
                Request::Membership(ids)
            }
            TAG_STATS => Request::Stats,
            TAG_CHECKPOINT => {
                let path = read_string(rest, &mut pos, MAX_PATH, "checkpoint path")?;
                Request::Checkpoint(path)
            }
            TAG_SHUTDOWN => Request::Shutdown,
            TAG_METRICS => Request::Metrics,
            other => return Err(WireError::BadTag(other)),
        };
        finish(rest, pos)?;
        Ok(req)
    }
}

// ----------------------------------------------------------- responses

/// One trajectory entry in a [`Response::Stats`] reply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// Block count after the iteration.
    pub num_blocks: u64,
    /// Description length after the iteration.
    pub dl: f64,
}

/// The payload of a [`Response::Stats`] reply.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReply {
    /// Vertices in the resident graph (after applied deltas).
    pub num_vertices: u64,
    /// Blocks in the warm partition.
    pub num_blocks: u64,
    /// Description length of the warm partition.
    pub dl: f64,
    /// Edge deltas queued but not yet applied by a `Repartition`.
    pub pending_deltas: u64,
    /// Degraded flag: 0 = healthy; 1/2/3 mirror the run's
    /// `DegradedReason` (rank / decode / shard-load failure).
    pub degraded: u8,
    /// The last ≤ [`MAX_TRAJECTORY`] golden-loop iterations.
    pub trajectory_tail: Vec<TrajectoryPoint>,
    /// The server's default backend name.
    pub backend: String,
    /// Seconds since the daemon finished its startup solve
    /// (protocol v2).
    pub uptime_seconds: f64,
    /// Cumulative accepted `Ingest` requests since startup
    /// (protocol v2).
    pub ingests: u64,
    /// Cumulative successful `Repartition` runs since startup
    /// (protocol v2).
    pub repartitions: u64,
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The request failed; the connection stays usable unless the
    /// frame itself was malformed.
    Error {
        /// Coarse machine-readable code (see the README wire spec).
        code: u8,
        /// Human-readable detail, ≤ [`MAX_MESSAGE`] bytes.
        message: String,
    },
    /// `Ingest` accepted; reports the queue depth.
    IngestAck {
        /// Edge deltas now pending.
        pending_deltas: u64,
    },
    /// `Repartition` finished.
    RepartitionDone {
        /// Blocks in the new partition.
        num_blocks: u64,
        /// Description length of the new partition.
        dl: f64,
        /// Golden-loop iterations the run took.
        iterations: u64,
        /// Vertices that re-entered MCMC sweeps (`num_vertices` for a
        /// cold or full-warm run).
        swept_vertices: u64,
    },
    /// `Membership` labels, in the order of the requested ids.
    Membership(Vec<u32>),
    /// `Stats` snapshot.
    Stats(StatsReply),
    /// `Checkpoint` written.
    CheckpointDone {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// Server is shutting down after this reply.
    ShutdownAck,
    /// `Metrics` snapshot: canonical JSON plus Prometheus-style text.
    Metrics {
        /// `sbp_metrics::Snapshot::to_json()` output, ≤
        /// [`MAX_METRICS_TEXT`] bytes.
        snapshot_json: String,
        /// `sbp_metrics::Snapshot::prometheus()` output, ≤
        /// [`MAX_METRICS_TEXT`] bytes.
        prometheus: String,
    },
}

const TAG_ERROR: u8 = 0x80;
const TAG_INGEST_ACK: u8 = 0x81;
const TAG_REPARTITION_DONE: u8 = 0x82;
const TAG_MEMBERSHIP_REPLY: u8 = 0x83;
const TAG_STATS_REPLY: u8 = 0x84;
const TAG_CHECKPOINT_DONE: u8 = 0x85;
const TAG_SHUTDOWN_ACK: u8 = 0x86;
const TAG_METRICS_REPLY: u8 = 0x87;

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The request frame or payload failed to decode.
    pub const MALFORMED: u8 = 1;
    /// The request referenced a vertex outside the graph or an invalid
    /// delta (e.g. negative resulting weight).
    pub const BAD_DELTA: u8 = 2;
    /// Unknown backend name or the backend rejected the spec.
    pub const BAD_BACKEND: u8 = 3;
    /// The backend does not support warm starts.
    pub const WARM_UNSUPPORTED: u8 = 4;
    /// A checkpoint write or load failed.
    pub const CHECKPOINT: u8 = 5;
    /// A membership query referenced an out-of-range vertex.
    pub const BAD_VERTEX: u8 = 6;
}

impl Response {
    /// Encodes the response payload (no frame). Strings longer than
    /// their limit are truncated at a char boundary rather than
    /// rejected — the server must always be able to reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Error { code, message } => {
                buf.push(TAG_ERROR);
                buf.push(*code);
                write_capped_string(&mut buf, message, MAX_MESSAGE);
            }
            Response::IngestAck { pending_deltas } => {
                buf.push(TAG_INGEST_ACK);
                write_u64(&mut buf, *pending_deltas);
            }
            Response::RepartitionDone {
                num_blocks,
                dl,
                iterations,
                swept_vertices,
            } => {
                buf.push(TAG_REPARTITION_DONE);
                write_u64(&mut buf, *num_blocks);
                write_f64_bits(&mut buf, *dl);
                write_u64(&mut buf, *iterations);
                write_u64(&mut buf, *swept_vertices);
            }
            Response::Membership(labels) => {
                buf.push(TAG_MEMBERSHIP_REPLY);
                write_u64(&mut buf, labels.len() as u64);
                for &l in labels {
                    write_u64(&mut buf, u64::from(l));
                }
            }
            Response::Stats(s) => {
                buf.push(TAG_STATS_REPLY);
                write_u64(&mut buf, s.num_vertices);
                write_u64(&mut buf, s.num_blocks);
                write_f64_bits(&mut buf, s.dl);
                write_u64(&mut buf, s.pending_deltas);
                buf.push(s.degraded);
                write_u64(&mut buf, s.trajectory_tail.len() as u64);
                for p in &s.trajectory_tail {
                    write_u64(&mut buf, p.num_blocks);
                    write_f64_bits(&mut buf, p.dl);
                }
                write_string(&mut buf, &s.backend);
                write_f64_bits(&mut buf, s.uptime_seconds);
                write_u64(&mut buf, s.ingests);
                write_u64(&mut buf, s.repartitions);
            }
            Response::CheckpointDone { bytes } => {
                buf.push(TAG_CHECKPOINT_DONE);
                write_u64(&mut buf, *bytes);
            }
            Response::ShutdownAck => buf.push(TAG_SHUTDOWN_ACK),
            Response::Metrics {
                snapshot_json,
                prometheus,
            } => {
                buf.push(TAG_METRICS_REPLY);
                write_capped_string(&mut buf, snapshot_json, MAX_METRICS_TEXT);
                write_capped_string(&mut buf, prometheus, MAX_METRICS_TEXT);
            }
        }
        buf
    }

    /// Decodes a response payload. As strict as [`Request::decode`] —
    /// the client trusts the server no more than the server trusts the
    /// client.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = buf.split_first().ok_or(WireError::Truncated)?;
        let mut pos = 0usize;
        let resp = match tag {
            TAG_ERROR => {
                let (&code, rest2) = rest.split_first().ok_or(WireError::Truncated)?;
                let message = read_string(rest2, &mut pos, MAX_MESSAGE, "error message")?;
                finish(rest2, pos)?;
                return Ok(Response::Error { code, message });
            }
            TAG_INGEST_ACK => Response::IngestAck {
                pending_deltas: read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?,
            },
            TAG_REPARTITION_DONE => Response::RepartitionDone {
                num_blocks: read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?,
                dl: read_f64_bits(rest, &mut pos)?,
                iterations: read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?,
                swept_vertices: read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?,
            },
            TAG_MEMBERSHIP_REPLY => {
                let count = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)? as usize;
                if count > MAX_IDS {
                    return Err(WireError::LimitExceeded("membership label count"));
                }
                if count > rest.len().saturating_sub(pos) {
                    return Err(WireError::Truncated);
                }
                let mut labels = Vec::with_capacity(count);
                for _ in 0..count {
                    let l = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                    if l > u64::from(u32::MAX) {
                        return Err(WireError::NonCanonical("label exceeds u32"));
                    }
                    labels.push(l as u32);
                }
                Response::Membership(labels)
            }
            TAG_STATS_REPLY => {
                let num_vertices = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                let num_blocks = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                let dl = read_f64_bits(rest, &mut pos)?;
                let pending_deltas = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                if pos >= rest.len() {
                    return Err(WireError::Truncated);
                }
                let degraded = rest[pos];
                pos += 1;
                if degraded > 3 {
                    return Err(WireError::NonCanonical("degraded byte"));
                }
                let count = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)? as usize;
                if count > MAX_TRAJECTORY {
                    return Err(WireError::LimitExceeded("trajectory tail length"));
                }
                let mut trajectory_tail = Vec::with_capacity(count);
                for _ in 0..count {
                    let num_blocks = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                    let dl = read_f64_bits(rest, &mut pos)?;
                    trajectory_tail.push(TrajectoryPoint { num_blocks, dl });
                }
                let backend = read_string(rest, &mut pos, MAX_NAME, "backend name")?;
                let uptime_seconds = read_f64_bits(rest, &mut pos)?;
                let ingests = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                let repartitions = read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?;
                Response::Stats(StatsReply {
                    num_vertices,
                    num_blocks,
                    dl,
                    pending_deltas,
                    degraded,
                    trajectory_tail,
                    backend,
                    uptime_seconds,
                    ingests,
                    repartitions,
                })
            }
            TAG_CHECKPOINT_DONE => Response::CheckpointDone {
                bytes: read_u64(rest, &mut pos).ok_or(WireError::BadVarint)?,
            },
            TAG_SHUTDOWN_ACK => Response::ShutdownAck,
            TAG_METRICS_REPLY => Response::Metrics {
                snapshot_json: read_string(rest, &mut pos, MAX_METRICS_TEXT, "metrics json")?,
                prometheus: read_string(rest, &mut pos, MAX_METRICS_TEXT, "metrics exposition")?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        finish(rest, pos)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let framed = encode_frame(&req.encode());
        let (payload, consumed) = decode_frame(&framed).unwrap();
        assert_eq!(consumed, framed.len());
        assert_eq!(Request::decode(payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let framed = encode_frame(&resp.encode());
        let (payload, consumed) = decode_frame(&framed).unwrap();
        assert_eq!(consumed, framed.len());
        assert_eq!(Response::decode(payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ingest(vec![
            EdgeDelta {
                src: 0,
                dst: 7,
                delta: 3,
            },
            EdgeDelta {
                src: 7,
                dst: 0,
                delta: -2,
            },
        ]));
        roundtrip_request(Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: String::new(),
        });
        roundtrip_request(Request::Repartition {
            mode: RepartitionMode::Cold,
            backend: "hybrid".into(),
        });
        roundtrip_request(Request::Membership(vec![0, 3, 4, 900]));
        roundtrip_request(Request::Membership(vec![]));
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Checkpoint("/tmp/x.sbpc".into()));
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Error {
            code: error_code::BAD_DELTA,
            message: "arc (0, 1) would end up with negative weight -1".into(),
        });
        roundtrip_response(Response::IngestAck { pending_deltas: 42 });
        roundtrip_response(Response::RepartitionDone {
            num_blocks: 8,
            dl: 123.456,
            iterations: 11,
            swept_vertices: 100,
        });
        roundtrip_response(Response::Membership(vec![1, 0, 1, 7]));
        roundtrip_response(Response::Stats(StatsReply {
            num_vertices: 1000,
            num_blocks: 8,
            dl: -0.0,
            pending_deltas: 3,
            degraded: 1,
            trajectory_tail: vec![
                TrajectoryPoint {
                    num_blocks: 16,
                    dl: 9.0,
                },
                TrajectoryPoint {
                    num_blocks: 8,
                    dl: 8.5,
                },
            ],
            backend: "sequential".into(),
            uptime_seconds: 12.75,
            ingests: 5,
            repartitions: 2,
        }));
        roundtrip_response(Response::CheckpointDone { bytes: 512 });
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Metrics {
            snapshot_json: "{\"sbp_daemon_ingests_total\":{\"type\":\"counter\",\"value\":5}}"
                .into(),
            prometheus: "# TYPE sbp_daemon_ingests_total counter\n\
                         sbp_daemon_ingests_total 5\n"
                .into(),
        });
    }

    #[test]
    fn oversized_metrics_text_truncates_at_char_boundary() {
        let resp = Response::Metrics {
            snapshot_json: "é".repeat(MAX_METRICS_TEXT),
            prometheus: String::new(),
        };
        match Response::decode(&resp.encode()).unwrap() {
            Response::Metrics {
                snapshot_json,
                prometheus,
            } => {
                assert!(snapshot_json.len() <= MAX_METRICS_TEXT);
                assert!(!snapshot_json.is_empty());
                assert!(prometheus.is_empty());
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn frame_rejects_bad_magic_length_and_checksum() {
        let framed = encode_frame(&Request::Stats.encode());
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad), Err(WireError::BadMagic));
        let mut bad = framed.clone();
        bad[2] = 0xFF;
        bad[5] = 0xFF;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::PayloadTooLarge { .. })
        ));
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(decode_frame(&bad), Err(WireError::ChecksumMismatch));
        assert_eq!(decode_frame(&framed[..5]), Err(WireError::Truncated));
        // Flipping any payload byte trips the checksum.
        let mut bad = framed.clone();
        bad[6] ^= 0x40;
        assert_eq!(decode_frame(&bad), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Stats.encode();
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::TrailingBytes));
        let mut payload = Response::ShutdownAck.encode();
        payload.push(0);
        assert_eq!(Response::decode(&payload), Err(WireError::TrailingBytes));
    }

    #[test]
    fn hostile_counts_and_strings_are_rejected() {
        // Ingest with a crafted huge count.
        let mut payload = vec![0x01];
        sbp_graph::varint::write_u64(&mut payload, u64::MAX);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::LimitExceeded(_) | WireError::Truncated)
        ));
        // Zero delta is non-canonical.
        let mut payload = vec![0x01];
        sbp_graph::varint::write_u64(&mut payload, 1);
        sbp_graph::varint::write_u64(&mut payload, 0);
        sbp_graph::varint::write_u64(&mut payload, 1);
        sbp_graph::varint::write_i64(&mut payload, 0);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::NonCanonical("zero edge delta"))
        );
        // Over-long backend name.
        let req = Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: "x".repeat(MAX_NAME + 1),
        };
        assert_eq!(
            Request::decode(&req.encode()),
            Err(WireError::LimitExceeded("backend name"))
        );
        // Invalid UTF-8 in a checkpoint path.
        let mut payload = vec![0x05];
        sbp_graph::varint::write_u64(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Request::decode(&payload), Err(WireError::BadString));
        // Unknown tags, both directions.
        assert_eq!(Request::decode(&[0x77]), Err(WireError::BadTag(0x77)));
        assert_eq!(Response::decode(&[0x10]), Err(WireError::BadTag(0x10)));
        // Empty payloads.
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Response::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn long_error_messages_truncate_at_char_boundary() {
        let resp = Response::Error {
            code: 1,
            message: "é".repeat(MAX_MESSAGE),
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        match decoded {
            Response::Error { message, .. } => {
                assert!(message.len() <= MAX_MESSAGE);
                assert!(!message.is_empty());
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}

//! The resident partition daemon.
//!
//! A [`Server`] loads a graph once, solves it cold (or restores a
//! `.sbpc` snapshot), and then holds the best partition warm while
//! serving [`Request`]s over a unix or TCP socket. Edge deltas queue on
//! ingest and apply at the next `Repartition`; membership and stats
//! queries answer from the warm partition immediately, so ingest never
//! blocks reads. A warm repartition seeds the golden search from the
//! current partition and sweeps only vertices within one hop of the
//! applied deltas ([`dirty_set`]); a cold one re-runs from `C = V`.
//!
//! A malformed frame gets a typed error reply and closes that
//! connection; the daemon itself survives and keeps accepting.

use crate::protocol::{
    decode_frame, encode_frame, error_code, RepartitionMode, Request, Response, StatsReply,
    TrajectoryPoint, WireError, MAX_PAYLOAD, MAX_TRAJECTORY,
};
use sbp_core::checkpoint::CheckpointState;
use sbp_core::golden::BracketEntry;
use sbp_core::registry::{SolverRegistry, SolverSpec};
use sbp_core::run::{NoProgress, RunConfig, Solver, WarmStart};
use sbp_core::{IterationStat, SbpConfig};
use sbp_graph::{EdgeDelta, Graph, Vertex};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket at this path (removed and re-bound if a
    /// stale socket file exists).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7171`.
    Tcp(String),
}

impl Listen {
    /// Parses `unix:PATH` or `tcp:ADDR`.
    pub fn parse(s: &str) -> Result<Self, ServeError> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Listen::Tcp(addr.to_string()))
        } else {
            Err(ServeError::Config(format!(
                "listen address '{s}' must start with unix: or tcp:"
            )))
        }
    }
}

/// Why the daemon failed to start or stopped.
#[derive(Debug)]
pub enum ServeError {
    /// Bad daemon configuration (unknown backend, bad listen address…).
    Config(String),
    /// Graph load failed.
    GraphLoad(String),
    /// A `--resume` snapshot failed to load or decode.
    CheckpointLoad(String),
    /// A `--resume` snapshot does not match the loaded graph — e.g. the
    /// snapshot was written after edge deltas the current graph file
    /// never saw. Refusing is the contract: a typed error, never a
    /// silently wrong answer.
    CheckpointMismatch(String),
    /// Socket-level I/O failure while binding or accepting.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config error: {m}"),
            ServeError::GraphLoad(m) => write!(f, "graph load failed: {m}"),
            ServeError::CheckpointLoad(m) => write!(f, "checkpoint load failed: {m}"),
            ServeError::CheckpointMismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Default backend name, resolved through the registry.
    pub backend: String,
    /// Construction parameters for registry factories.
    pub spec: SolverSpec,
    /// Master seed for every solve the daemon runs.
    pub seed: u64,
    /// Restore state from this `.sbpc` snapshot instead of solving cold
    /// at startup.
    pub resume: Option<PathBuf>,
    /// Write a `.sbpc` snapshot here on graceful shutdown.
    pub checkpoint_on_shutdown: Option<PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            backend: "sequential".into(),
            spec: SolverSpec::default(),
            seed: 0,
            resume: None,
            checkpoint_on_shutdown: None,
        }
    }
}

/// The vertices within one hop of a delta batch, on the mutated graph:
/// every delta endpoint plus its current in- and out-neighbors. This is
/// the dirty set a warm repartition sweeps — exactly the vertices whose
/// best block may have changed, while the DL is still evaluated over
/// the full blockmodel.
pub fn dirty_set(graph: &Graph, deltas: &[EdgeDelta]) -> Vec<Vertex> {
    let n = graph.num_vertices();
    let mut dirty: Vec<Vertex> = Vec::new();
    for d in deltas {
        for v in [d.src, d.dst] {
            if (v as usize) >= n {
                continue;
            }
            dirty.push(v);
            dirty.extend(graph.out_edges(v).iter().map(|&(u, _)| u));
            dirty.extend(graph.in_edges(v).iter().map(|&(u, _)| u));
        }
    }
    dirty.sort_unstable();
    dirty.dedup();
    dirty
}

/// The resident server: graph, warm partition, pending deltas, and the
/// solver registry every `Repartition` resolves backends through.
pub struct Server {
    graph: Graph,
    assignment: Vec<u32>,
    num_blocks: usize,
    dl: f64,
    trajectory: Vec<IterationStat>,
    pending: Vec<EdgeDelta>,
    degraded: u8,
    options: ServerOptions,
    registry: SolverRegistry,
    started: std::time::Instant,
    ingests: u64,
    repartitions: u64,
}

/// Counts one daemon request by kind (observe-only: the handler's
/// behaviour never depends on the counters).
fn count_request(kind: &'static str) {
    if sbp_metrics::enabled() {
        sbp_metrics::counter(&sbp_metrics::labeled(
            "sbp_daemon_requests_total",
            "kind",
            kind,
        ))
        .inc();
    }
}

fn degraded_byte(reason: Option<sbp_core::DegradedReason>) -> u8 {
    match reason {
        None => 0,
        Some(sbp_core::DegradedReason::RankFailure) => 1,
        Some(sbp_core::DegradedReason::DecodeFailure) => 2,
        Some(sbp_core::DegradedReason::ShardLoadFailure) => 3,
    }
}

impl Server {
    /// Builds a server over `graph`: resolves the default backend, then
    /// either restores the `--resume` snapshot (validating its graph
    /// fingerprint) or runs the initial cold solve.
    pub fn new(
        graph: Graph,
        options: ServerOptions,
        registry: SolverRegistry,
    ) -> Result<Self, ServeError> {
        if !registry.contains(&options.backend) {
            return Err(ServeError::Config(format!(
                "unknown backend '{}' (known: {})",
                options.backend,
                registry.names().join(", ")
            )));
        }
        let mut server = Server {
            graph,
            assignment: Vec::new(),
            num_blocks: 0,
            dl: 0.0,
            trajectory: Vec::new(),
            pending: Vec::new(),
            degraded: 0,
            options,
            registry,
            started: std::time::Instant::now(),
            ingests: 0,
            repartitions: 0,
        };
        if let Some(path) = server.options.resume.clone() {
            server.restore(&path)?;
        } else {
            let solver = server
                .solver(&server.options.backend.clone())
                .map_err(ServeError::Config)?;
            let outcome = solver.solve(&server.graph, &server.run_config(), &mut NoProgress);
            server.adopt(outcome);
        }
        Ok(server)
    }

    fn run_config(&self) -> RunConfig {
        RunConfig::from_sbp(SbpConfig {
            seed: self.options.seed,
            ..SbpConfig::default()
        })
    }

    fn solver(&self, backend: &str) -> Result<Box<dyn Solver>, String> {
        let name = if backend.is_empty() {
            &self.options.backend
        } else {
            backend
        };
        self.registry
            .build(name, &self.options.spec)
            .map_err(|e| e.to_string())
    }

    fn adopt(&mut self, outcome: sbp_core::RunOutcome) {
        self.assignment = outcome.assignment;
        self.num_blocks = outcome.num_blocks;
        self.dl = outcome.description_length;
        self.trajectory.extend(outcome.iterations);
        self.degraded = degraded_byte(outcome.degraded);
    }

    fn restore(&mut self, path: &Path) -> Result<(), ServeError> {
        let state = CheckpointState::read_from(path)
            .map_err(|e| ServeError::CheckpointLoad(e.to_string()))?;
        if state.num_vertices != self.graph.num_vertices() as u64
            || state.total_edge_weight != self.graph.total_edge_weight().max(0) as u64
        {
            return Err(ServeError::CheckpointMismatch(format!(
                "snapshot fingerprint (V={}, E={}) does not match the loaded graph \
                 (V={}, E={}); the snapshot was written for a different graph state \
                 (e.g. after edge deltas)",
                state.num_vertices,
                state.total_edge_weight,
                self.graph.num_vertices(),
                self.graph.total_edge_weight()
            )));
        }
        let mid = state.mid.as_ref().ok_or_else(|| {
            ServeError::CheckpointLoad("snapshot has no best partition entry".into())
        })?;
        if mid.assignment.len() != self.graph.num_vertices() {
            return Err(ServeError::CheckpointMismatch(format!(
                "snapshot assignment length {} != graph vertex count {}",
                mid.assignment.len(),
                self.graph.num_vertices()
            )));
        }
        self.assignment = mid.assignment.clone();
        self.num_blocks = mid.num_blocks;
        self.dl = mid.dl;
        self.trajectory = state.iterations.clone();
        self.degraded = 0;
        Ok(())
    }

    /// Packs the current server state into a `.sbpc` snapshot: the warm
    /// partition as the bracket's `mid`, the fingerprint of the current
    /// (post-delta) graph, and the accumulated trajectory.
    pub fn checkpoint_state(&self) -> CheckpointState {
        let entry = BracketEntry {
            assignment: self.assignment.clone(),
            num_blocks: self.num_blocks,
            dl: self.dl,
        };
        CheckpointState {
            seed: self.options.seed,
            strategy_tag: 0,
            num_vertices: self.graph.num_vertices() as u64,
            total_edge_weight: self.graph.total_edge_weight().max(0) as u64,
            next_iter: self.trajectory.len() as u64,
            iterations: self.trajectory.clone(),
            hi: Some(entry.clone()),
            mid: Some(entry),
            lo: None,
        }
    }

    /// Current warm assignment (for tests and in-process embedding).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Current block count.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Current description length.
    pub fn description_length(&self) -> f64 {
        self.dl
    }

    /// Edge deltas queued but not yet applied.
    pub fn pending_deltas(&self) -> usize {
        self.pending.len()
    }

    /// The resident graph (post any applied deltas).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Handles one request against the in-memory state. Returns the
    /// reply and whether the server should shut down afterwards. Pure
    /// state machine — the socket loop and tests share it.
    pub fn handle(&mut self, req: Request) -> (Response, bool) {
        match req {
            Request::Ingest(deltas) => {
                count_request("ingest");
                let n = self.graph.num_vertices();
                for d in &deltas {
                    if (d.src as usize) >= n || (d.dst as usize) >= n {
                        return (
                            Response::Error {
                                code: error_code::BAD_DELTA,
                                message: format!(
                                    "delta endpoint out of range for {n} vertices: ({}, {})",
                                    d.src, d.dst
                                ),
                            },
                            false,
                        );
                    }
                }
                self.pending.extend(deltas);
                self.ingests += 1;
                if sbp_metrics::enabled() {
                    sbp_metrics::counter("sbp_daemon_ingests_total").inc();
                }
                (
                    Response::IngestAck {
                        pending_deltas: self.pending.len() as u64,
                    },
                    false,
                )
            }
            Request::Repartition { mode, backend } => {
                count_request("repartition");
                (self.repartition(mode, &backend), false)
            }
            Request::Membership(ids) => {
                count_request("membership");
                let n = self.graph.num_vertices();
                if let Some(&bad) = ids.iter().find(|&&v| (v as usize) >= n) {
                    return (
                        Response::Error {
                            code: error_code::BAD_VERTEX,
                            message: format!("vertex {bad} out of range for {n} vertices"),
                        },
                        false,
                    );
                }
                let labels = ids.iter().map(|&v| self.assignment[v as usize]).collect();
                (Response::Membership(labels), false)
            }
            Request::Stats => {
                count_request("stats");
                let tail_start = self.trajectory.len().saturating_sub(MAX_TRAJECTORY);
                let trajectory_tail = self.trajectory[tail_start..]
                    .iter()
                    .map(|s| TrajectoryPoint {
                        num_blocks: s.num_blocks as u64,
                        dl: s.dl,
                    })
                    .collect();
                (
                    Response::Stats(StatsReply {
                        num_vertices: self.graph.num_vertices() as u64,
                        num_blocks: self.num_blocks as u64,
                        dl: self.dl,
                        pending_deltas: self.pending.len() as u64,
                        degraded: self.degraded,
                        trajectory_tail,
                        backend: self.options.backend.clone(),
                        uptime_seconds: self.started.elapsed().as_secs_f64(),
                        ingests: self.ingests,
                        repartitions: self.repartitions,
                    }),
                    false,
                )
            }
            Request::Metrics => {
                count_request("metrics");
                if sbp_metrics::enabled() {
                    sbp_metrics::gauge("sbp_daemon_uptime_seconds")
                        .set(self.started.elapsed().as_secs_f64());
                }
                let snap = sbp_metrics::snapshot();
                (
                    Response::Metrics {
                        snapshot_json: snap.to_json().to_string(),
                        prometheus: snap.prometheus(),
                    },
                    false,
                )
            }
            Request::Checkpoint(path) => {
                count_request("checkpoint");
                let state = self.checkpoint_state();
                match state.write_to(Path::new(&path)) {
                    Ok(()) => (
                        Response::CheckpointDone {
                            bytes: state.encode().len() as u64,
                        },
                        false,
                    ),
                    Err(e) => (
                        Response::Error {
                            code: error_code::CHECKPOINT,
                            message: format!("checkpoint write to '{path}' failed: {e}"),
                        },
                        false,
                    ),
                }
            }
            Request::Shutdown => {
                count_request("shutdown");
                if let Some(path) = self.options.checkpoint_on_shutdown.clone() {
                    let _ = self.checkpoint_state().write_to(&path);
                }
                (Response::ShutdownAck, true)
            }
        }
    }

    fn repartition(&mut self, mode: RepartitionMode, backend: &str) -> Response {
        let solver = match self.solver(backend) {
            Ok(s) => s,
            Err(message) => {
                return Response::Error {
                    code: error_code::BAD_BACKEND,
                    message,
                }
            }
        };
        if mode == RepartitionMode::Warm && !solver.supports_warm_start() {
            return Response::Error {
                code: error_code::WARM_UNSUPPORTED,
                message: format!("backend '{}' does not support warm starts", solver.name()),
            };
        }
        // Apply the pending batch. All-or-nothing: on failure the graph
        // and partition are untouched, and the batch is dropped so one
        // poisoned delta cannot wedge every future repartition.
        let deltas = std::mem::take(&mut self.pending);
        if let Err(e) = self.graph.apply_edge_deltas(&deltas) {
            return Response::Error {
                code: error_code::BAD_DELTA,
                message: format!("{e}; {} pending deltas discarded", deltas.len()),
            };
        }
        let mut cfg = self.run_config();
        let swept_vertices;
        match mode {
            RepartitionMode::Warm => {
                let mut warm = WarmStart::new(self.assignment.clone(), self.num_blocks.max(1));
                if deltas.is_empty() {
                    // Nothing changed: a full polish pass, not a no-op.
                    swept_vertices = self.graph.num_vertices() as u64;
                } else {
                    let dirty = dirty_set(&self.graph, &deltas);
                    swept_vertices = dirty.len() as u64;
                    warm = warm.with_dirty(dirty);
                }
                cfg = cfg.warm_start(warm);
            }
            RepartitionMode::Cold => {
                swept_vertices = self.graph.num_vertices() as u64;
            }
        }
        let outcome = solver.solve(&self.graph, &cfg, &mut NoProgress);
        let iterations = outcome.iterations.len() as u64;
        self.adopt(outcome);
        self.repartitions += 1;
        if sbp_metrics::enabled() {
            sbp_metrics::counter("sbp_daemon_repartitions_total").inc();
        }
        Response::RepartitionDone {
            num_blocks: self.num_blocks as u64,
            dl: self.dl,
            iterations,
            swept_vertices,
        }
    }
}

// -------------------------------------------------------- socket plumbing

/// Reads one frame from a stream. Returns `Ok(None)` on clean EOF at a
/// frame boundary, `Err(Ok(wire_error))` on a malformed frame, and
/// `Err(Err(io_error))` on socket failure.
fn read_frame<R: Read>(
    stream: &mut R,
) -> Result<Option<Vec<u8>>, Result<WireError, std::io::Error>> {
    let mut header = [0u8; 6];
    let mut got = 0usize;
    while got < header.len() {
        match stream.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Ok(WireError::Truncated)),
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Err(e)),
        }
    }
    if header[..2] != crate::protocol::FRAME_MAGIC {
        return Err(Ok(WireError::BadMagic));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(Ok(WireError::PayloadTooLarge {
            declared: len as u64,
        }));
    }
    let mut rest = vec![0u8; len + 8];
    if let Err(e) = stream.read_exact(&mut rest) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Err(Ok(WireError::Truncated))
        } else {
            Err(Err(e))
        };
    }
    let mut frame = header.to_vec();
    frame.extend_from_slice(&rest);
    match decode_frame(&frame) {
        Ok((payload, _)) => Ok(Some(payload.to_vec())),
        Err(e) => Err(Ok(e)),
    }
}

fn write_response<W: Write>(stream: &mut W, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&encode_frame(&resp.encode()))?;
    stream.flush()
}

/// Serves one connection: a loop of frame → request → reply. Returns
/// true if a `Shutdown` request was honoured. A malformed frame gets an
/// error reply and closes this connection only.
fn serve_connection<S: Read + Write>(server: &mut Server, stream: &mut S) -> bool {
    loop {
        let payload = match read_frame(stream) {
            Ok(Some(p)) => p,
            Ok(None) => return false,
            Err(Ok(wire)) => {
                let _ = write_response(
                    stream,
                    &Response::Error {
                        code: error_code::MALFORMED,
                        message: format!("malformed frame: {wire}"),
                    },
                );
                return false;
            }
            Err(Err(_)) => return false,
        };
        let (resp, shutdown) = match Request::decode(&payload) {
            Ok(req) => server.handle(req),
            Err(wire) => (
                Response::Error {
                    code: error_code::MALFORMED,
                    message: format!("malformed request: {wire}"),
                },
                false,
            ),
        };
        if write_response(stream, &resp).is_err() {
            return false;
        }
        if shutdown {
            return true;
        }
    }
}

/// Binds the listener and serves connections sequentially until a
/// `Shutdown` request arrives. `on_ready` runs once the socket is bound
/// and accepting — the binary prints its "listening" line there.
pub fn serve(
    server: &mut Server,
    listen: &Listen,
    on_ready: impl FnOnce(&Listen),
) -> Result<(), ServeError> {
    match listen {
        Listen::Unix(path) => {
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            on_ready(listen);
            for stream in listener.incoming() {
                let mut stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if serve_connection(server, &mut stream) {
                    break;
                }
            }
            let _ = std::fs::remove_file(path);
            Ok(())
        }
        Listen::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(addr.as_str())?;
            on_ready(listen);
            for stream in listener.incoming() {
                let mut stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if serve_connection(server, &mut stream) {
                    break;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::fixtures::two_cliques;

    fn default_registry() -> SolverRegistry {
        let mut reg = SolverRegistry::with_core_backends();
        sbp_dist::register_solvers(&mut reg);
        reg
    }

    fn test_server(seed: u64) -> Server {
        let options = ServerOptions {
            seed,
            ..ServerOptions::default()
        };
        Server::new(two_cliques(8), options, default_registry()).unwrap()
    }

    #[test]
    fn startup_solves_cold_and_answers_membership() {
        let mut s = test_server(3);
        assert_eq!(s.num_blocks(), 2);
        let (resp, shutdown) = s.handle(Request::Membership(vec![0, 8, 15]));
        assert!(!shutdown);
        match resp {
            Response::Membership(labels) => {
                assert_eq!(labels.len(), 3);
                assert_eq!(labels[1], labels[2]);
                assert_ne!(labels[0], labels[1]);
            }
            other => panic!("expected Membership, got {other:?}"),
        }
    }

    #[test]
    fn ingest_queues_without_blocking_reads() {
        let mut s = test_server(3);
        let before = s.assignment().to_vec();
        let (resp, _) = s.handle(Request::Ingest(vec![EdgeDelta {
            src: 0,
            dst: 9,
            delta: 1,
        }]));
        assert_eq!(resp, Response::IngestAck { pending_deltas: 1 });
        // Membership still answers from the warm partition.
        let (resp, _) = s.handle(Request::Membership(vec![0]));
        assert_eq!(resp, Response::Membership(vec![before[0]]));
        // Stats reports the pending depth.
        let (resp, _) = s.handle(Request::Stats);
        match resp {
            Response::Stats(stats) => {
                assert_eq!(stats.pending_deltas, 1);
                assert_eq!(stats.num_blocks, 2);
                assert_eq!(stats.degraded, 0);
                assert!(!stats.trajectory_tail.is_empty());
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        assert_eq!(s.assignment(), &before[..]);
    }

    #[test]
    fn warm_repartition_applies_deltas() {
        let mut s = test_server(5);
        // Intra-clique delta: the one-hop dirty set is clique 1 only.
        let (_, _) = s.handle(Request::Ingest(vec![EdgeDelta {
            src: 2,
            dst: 3,
            delta: 1,
        }]));
        let e_before = s.graph().total_edge_weight();
        let (resp, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: String::new(),
        });
        match resp {
            Response::RepartitionDone {
                num_blocks,
                swept_vertices,
                ..
            } => {
                assert_eq!(num_blocks, 2);
                // One-hop dirty set, not the whole graph.
                assert!(swept_vertices < 16, "swept {swept_vertices}");
                assert!(swept_vertices >= 2);
            }
            other => panic!("expected RepartitionDone, got {other:?}"),
        }
        assert_eq!(s.graph().total_edge_weight(), e_before + 1);
        assert_eq!(s.pending_deltas(), 0);
    }

    #[test]
    fn bad_deltas_get_typed_errors_and_server_survives() {
        let mut s = test_server(1);
        // Out-of-range endpoint rejected at ingest.
        let (resp, _) = s.handle(Request::Ingest(vec![EdgeDelta {
            src: 99,
            dst: 0,
            delta: 1,
        }]));
        assert!(matches!(
            resp,
            Response::Error {
                code: error_code::BAD_DELTA,
                ..
            }
        ));
        // Over-removal rejected at repartition; batch dropped.
        let (_, _) = s.handle(Request::Ingest(vec![EdgeDelta {
            src: 0,
            dst: 1,
            delta: -100,
        }]));
        let (resp, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: String::new(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: error_code::BAD_DELTA,
                ..
            }
        ));
        assert_eq!(s.pending_deltas(), 0);
        // Still serving.
        let (resp, _) = s.handle(Request::Stats);
        assert!(matches!(resp, Response::Stats(_)));
    }

    #[test]
    fn warm_rejected_for_backends_without_support() {
        let mut s = test_server(1);
        let (resp, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: "edist".into(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: error_code::WARM_UNSUPPORTED,
                ..
            }
        ));
        // Cold through the same registry-resolved backend works.
        let (resp, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Cold,
            backend: "edist".into(),
        });
        assert!(matches!(resp, Response::RepartitionDone { .. }));
        // Unknown name is a typed error.
        let (resp, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Cold,
            backend: "nope".into(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: error_code::BAD_BACKEND,
                ..
            }
        ));
    }

    #[test]
    fn checkpoint_roundtrip_and_fingerprint_mismatch() {
        let dir = std::env::temp_dir().join(format!("sbp_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.sbpc");
        let mut s = test_server(9);
        let (resp, _) = s.handle(Request::Checkpoint(path.to_string_lossy().into_owned()));
        assert!(matches!(resp, Response::CheckpointDone { .. }));
        // Resume over the same graph restores the warm partition.
        let options = ServerOptions {
            seed: 9,
            resume: Some(path.clone()),
            ..ServerOptions::default()
        };
        let resumed = Server::new(two_cliques(8), options.clone(), default_registry()).unwrap();
        assert_eq!(resumed.assignment(), s.assignment());
        assert_eq!(resumed.num_blocks(), s.num_blocks());
        assert_eq!(
            resumed.description_length().to_bits(),
            s.description_length().to_bits()
        );
        // A different graph (as after unseen deltas) is a typed mismatch.
        match Server::new(two_cliques(9), options, default_registry()) {
            Err(ServeError::CheckpointMismatch(_)) => {}
            Err(other) => panic!("expected CheckpointMismatch, got {other:?}"),
            Ok(_) => panic!("expected CheckpointMismatch, got a server"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_set_is_one_hop_sorted_dedup() {
        let g = two_cliques(4); // vertices 0..8, cliques {0..4} and {4..8}
        let deltas = [EdgeDelta {
            src: 0,
            dst: 5,
            delta: 1,
        }];
        let dirty = dirty_set(&g, &deltas);
        assert!(dirty.contains(&0) && dirty.contains(&5));
        // 0's clique neighbors are in; a clique-1 vertex not adjacent to
        // 5 or 0 must not be (vertex 7 is adjacent to 5 in clique 2 —
        // pick one adjacent to neither endpoint... all of clique 2 is
        // adjacent to 5, so every vertex lands in the set here; assert
        // sortedness and bounds instead.
        assert!(dirty.windows(2).all(|w| w[0] < w[1]));
        assert!(dirty.iter().all(|&v| (v as usize) < 8));
    }

    #[test]
    fn stats_reports_uptime_and_cumulative_counters() {
        let mut s = test_server(4);
        let (_, _) = s.handle(Request::Ingest(vec![EdgeDelta {
            src: 0,
            dst: 1,
            delta: 1,
        }]));
        let (_, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Warm,
            backend: String::new(),
        });
        let (resp, _) = s.handle(Request::Stats);
        match resp {
            Response::Stats(stats) => {
                assert_eq!(stats.ingests, 1);
                assert_eq!(stats.repartitions, 1);
                assert!(stats.uptime_seconds >= 0.0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // A failed repartition (unknown backend) is not counted.
        let (_, _) = s.handle(Request::Repartition {
            mode: RepartitionMode::Cold,
            backend: "nope".into(),
        });
        let (resp, _) = s.handle(Request::Stats);
        match resp {
            Response::Stats(stats) => assert_eq!(stats.repartitions, 1),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn metrics_request_returns_json_and_exposition() {
        let mut s = test_server(4);
        let (resp, shutdown) = s.handle(Request::Metrics);
        assert!(!shutdown);
        match resp {
            Response::Metrics {
                snapshot_json,
                prometheus,
            } => {
                let value =
                    sbp_metrics::json::Value::parse(&snapshot_json).expect("valid JSON text");
                sbp_metrics::Snapshot::from_json(&value).expect("valid snapshot JSON");
                // The handler's own request counter must appear once
                // metrics are enabled (the default).
                if sbp_metrics::enabled() {
                    assert!(
                        prometheus.contains("sbp_daemon_requests_total"),
                        "missing daemon counter in: {prometheus}"
                    );
                }
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_writes_configured_checkpoint() {
        let dir = std::env::temp_dir().join(format!("sbp_serve_shut_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("final.sbpc");
        let options = ServerOptions {
            seed: 2,
            checkpoint_on_shutdown: Some(path.clone()),
            ..ServerOptions::default()
        };
        let mut s = Server::new(two_cliques(6), options, default_registry()).unwrap();
        let (resp, shutdown) = s.handle(Request::Shutdown);
        assert_eq!(resp, Response::ShutdownAck);
        assert!(shutdown);
        let state = CheckpointState::read_from(&path).unwrap();
        assert_eq!(state.num_vertices, 12);
        assert_eq!(state.mid.unwrap().assignment, s.assignment());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

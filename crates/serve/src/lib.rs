//! `sbp-serve` — a resident partition server for SBP with incremental
//! re-partitioning over a strict binary wire protocol.
//!
//! The one-shot CLI re-solves from `C = V` on every invocation, which
//! is the wrong shape for a graph that changes a little at a time. This
//! crate keeps the solved state resident:
//!
//! - [`server::Server`] loads a graph once (monolithic edge list or a
//!   `.sbps` shard directory, via the binary), solves it cold — or
//!   restores a PR 6 `.sbpc` checkpoint — and then holds the best
//!   partition warm in memory.
//! - [`protocol`] defines the length-prefixed, checksummed frame format
//!   and the six request types (`Ingest`, `Repartition`, `Membership`,
//!   `Stats`, `Checkpoint`, `Shutdown`). Every decoder is strict:
//!   explicit size limits, canonical encodings, typed [`protocol::WireError`]s,
//!   and no panics on arbitrary bytes — the same hostile-input contract
//!   the rest of the workspace holds itself to.
//! - [`client::Client`] is the blocking counterpart used by
//!   `edist-cli connect` and the test suites, including a raw-bytes
//!   escape hatch for malformed-frame probes.
//!
//! Incremental re-partitioning is the point: `Ingest` queues signed
//! edge-weight deltas without touching the warm partition (membership
//! queries keep answering), and a warm `Repartition` applies the batch,
//! seeds the golden-ratio bracket from the current assignment and block
//! count via [`sbp_core::WarmStart`], and confines MCMC sweeps to the
//! vertices within one hop of the changed edges ([`server::dirty_set`])
//! while description length stays exact over the full blockmodel. A
//! cold `Repartition` falls back to the full `C = V` search. Backends
//! resolve by name through [`sbp_core::SolverRegistry`], so downstream
//! crates can serve their own solvers; warm mode is refused with a
//! typed error for backends that do not support it.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response, WireError};
pub use server::{dirty_set, serve, Listen, ServeError, Server, ServerOptions};

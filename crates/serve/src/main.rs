//! `sbp-serve` — standalone daemon binary.
//!
//! ```text
//! sbp-serve --graph g.txt --listen unix:/tmp/sbp.sock [--backend NAME]
//!           [--ranks N] [--sync-period P] [--seed S]
//!           [--resume state.sbpc] [--checkpoint final.sbpc]
//! sbp-serve --sharded dir.sbps --listen tcp:127.0.0.1:7171 ...
//! ```
//!
//! The daemon prints `listening on ...` once the socket is bound and
//! accepting — scripts poll for that line before connecting.

use sbp_core::registry::{SolverRegistry, SolverSpec};
use sbp_serve::server::{serve, Listen, Server, ServerOptions};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "sbp-serve: resident SBP partition server

USAGE:
  sbp-serve --graph FILE | --sharded DIR  --listen unix:PATH|tcp:ADDR
            [--backend NAME] [--ranks N] [--sync-period P] [--seed S]
            [--resume FILE.sbpc] [--checkpoint FILE.sbpc]

OPTIONS:
  --graph FILE        edge-list or matrix-market graph to load
  --sharded DIR       .sbps shard directory to load instead of --graph
  --listen ADDR       unix:/path/to.sock or tcp:host:port (required)
  --backend NAME      default solver backend (default: sequential)
  --ranks N           simulated ranks for distributed backends (default: 1)
  --sync-period P     sync period for edist (default: 1)
  --seed S            master seed for every solve (default: 0)
  --resume FILE       restore state from a .sbpc snapshot at startup
  --checkpoint FILE   write a .sbpc snapshot on graceful shutdown
  --help              print this help
";

fn parse_args(argv: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < argv.len() {
        let key = &argv[i];
        if !key.starts_with("--") {
            return Err(format!(
                "unexpected argument '{key}' (flags are --key value)"
            ));
        }
        if key == "--help" {
            map.insert("help".to_string(), String::new());
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("flag '{key}' is missing its value"))?;
        map.insert(key[2..].to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    if args.contains_key("help") {
        print!("{HELP}");
        return Ok(());
    }

    let listen = Listen::parse(
        args.get("listen")
            .ok_or("--listen unix:PATH or tcp:ADDR is required")?,
    )
    .map_err(|e| e.to_string())?;

    let graph = match (args.get("graph"), args.get("sharded")) {
        (Some(path), None) => sbp_graph::io::load_graph(std::path::Path::new(path))
            .map_err(|e| format!("loading '{path}': {e}"))?,
        (None, Some(dir)) => sbp_graph::shard::unshard_graph(std::path::Path::new(dir))
            .map_err(|e| format!("loading shard dir '{dir}': {e}"))?,
        (Some(_), Some(_)) => return Err("--graph and --sharded are mutually exclusive".into()),
        (None, None) => return Err("one of --graph or --sharded is required".into()),
    };

    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        match args.get(key) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("--{key} must be a non-negative integer, got '{v}'")),
            None => Ok(default),
        }
    };
    let seed = match args.get("seed") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--seed must be a non-negative integer, got '{v}'"))?,
        None => 0,
    };

    let options = ServerOptions {
        backend: args
            .get("backend")
            .cloned()
            .unwrap_or_else(|| "sequential".to_string()),
        spec: SolverSpec {
            ranks: parse_usize("ranks", 1)?,
            sync_period: parse_usize("sync-period", 1)?,
        },
        seed,
        resume: args.get("resume").map(PathBuf::from),
        checkpoint_on_shutdown: args.get("checkpoint").map(PathBuf::from),
    };

    let mut registry = SolverRegistry::with_core_backends();
    sbp_dist::register_solvers(&mut registry);

    eprintln!(
        "sbp-serve: loaded graph with {} vertices, solving with backend '{}'...",
        graph.num_vertices(),
        options.backend
    );
    let mut server = Server::new(graph, options, registry).map_err(|e| e.to_string())?;
    eprintln!(
        "sbp-serve: warm partition ready ({} blocks, DL {:.4})",
        server.num_blocks(),
        server.description_length()
    );

    serve(&mut server, &listen, |l| {
        let where_ = match l {
            Listen::Unix(p) => format!("unix:{}", p.display()),
            Listen::Tcp(a) => format!("tcp:{a}"),
        };
        println!("listening on {where_}");
    })
    .map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sbp-serve: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! Blocking client for the `sbp-serve` wire protocol.
//!
//! One [`Client`] holds one connection; [`Client::request`] frames a
//! [`Request`], sends it, and decodes the single framed [`Response`]
//! the daemon replies with. [`Client::send_raw`] ships arbitrary bytes
//! for hostile-input probes — the daemon must answer a malformed frame
//! with a typed error frame, never die.

use crate::protocol::{encode_frame, Request, Response, WireError, MAX_PAYLOAD};
use crate::server::Listen;
use std::io::{Read, Write};
use std::path::Path;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The daemon's reply was not a well-formed frame.
    Wire(WireError),
    /// The daemon closed the connection without replying.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "bad reply frame: {e}"),
            ClientError::ConnectionClosed => write!(f, "connection closed before reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Stream {
    fn as_read(&mut self) -> &mut dyn Read {
        match self {
            Stream::Unix(s) => s,
            Stream::Tcp(s) => s,
        }
    }

    fn as_write(&mut self) -> &mut dyn Write {
        match self {
            Stream::Unix(s) => s,
            Stream::Tcp(s) => s,
        }
    }
}

/// A blocking connection to a running `sbp-serve` daemon.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a unix-domain socket.
    pub fn connect_unix(path: &Path) -> Result<Self, ClientError> {
        Ok(Client {
            stream: Stream::Unix(std::os::unix::net::UnixStream::connect(path)?),
        })
    }

    /// Connects to a TCP address like `127.0.0.1:7171`.
    pub fn connect_tcp(addr: &str) -> Result<Self, ClientError> {
        Ok(Client {
            stream: Stream::Tcp(std::net::TcpStream::connect(addr)?),
        })
    }

    /// Connects to wherever `listen` points.
    pub fn connect(listen: &Listen) -> Result<Self, ClientError> {
        match listen {
            Listen::Unix(path) => Self::connect_unix(path),
            Listen::Tcp(addr) => Self::connect_tcp(addr),
        }
    }

    /// Sends one request and reads the daemon's framed reply.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = encode_frame(&req.encode());
        self.stream.as_write().write_all(&frame)?;
        self.stream.as_write().flush()?;
        self.read_response()
    }

    /// Ships raw bytes down the socket verbatim (no framing added) and
    /// reads whatever framed reply comes back. For protocol probes.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<Response, ClientError> {
        self.stream.as_write().write_all(bytes)?;
        self.stream.as_write().flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let stream = self.stream.as_read();
        let mut header = [0u8; 6];
        let mut got = 0usize;
        while got < header.len() {
            match stream.read(&mut header[got..]) {
                Ok(0) => return Err(ClientError::ConnectionClosed),
                Ok(k) => got += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        if header[..2] != crate::protocol::FRAME_MAGIC {
            return Err(ClientError::Wire(WireError::BadMagic));
        }
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(ClientError::Wire(WireError::PayloadTooLarge {
                declared: len as u64,
            }));
        }
        let mut rest = vec![0u8; len + 8];
        stream.read_exact(&mut rest).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ClientError::ConnectionClosed
            } else {
                ClientError::Io(e)
            }
        })?;
        let mut frame = header.to_vec();
        frame.extend_from_slice(&rest);
        let (payload, _) = crate::protocol::decode_frame(&frame).map_err(ClientError::Wire)?;
        Response::decode(payload).map_err(ClientError::Wire)
    }
}

//! Vose alias tables for O(1) weighted discrete sampling.
//!
//! The generator draws millions of edge endpoints proportionally to vertex
//! degrees inside each community; an alias table turns each draw into two
//! uniforms and one comparison.

use rand::Rng;

/// An alias table over `n` outcomes with fixed non-negative weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the "home" outcome in each column.
    prob: Vec<f64>,
    /// Fallback outcome of each column.
    alias: Vec<u32>,
    total: f64,
}

impl AliasTable {
    /// Builds the table from raw weights. Returns `None` if every weight is
    /// zero or the slice is empty (nothing can be sampled).
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        if n == 0 || total <= 0.0 {
            return None;
        }
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "alias weights must be finite and non-negative"
        );
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Some(AliasTable { prob, alias, total })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no outcomes.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the original weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let n = self.prob.len();
        let col = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[col] {
            col as u32
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_zero_weight_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 2.0, 0.0]).unwrap();
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..5000 {
            let s = t.sample(&mut r);
            assert!(s == 0 || s == 2, "sampled zero-weight outcome {s}");
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[t.sample(&mut r) as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "outcome {i}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        let t = AliasTable::new(&[1e-9, 1.0]).unwrap();
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| t.sample(&mut r) == 1).count();
        assert!(hits > 9_900);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        AliasTable::new(&[1.0, -0.5]);
    }
}

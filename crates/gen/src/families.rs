//! Named dataset constructors for every workload table in the paper.
//!
//! Each constructor takes a `scale` in `(0, 1]` multiplying the paper's
//! vertex count, so the full experiment suite can run on a laptop while the
//! structural regime (vertices per community, average degree, truncation,
//! duplication) matches the paper. `scale = 1.0` reproduces the published
//! sizes exactly.

use crate::dcsbm::{generate, DegreeConfig, PlantedGraph, SbmParams};
use crate::dist::TruncatedPowerLaw;

/// Paper vertex count of the Table III parameter-study graphs.
pub const PARAM_STUDY_BASE_VERTICES: usize = 22_599;

/// Graph-Challenge graph difficulty (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Difficulty {
    /// Low block overlap, low block-size variation.
    Easy,
    /// High block overlap, high block-size variation.
    Hard,
}

/// Builds a Graph-Challenge-style graph (Table II): truncated duplicated
/// degree sequence, community count scaling like the Challenge's
/// (`C ≈ 2.2·V^0.28`, matching 32/44/71 at 20k/50k/200k vertices).
pub fn graph_challenge(num_vertices: usize, difficulty: Difficulty, seed: u64) -> PlantedGraph {
    assert!(num_vertices >= 16, "graph too small to be meaningful");
    let c = (2.2 * (num_vertices as f64).powf(0.28)).round() as usize;
    let (intra, alpha) = match difficulty {
        Difficulty::Easy => (0.85, 8.0),
        Difficulty::Hard => (2.0 / 3.0, 2.0),
    };
    // The Challenge graphs average ≈23.7 out-edges per vertex.
    let gamma = TruncatedPowerLaw::solve_gamma_for_mean(23.7, 10, 100);
    generate(&SbmParams {
        num_vertices,
        num_communities: c.clamp(4, num_vertices / 4),
        intra_fraction: intra,
        dirichlet_alpha: alpha,
        degrees: DegreeConfig {
            gamma,
            min_degree: 10,
            max_degree: 100,
            duplicated: true,
        },
        seed,
    })
}

/// One cell of the Table III exhaustive parameter search: three boolean
/// generator knobs × base community count (33 or 150).
///
/// The `id()` naming follows the paper: `TTF150` means truncate-min = T,
/// truncate-max = T, duplicated = F, 150 base communities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamStudySpec {
    /// Truncate the degree distribution from below at 10 (the knob whose
    /// absence makes graphs sparse and breaks DC-SBP, §V-B).
    pub truncate_min: bool,
    /// Truncate the degree distribution from above at 100 (vs. `V/10`).
    pub truncate_max: bool,
    /// Duplicate the degree sequence between in- and out-degrees.
    pub duplicated: bool,
    /// Paper-scale community count: 33 or 150.
    pub communities_base: u32,
}

impl ParamStudySpec {
    /// All 16 Table III configurations, in the paper's row order
    /// (TTT33, TTT150, TTF33, …, FFF150).
    pub fn all() -> Vec<ParamStudySpec> {
        let mut specs = Vec::with_capacity(16);
        for &truncate_min in &[true, false] {
            for &truncate_max in &[true, false] {
                for &duplicated in &[true, false] {
                    for &communities_base in &[33u32, 150u32] {
                        specs.push(ParamStudySpec {
                            truncate_min,
                            truncate_max,
                            duplicated,
                            communities_base,
                        });
                    }
                }
            }
        }
        specs
    }

    /// Paper-style identifier, e.g. `TTT33` or `FTF150`.
    pub fn id(&self) -> String {
        let b = |x: bool| if x { 'T' } else { 'F' };
        format!(
            "{}{}{}{}",
            b(self.truncate_min),
            b(self.truncate_max),
            b(self.duplicated),
            self.communities_base
        )
    }
}

/// Builds one Table III parameter-study graph at the given scale.
///
/// Community counts scale linearly with the vertex count so the
/// vertices-per-community regime matches the paper's (≈685 for the
/// 33-community graphs, ≈150 for the 150-community ones).
pub fn param_study(spec: ParamStudySpec, scale: f64, seed: u64) -> PlantedGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let v = ((PARAM_STUDY_BASE_VERTICES as f64 * scale).round() as usize).max(64);
    let c = ((spec.communities_base as f64 * scale).round() as usize).max(3);
    let min_degree = if spec.truncate_min { 10 } else { 1 };
    let max_degree = if spec.truncate_max {
        100
    } else {
        (v as i64 / 10).max(min_degree + 1)
    };
    // Average out-degree regimes measured from Table III: ≈40 for
    // truncated-min graphs, ≈3.7 for min-degree-1 graphs. With an
    // unduplicated sequence the drawn value is the *total* degree, so the
    // target doubles.
    let target_out = if spec.truncate_min { 40.0 } else { 3.7 };
    let target_drawn = if spec.duplicated {
        target_out
    } else {
        2.0 * target_out
    };
    let gamma = TruncatedPowerLaw::solve_gamma_for_mean(target_drawn, min_degree, max_degree);
    generate(&SbmParams {
        num_vertices: v,
        num_communities: c.min(v / 4),
        intra_fraction: 2.0 / 3.0,
        dirichlet_alpha: 2.0,
        degrees: DegreeConfig {
            gamma,
            min_degree,
            max_degree,
            duplicated: spec.duplicated,
        },
        seed,
    })
}

/// The Table IV strong-scaling graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalingGraph {
    /// 1 051 218 vertices, 11 056 834 edges, 1075 communities.
    M1,
    /// 2 103 554 vertices, 23 987 218 edges, 1521 communities.
    M2,
    /// 4 221 264 vertices, 53 175 026 edges, 2151 communities.
    M4,
}

impl ScalingGraph {
    /// Paper identifier (`1M`, `2M`, `4M`).
    pub fn id(&self) -> &'static str {
        match self {
            ScalingGraph::M1 => "1M",
            ScalingGraph::M2 => "2M",
            ScalingGraph::M4 => "4M",
        }
    }

    /// Paper vertex count.
    pub fn base_vertices(&self) -> usize {
        match self {
            ScalingGraph::M1 => 1_051_218,
            ScalingGraph::M2 => 2_103_554,
            ScalingGraph::M4 => 4_221_264,
        }
    }

    /// Paper community count.
    pub fn base_communities(&self) -> usize {
        match self {
            ScalingGraph::M1 => 1075,
            ScalingGraph::M2 => 1521,
            ScalingGraph::M4 => 2151,
        }
    }

    /// Paper average directed edges per vertex (`E/V`).
    pub fn avg_out_degree(&self) -> f64 {
        match self {
            ScalingGraph::M1 => 10.52,
            ScalingGraph::M2 => 11.40,
            ScalingGraph::M4 => 12.60,
        }
    }

    /// All three sizes, smallest first.
    pub fn all() -> [ScalingGraph; 3] {
        [ScalingGraph::M1, ScalingGraph::M2, ScalingGraph::M4]
    }
}

/// Builds a Table IV scaling graph at the given scale. The community count
/// scales like `√scale` so that `C ≈ √V` is preserved (the paper's ratio).
pub fn scaling_graph(which: ScalingGraph, scale: f64, seed: u64) -> PlantedGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let v = ((which.base_vertices() as f64 * scale).round() as usize).max(256);
    let c = ((which.base_communities() as f64 * scale.sqrt()).round() as usize).clamp(8, v / 8);
    let max_degree = (v as i64 / 20).max(4);
    let target_drawn = 2.0 * which.avg_out_degree();
    let gamma = TruncatedPowerLaw::solve_gamma_for_mean(target_drawn, 1, max_degree);
    generate(&SbmParams {
        num_vertices: v,
        num_communities: c,
        intra_fraction: 2.0 / 3.0,
        dirichlet_alpha: 2.0,
        degrees: DegreeConfig {
            gamma,
            min_degree: 1,
            max_degree,
            duplicated: false,
        },
        seed,
    })
}

/// Offline stand-ins for the five SNAP/SuiteSparse graphs of Table V.
///
/// The real files can be used instead via `sbp_graph::io::load_graph`; these
/// stand-ins preserve each graph's size ratio, average degree, and degree-
/// distribution regime so the Fig. 6 comparison exercises the same sparsity
/// conditions (see DESIGN.md §3 for the substitution rationale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RealWorldStandIn {
    /// Amazon co-purchasing graph: 403 394 V, 3 387 388 E.
    Amazon,
    /// US patents citation graph: 456 626 V, 3 774 768 E.
    Patents,
    /// Berkeley–Stanford web graph: 685 230 V, 7 600 595 E.
    BerkStan,
    /// Twitter social graph: 456 626 V, 14 855 842 E (densest).
    Twitter,
    /// LiveJournal social graph: 4 847 571 V, 68 993 773 E (largest).
    LiveJournal,
}

impl RealWorldStandIn {
    /// Paper identifier.
    pub fn id(&self) -> &'static str {
        match self {
            RealWorldStandIn::Amazon => "Amazon",
            RealWorldStandIn::Patents => "Patents",
            RealWorldStandIn::BerkStan => "Berk-Stan",
            RealWorldStandIn::Twitter => "Twitter",
            RealWorldStandIn::LiveJournal => "LiveJournal",
        }
    }

    /// Paper vertex count.
    pub fn base_vertices(&self) -> usize {
        match self {
            RealWorldStandIn::Amazon => 403_394,
            RealWorldStandIn::Patents => 456_626,
            RealWorldStandIn::BerkStan => 685_230,
            RealWorldStandIn::Twitter => 456_626,
            RealWorldStandIn::LiveJournal => 4_847_571,
        }
    }

    /// Paper `E/V` ratio — the axis the paper identifies as governing
    /// DC-SBP's usable rank count (§V-E: Twitter, with the highest average
    /// degree, is the only graph where DC-SBP scales to 16 subgraphs).
    pub fn avg_out_degree(&self) -> f64 {
        match self {
            RealWorldStandIn::Amazon => 8.40,
            RealWorldStandIn::Patents => 8.27,
            RealWorldStandIn::BerkStan => 11.09,
            RealWorldStandIn::Twitter => 32.53,
            RealWorldStandIn::LiveJournal => 14.23,
        }
    }

    /// All five, in the paper's Table V order.
    pub fn all() -> [RealWorldStandIn; 5] {
        [
            RealWorldStandIn::Amazon,
            RealWorldStandIn::Patents,
            RealWorldStandIn::BerkStan,
            RealWorldStandIn::Twitter,
            RealWorldStandIn::LiveJournal,
        ]
    }
}

/// Builds a Table V stand-in at the given scale.
pub fn realworld(which: RealWorldStandIn, scale: f64, seed: u64) -> PlantedGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let v = ((which.base_vertices() as f64 * scale).round() as usize).max(256);
    // Community density and mixing profiles per graph family.
    let (members_per_comm, intra, max_div) = match which {
        RealWorldStandIn::Amazon => (60.0, 0.75, 50),
        RealWorldStandIn::Patents => (80.0, 0.60, 50),
        RealWorldStandIn::BerkStan => (100.0, 0.70, 10),
        RealWorldStandIn::Twitter => (150.0, 0.65, 20),
        RealWorldStandIn::LiveJournal => (90.0, 0.70, 30),
    };
    let c = ((v as f64 / members_per_comm).round() as usize).clamp(4, v / 8);
    let max_degree = (v as i64 / max_div).max(4);
    let target_drawn = 2.0 * which.avg_out_degree();
    let gamma = TruncatedPowerLaw::solve_gamma_for_mean(target_drawn, 1, max_degree);
    generate(&SbmParams {
        num_vertices: v,
        num_communities: c,
        intra_fraction: intra,
        dirichlet_alpha: 2.0,
        degrees: DegreeConfig {
            gamma,
            min_degree: 1,
            max_degree,
            duplicated: false,
        },
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_study_has_sixteen_unique_ids() {
        let specs = ParamStudySpec::all();
        assert_eq!(specs.len(), 16);
        let mut ids: Vec<String> = specs.iter().map(|s| s.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
        assert!(ids.contains(&"TTT33".to_string()));
        assert!(ids.contains(&"FFF150".to_string()));
    }

    #[test]
    fn param_study_truncated_graphs_are_denser() {
        let scale = 0.05;
        let ttt = param_study(
            ParamStudySpec {
                truncate_min: true,
                truncate_max: true,
                duplicated: true,
                communities_base: 33,
            },
            scale,
            7,
        );
        let fff = param_study(
            ParamStudySpec {
                truncate_min: false,
                truncate_max: false,
                duplicated: false,
                communities_base: 33,
            },
            scale,
            7,
        );
        let density = |g: &crate::PlantedGraph| {
            g.graph.total_edge_weight() as f64 / g.graph.num_vertices() as f64
        };
        assert!(
            density(&ttt) > 5.0 * density(&fff),
            "TTT {} vs FFF {}",
            density(&ttt),
            density(&fff)
        );
    }

    #[test]
    fn param_study_min_degree_respected() {
        let g = param_study(
            ParamStudySpec {
                truncate_min: true,
                truncate_max: true,
                duplicated: true,
                communities_base: 33,
            },
            0.03,
            1,
        );
        for v in 0..g.graph.num_vertices() as u32 {
            assert!(g.graph.out_degree(v) >= 10);
        }
    }

    #[test]
    fn graph_challenge_difficulty_affects_mixing() {
        let intra_frac = |d: Difficulty| {
            let g = graph_challenge(1500, d, 3);
            let mut intra = 0i64;
            let mut total = 0i64;
            for (s, t, w) in g.graph.arcs() {
                if g.ground_truth[s as usize] == g.ground_truth[t as usize] {
                    intra += w;
                }
                total += w;
            }
            intra as f64 / total as f64
        };
        assert!(intra_frac(Difficulty::Easy) > intra_frac(Difficulty::Hard) + 0.1);
    }

    #[test]
    fn scaling_graphs_ordered_by_size() {
        let scale = 0.002;
        let sizes: Vec<usize> = ScalingGraph::all()
            .iter()
            .map(|&w| scaling_graph(w, scale, 5).graph.num_vertices())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    }

    #[test]
    fn scaling_graph_average_degree_near_target() {
        let g = scaling_graph(ScalingGraph::M1, 0.01, 11);
        let avg = g.graph.total_edge_weight() as f64 / g.graph.num_vertices() as f64;
        assert!(
            (avg - 10.52).abs() < 3.0,
            "average out-degree {avg}, target 10.52"
        );
    }

    #[test]
    fn twitter_standin_is_densest() {
        let scale = 0.01;
        let avg = |w: RealWorldStandIn| {
            let g = realworld(w, scale, 9);
            g.graph.total_edge_weight() as f64 / g.graph.num_vertices() as f64
        };
        let twitter = avg(RealWorldStandIn::Twitter);
        for other in [
            RealWorldStandIn::Amazon,
            RealWorldStandIn::Patents,
            RealWorldStandIn::BerkStan,
            RealWorldStandIn::LiveJournal,
        ] {
            assert!(twitter > avg(other), "{:?} denser than Twitter", other);
        }
    }

    #[test]
    fn realworld_ids_match_paper() {
        let ids: Vec<&str> = RealWorldStandIn::all().iter().map(|w| w.id()).collect();
        assert_eq!(
            ids,
            vec!["Amazon", "Patents", "Berk-Stan", "Twitter", "LiveJournal"]
        );
    }

    #[test]
    fn deterministic_families() {
        let a = param_study(ParamStudySpec::all()[0], 0.02, 123);
        let b = param_study(ParamStudySpec::all()[0], 0.02, 123);
        assert_eq!(a.graph, b.graph);
    }
}

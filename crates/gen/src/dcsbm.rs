//! The planted-partition degree-corrected SBM generator.
//!
//! Mirrors the generation procedure the paper describes (§IV-A): draw
//! community sizes from a symmetric Dirichlet, draw a power-law degree
//! sequence (optionally truncated, optionally duplicated between in- and
//! out-degrees), then place each out-stub either inside its community (with
//! the configured intra-community probability) or in another community
//! chosen proportionally to in-degree mass, with the endpoint inside the
//! target community chosen proportionally to vertex in-degree. Parallel
//! edges merge into weights.

use crate::alias::AliasTable;
use crate::dist::{binomial, dirichlet_symmetric, TruncatedPowerLaw};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbp_graph::{Graph, Vertex, Weight};

/// Degree-sequence configuration (the Table III generator knobs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeConfig {
    /// Power-law exponent γ in `P(k) ∝ k^(-γ)`.
    pub gamma: f64,
    /// Lower truncation. `1` reproduces the un-truncated ("F" in Table III)
    /// setting whose sparsity breaks DC-SBP.
    pub min_degree: i64,
    /// Upper truncation.
    pub max_degree: i64,
    /// If true, the drawn sequence is used for **both** in- and out-degrees
    /// ("degree sequence duplication", §IV-A), which doubles every vertex's
    /// total degree; if false, each drawn total degree is split binomially
    /// between in and out, permitting total degree 1.
    pub duplicated: bool,
}

impl DegreeConfig {
    /// Graph-Challenge-style truncated config (min 10, max 100, duplicated).
    pub fn truncated() -> Self {
        DegreeConfig {
            gamma: 2.1,
            min_degree: 10,
            max_degree: 100,
            duplicated: true,
        }
    }

    /// Web-graph-like config: min degree 1, heavy tail up to `max`.
    pub fn web_like(max_degree: i64) -> Self {
        DegreeConfig {
            gamma: 2.5,
            min_degree: 1,
            max_degree: max_degree.max(1),
            duplicated: false,
        }
    }
}

/// Full generator parameterization.
#[derive(Clone, Debug)]
pub struct SbmParams {
    /// Number of vertices `V`.
    pub num_vertices: usize,
    /// Number of planted communities `C`.
    pub num_communities: usize,
    /// Expected fraction of intra-community edges. The paper's "complex
    /// community structure" graphs use an intra:inter ratio of roughly 2,
    /// i.e. a fraction of 2/3 (§IV-A).
    pub intra_fraction: f64,
    /// Symmetric Dirichlet concentration for community sizes; the paper
    /// uses α = 2 ("high block size variation").
    pub dirichlet_alpha: f64,
    /// Degree-sequence knobs.
    pub degrees: DegreeConfig,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
}

impl SbmParams {
    /// A small, easily-recovered default useful in tests and examples.
    pub fn example() -> Self {
        SbmParams {
            num_vertices: 300,
            num_communities: 4,
            intra_fraction: 0.8,
            dirichlet_alpha: 10.0,
            degrees: DegreeConfig {
                gamma: 2.1,
                min_degree: 5,
                max_degree: 30,
                duplicated: true,
            },
            seed: 42,
        }
    }
}

/// A generated graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Planted community of every vertex (labels `0..num_communities`;
    /// communities that ended up empty keep their label but no members).
    pub ground_truth: Vec<u32>,
    /// The parameters that produced this graph.
    pub params: SbmParams,
}

impl PlantedGraph {
    /// Number of non-empty planted communities.
    pub fn num_nonempty_communities(&self) -> usize {
        let mut seen = vec![false; self.params.num_communities];
        for &c in &self.ground_truth {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// Generates a planted-partition DC-SBM graph.
///
/// # Panics
/// Panics on nonsensical parameters (zero vertices/communities, intra
/// fraction outside `[0, 1]`, more communities than vertices).
pub fn generate(params: &SbmParams) -> PlantedGraph {
    let v = params.num_vertices;
    let c = params.num_communities;
    assert!(v > 0, "need at least one vertex");
    assert!(c > 0, "need at least one community");
    assert!(c <= v, "more communities ({c}) than vertices ({v})");
    assert!(
        (0.0..=1.0).contains(&params.intra_fraction),
        "intra fraction must be in [0,1]"
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // 1. Community sizes ~ Dirichlet(α); vertices assigned i.i.d. to the
    //    resulting weights, then each community is guaranteed at least one
    //    member by stealing from the largest.
    let weights = dirichlet_symmetric(&mut rng, params.dirichlet_alpha, c);
    let community_table =
        AliasTable::new(&weights).expect("dirichlet weights are positive and sum to 1");
    let mut assignment: Vec<u32> = (0..v).map(|_| community_table.sample(&mut rng)).collect();
    ensure_all_communities_nonempty(&mut assignment, c, &mut rng);

    // 2. Degree sequences.
    let dc = &params.degrees;
    let max_degree = dc.max_degree.min(v as i64).max(dc.min_degree);
    let pl = TruncatedPowerLaw::new(dc.gamma, dc.min_degree, max_degree);
    let mut d_out: Vec<i64> = Vec::with_capacity(v);
    let mut d_in: Vec<i64> = Vec::with_capacity(v);
    for _ in 0..v {
        let k = pl.sample(&mut rng);
        if dc.duplicated {
            d_out.push(k);
            d_in.push(k);
        } else {
            let out = binomial(&mut rng, k as u64, 0.5) as i64;
            d_out.push(out);
            d_in.push(k - out);
        }
    }

    // 3. Per-community in-degree alias tables and community in-mass.
    let mut members: Vec<Vec<Vertex>> = vec![Vec::new(); c];
    for (vtx, &comm) in assignment.iter().enumerate() {
        members[comm as usize].push(vtx as Vertex);
    }
    let mut in_tables: Vec<Option<AliasTable>> = Vec::with_capacity(c);
    let mut in_mass: Vec<f64> = Vec::with_capacity(c);
    for mem in &members {
        let w: Vec<f64> = mem.iter().map(|&m| d_in[m as usize] as f64).collect();
        let table = AliasTable::new(&w);
        in_mass.push(table.as_ref().map_or(0.0, |t| t.total_weight()));
        in_tables.push(table);
    }
    let total_in_mass: f64 = in_mass.iter().sum();

    // 4. Stub placement.
    let mut edges: Vec<(Vertex, Vertex, Weight)> =
        Vec::with_capacity(d_out.iter().sum::<i64>() as usize);
    for src in 0..v as Vertex {
        let home = assignment[src as usize] as usize;
        for _ in 0..d_out[src as usize] {
            let target_comm = pick_target_community(
                &mut rng,
                home,
                params.intra_fraction,
                &in_mass,
                total_in_mass,
            );
            let Some(target_comm) = target_comm else {
                continue; // no community anywhere has in-degree mass
            };
            let table = in_tables[target_comm]
                .as_ref()
                .expect("picked community has positive in-mass");
            let dst = members[target_comm][table.sample(&mut rng) as usize];
            edges.push((src, dst, 1));
        }
    }

    PlantedGraph {
        graph: Graph::from_edges(v, edges),
        ground_truth: assignment,
        params: params.clone(),
    }
}

/// Chooses the community an out-stub lands in: the home community with
/// probability `intra_fraction` (when it has in-mass), otherwise another
/// community proportionally to in-degree mass. Returns `None` when no
/// community has any in-degree mass.
fn pick_target_community<R: Rng + ?Sized>(
    rng: &mut R,
    home: usize,
    intra_fraction: f64,
    in_mass: &[f64],
    total_in_mass: f64,
) -> Option<usize> {
    if total_in_mass <= 0.0 {
        return None;
    }
    let home_mass = in_mass[home];
    let other_mass = total_in_mass - home_mass;
    let go_home = home_mass > 0.0 && (other_mass <= 0.0 || rng.random::<f64>() < intra_fraction);
    if go_home {
        return Some(home);
    }
    if other_mass <= 0.0 {
        return Some(home); // home must have the mass then
    }
    // Sample a non-home community proportionally to in-mass by inverse CDF.
    let mut u = rng.random::<f64>() * other_mass;
    for (comm, &mass) in in_mass.iter().enumerate() {
        if comm == home {
            continue;
        }
        if u < mass {
            return Some(comm);
        }
        u -= mass;
    }
    // Floating-point tail: return the last non-home community with mass.
    in_mass
        .iter()
        .enumerate()
        .filter(|&(comm, &m)| comm != home && m > 0.0)
        .map(|(comm, _)| comm)
        .next_back()
}

fn ensure_all_communities_nonempty<R: Rng + ?Sized>(assignment: &mut [u32], c: usize, rng: &mut R) {
    let mut counts = vec![0usize; c];
    for &a in assignment.iter() {
        counts[a as usize] += 1;
    }
    for comm in 0..c {
        while counts[comm] == 0 {
            // Steal a random vertex from a community with >1 members.
            let victim = rng.random_range(0..assignment.len());
            let old = assignment[victim] as usize;
            if counts[old] > 1 {
                assignment[victim] = comm as u32;
                counts[old] -= 1;
                counts[comm] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let p = SbmParams::example();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn different_seeds_differ() {
        let p = SbmParams::example();
        let mut p2 = p.clone();
        p2.seed = 43;
        assert_ne!(generate(&p).graph, generate(&p2).graph);
    }

    #[test]
    fn every_community_nonempty() {
        let mut p = SbmParams::example();
        p.num_communities = 40;
        p.num_vertices = 120;
        let g = generate(&p);
        assert_eq!(g.num_nonempty_communities(), 40);
    }

    #[test]
    fn edge_count_tracks_degree_sequence() {
        let p = SbmParams::example();
        let g = generate(&p);
        // Duplicated degrees in [5, 30] → total weight in [5V, 30V].
        let e = g.graph.total_edge_weight();
        let v = p.num_vertices as i64;
        assert!(e >= 5 * v && e <= 30 * v, "E = {e} for V = {v}");
    }

    #[test]
    fn intra_fraction_is_respected() {
        let mut p = SbmParams::example();
        p.num_vertices = 2000;
        p.intra_fraction = 2.0 / 3.0;
        let g = generate(&p);
        let mut intra = 0i64;
        let mut total = 0i64;
        for (s, d, w) in g.graph.arcs() {
            if g.ground_truth[s as usize] == g.ground_truth[d as usize] {
                intra += w;
            }
            total += w;
        }
        let frac = intra as f64 / total as f64;
        assert!(
            (frac - 2.0 / 3.0).abs() < 0.05,
            "intra fraction {frac}, expected ~0.667"
        );
    }

    #[test]
    fn duplicated_degrees_have_min_total_twice_min() {
        let mut p = SbmParams::example();
        p.degrees.duplicated = true;
        p.degrees.min_degree = 5;
        let g = generate(&p);
        // Expected degree (out + in) per vertex is >= 2*min in expectation;
        // the generator realizes out-stubs exactly, in-stubs stochastically,
        // so check the generated out-degree floor exactly.
        for vtx in 0..p.num_vertices as u32 {
            assert!(g.graph.out_degree(vtx) >= 5, "vertex {vtx}");
        }
    }

    #[test]
    fn unduplicated_allows_degree_one_vertices() {
        let mut p = SbmParams::example();
        p.num_vertices = 3000;
        p.degrees = DegreeConfig::web_like(300);
        let g = generate(&p);
        let n_deg_le_1 = (0..3000u32)
            .filter(|&vtx| g.graph.out_degree(vtx) + g.graph.in_degree(vtx) <= 2)
            .count();
        // A min-degree-1 power law yields many such vertices.
        assert!(n_deg_le_1 > 100, "only {n_deg_le_1} near-isolated vertices");
    }

    #[test]
    fn single_community_graph() {
        let mut p = SbmParams::example();
        p.num_communities = 1;
        p.num_vertices = 50;
        let g = generate(&p);
        assert!(g.ground_truth.iter().all(|&c| c == 0));
        assert!(g.graph.total_edge_weight() > 0);
    }

    #[test]
    #[should_panic(expected = "more communities")]
    fn too_many_communities_panics() {
        let mut p = SbmParams::example();
        p.num_communities = p.num_vertices + 1;
        generate(&p);
    }

    #[test]
    fn size_variation_follows_alpha() {
        let sizes = |alpha: f64| {
            let mut p = SbmParams::example();
            p.num_vertices = 3000;
            p.num_communities = 10;
            p.dirichlet_alpha = alpha;
            let g = generate(&p);
            let mut counts = [0usize; 10];
            for &c in &g.ground_truth {
                counts[c as usize] += 1;
            }
            let mean = 300.0;
            counts.iter().map(|&c| (c as f64 - mean).abs()).sum::<f64>() / 10.0
        };
        // Low alpha → high size variation.
        assert!(sizes(0.5) > sizes(50.0));
    }
}

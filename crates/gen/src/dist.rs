//! Probability distributions used by the generator.
//!
//! Implemented from first principles on top of `rand`'s uniform source so
//! that the workspace does not depend on `rand_distr`:
//!
//! * standard normal — Marsaglia polar method;
//! * gamma — Marsaglia–Tsang squeeze (with the α<1 boost);
//! * Dirichlet — normalized gamma draws;
//! * discrete truncated power law — inverse-CDF with a precomputed table;
//! * binomial — direct Bernoulli summation (degrees are small enough that
//!   O(n) per draw is cheaper than setting up an inversion table).

use rand::Rng;

/// Draws a standard normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws from Gamma(shape, 1) using Marsaglia–Tsang (2000).
///
/// # Panics
/// Panics if `shape <= 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws a probability vector from Dirichlet(α, …, α) of dimension `k`.
///
/// # Panics
/// Panics if `k == 0` or `alpha <= 0`.
pub fn dirichlet_symmetric<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet dimension must be positive");
    let draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Astronomically unlikely; fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    draws.into_iter().map(|g| g / sum).collect()
}

/// Draws from Binomial(n, p) by direct Bernoulli summation.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    (0..n).filter(|_| rng.random::<f64>() < p).count() as u64
}

/// A discrete truncated power law `P(k) ∝ k^(-γ)` on `[min_k, max_k]`,
/// sampled by inverse CDF over a precomputed cumulative table.
///
/// This reproduces graph-tool's `power_law` degree sampler with truncation,
/// the knob the paper's Table III study varies (§IV-A).
#[derive(Clone, Debug)]
pub struct TruncatedPowerLaw {
    min_k: i64,
    /// Cumulative probabilities; `cdf[i]` covers `min_k + i`.
    cdf: Vec<f64>,
    mean: f64,
}

impl TruncatedPowerLaw {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `min_k < 1` or `max_k < min_k`.
    pub fn new(gamma: f64, min_k: i64, max_k: i64) -> Self {
        assert!(min_k >= 1, "power-law support must start at >= 1");
        assert!(max_k >= min_k, "empty power-law support [{min_k}, {max_k}]");
        let len = (max_k - min_k + 1) as usize;
        let mut weights = Vec::with_capacity(len);
        let mut total = 0.0f64;
        for k in min_k..=max_k {
            let w = (k as f64).powf(-gamma);
            total += w;
            weights.push(w);
        }
        let mut cdf = Vec::with_capacity(len);
        let mut acc = 0.0f64;
        let mut mean = 0.0f64;
        for (i, w) in weights.iter().enumerate() {
            acc += w / total;
            cdf.push(acc);
            mean += (min_k + i as i64) as f64 * w / total;
        }
        // Guard against floating point shortfall at the top.
        *cdf.last_mut().expect("non-empty support") = 1.0;
        TruncatedPowerLaw { min_k, cdf, mean }
    }

    /// Exact mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let u: f64 = rng.random::<f64>();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.min_k + idx.min(self.cdf.len() - 1) as i64
    }

    /// Finds the exponent γ such that the truncated power law on
    /// `[min_k, max_k]` has mean `target`, by bisection on γ ∈ [0.2, 8].
    /// The mean is strictly decreasing in γ, so this is well posed; the
    /// target is clamped to the achievable range.
    pub fn solve_gamma_for_mean(target: f64, min_k: i64, max_k: i64) -> f64 {
        let (mut lo, mut hi) = (0.2f64, 8.0f64);
        let mean_at = |g: f64| TruncatedPowerLaw::new(g, min_k, max_k).mean();
        let target = target.clamp(mean_at(hi), mean_at(lo));
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if mean_at(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xED157)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for shape in [0.5, 1.0, 2.0, 5.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_nonpositive_shape() {
        gamma(&mut rng(), 0.0);
    }

    #[test]
    fn dirichlet_sums_to_one_and_varies_with_alpha() {
        let mut r = rng();
        let p = dirichlet_symmetric(&mut r, 2.0, 8);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
        // Higher alpha concentrates near uniform: compare max/min spread.
        let spread = |alpha: f64, r: &mut SmallRng| {
            let mut s = 0.0;
            for _ in 0..50 {
                let p = dirichlet_symmetric(r, alpha, 8);
                let mx = p.iter().cloned().fold(0.0, f64::max);
                let mn = p.iter().cloned().fold(1.0, f64::min);
                s += mx - mn;
            }
            s / 50.0
        };
        let tight = spread(100.0, &mut r);
        let loose = spread(0.5, &mut r);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn binomial_edge_cases_and_mean() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        let n = 5000;
        let mean = (0..n).map(|_| binomial(&mut r, 20, 0.5)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn power_law_respects_truncation() {
        let mut r = rng();
        let pl = TruncatedPowerLaw::new(2.5, 3, 17);
        for _ in 0..2000 {
            let k = pl.sample(&mut r);
            assert!((3..=17).contains(&k));
        }
    }

    #[test]
    fn power_law_empirical_mean_matches_exact() {
        let mut r = rng();
        let pl = TruncatedPowerLaw::new(2.1, 1, 200);
        let n = 50_000;
        let mean = (0..n).map(|_| pl.sample(&mut r)).sum::<i64>() as f64 / n as f64;
        assert!(
            (mean - pl.mean()).abs() < 0.1 * pl.mean(),
            "empirical {mean}, exact {}",
            pl.mean()
        );
    }

    #[test]
    fn power_law_heavier_tail_with_smaller_gamma() {
        let flat = TruncatedPowerLaw::new(1.2, 1, 100);
        let steep = TruncatedPowerLaw::new(3.0, 1, 100);
        assert!(flat.mean() > steep.mean());
    }

    #[test]
    fn degenerate_single_point_support() {
        let mut r = rng();
        let pl = TruncatedPowerLaw::new(2.5, 7, 7);
        assert_eq!(pl.sample(&mut r), 7);
        assert!((pl.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_solver_hits_target_mean() {
        for (target, min_k, max_k) in [(10.5, 1, 500), (2.0, 1, 100), (40.0, 10, 100)] {
            let g = TruncatedPowerLaw::solve_gamma_for_mean(target, min_k, max_k);
            let mean = TruncatedPowerLaw::new(g, min_k, max_k).mean();
            assert!(
                (mean - target).abs() < 0.05 * target,
                "target {target}: got mean {mean} at gamma {g}"
            );
        }
    }

    #[test]
    fn gamma_solver_clamps_unreachable_targets() {
        // Mean cannot drop below min_k.
        let g = TruncatedPowerLaw::solve_gamma_for_mean(0.5, 3, 50);
        let mean = TruncatedPowerLaw::new(g, 3, 50).mean();
        assert!(mean >= 3.0);
    }
}

//! # sbp-gen — synthetic graph generation
//!
//! A from-scratch reimplementation of the degree-corrected stochastic
//! blockmodel generator the paper used (via the `graph-tool` python library)
//! to produce every synthetic dataset in its evaluation:
//!
//! * [`dcsbm::generate`] — the planted-partition DC-SBM generator with the
//!   exact knobs the paper varies: Dirichlet(α) community sizes, truncated
//!   power-law degree sequences, in/out degree-sequence duplication, and a
//!   target intra-community edge fraction;
//! * [`families`] — named constructors for every dataset table:
//!   Graph-Challenge-style graphs (Table II), the 16-graph exhaustive
//!   parameter-search family `TTT33 … FFF150` (Table III), the 1M/2M/4M
//!   scaling graphs (Table IV), and stand-ins for the five SNAP/SuiteSparse
//!   real-world graphs (Table V) for offline runs;
//! * [`dist`] — the probability-distribution toolbox (Dirichlet, gamma,
//!   discrete truncated power law, binomial) implemented directly so the
//!   only external randomness dependency is `rand`'s core RNG;
//! * [`alias`] — Vose alias tables for O(1) weighted sampling of edge
//!   endpoints.
//!
//! All generation is deterministic given a seed.

pub mod alias;
pub mod dcsbm;
pub mod dist;
pub mod families;

pub use dcsbm::{generate, DegreeConfig, PlantedGraph, SbmParams};
pub use families::{
    graph_challenge, param_study, realworld, scaling_graph, Difficulty, ParamStudySpec,
    RealWorldStandIn, ScalingGraph, PARAM_STUDY_BASE_VERTICES,
};

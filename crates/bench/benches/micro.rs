//! Criterion micro-benchmarks for the performance-critical kernels,
//! including the ablations DESIGN.md calls out:
//!
//! * sparse ΔS vs the naive dense rescan (paper §III-A optimization c);
//! * proposal sampling;
//! * merge-phase proposal throughput;
//! * MH vs hybrid vs batch sweeps;
//! * sorted-balanced vs modulo ownership (load balance proxy);
//! * simulated-cluster collective throughput;
//! * blockmodel construction and incremental moves;
//! * SIMD vs scalar kernel A/B, the lntab gather-vs-unrolled strategy
//!   study, and the entropy chunk-size study (PR 10);
//! * synthetic graph generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbp_core::hybrid::{batch_sweep, hybrid_sweep, HybridConfig};
use sbp_core::mcmc::mh_sweep;
use sbp_core::merge::propose_merges;
use sbp_core::naive::DenseBlockmodel;
use sbp_core::propose::propose_for_vertex;
use sbp_core::{Blockmodel, DeltaScratch, StorageKind};
use sbp_dist::{balanced_ownership, modulo_ownership};
use sbp_gen::{param_study, ParamStudySpec};
use sbp_graph::Graph;
use sbp_mpi::{Communicator, CostModel, ThreadCluster};
use std::hint::black_box;
use std::time::Duration;

fn bench_graph() -> (Graph, Vec<u32>, usize) {
    let spec = ParamStudySpec {
        truncate_min: true,
        truncate_max: true,
        duplicated: true,
        communities_base: 33,
    };
    // Scale 0.03 matches the seed-era baseline recorded in
    // BENCH_pr1.json, so before/after rows are directly comparable.
    let pg = param_study(spec, 0.03, 7);
    // A plausible mid-inference state: ~32 blocks from the ground truth
    // labels re-used as a partition.
    let c = pg
        .ground_truth
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    (pg.graph.clone(), pg.ground_truth.clone(), c)
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("edist");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g
}

fn bench_delta(c: &mut Criterion) {
    // Three regimes along the agglomerative trajectory: few blocks (the
    // late-inference endgame, where the adaptive layer selects the flat
    // dense matrix), many (C = V/4), and huge (identity partition, C = V,
    // where Auto's occupancy rule keeps the sparse representation).
    // `adaptive_*` is the production path (Auto storage + DeltaScratch),
    // `sparse_*` forces the sparse representation — canonical sorted
    // lines since PR 4; the same ids were `hashmap_*` in BENCH_pr1.json,
    // which the bench-regression guard maps — through the same scratch
    // kernel, and `dense_naive_*` is the python-reference O(C) rescan
    // baseline. Table VI shows the same crossover at the whole-algorithm
    // level.
    let (graph, truth_assignment, truth_nb) = bench_graph();
    let n = graph.num_vertices();
    let many_nb = (n / 4).max(4);
    let many_assignment: Vec<u32> = (0..n as u32).map(|v| v % many_nb as u32).collect();
    let identity_assignment: Vec<u32> = (0..n as u32).collect();
    let mut group = quick(c);
    for (label, assignment, nb) in [
        ("fewC", truth_assignment, truth_nb),
        ("manyC", many_assignment, many_nb),
        ("hugeC", identity_assignment, n),
    ] {
        let eval_pairs = |bm: &Blockmodel, scratch: &mut DeltaScratch| {
            let mut acc = 0.0;
            for v in (0..n as u32).step_by(37) {
                let to = (bm.block_of(v) + 1) % nb as u32;
                scratch.vertex_move_delta(&graph, bm, v, to);
                acc += scratch.delta_entropy(bm);
            }
            acc
        };
        let auto = Blockmodel::from_assignment(&graph, assignment.clone(), nb);
        group.bench_function(format!("delta_entropy/adaptive_{label}"), |b| {
            let mut scratch = DeltaScratch::new();
            b.iter(|| black_box(eval_pairs(&auto, &mut scratch)))
        });
        let sparse =
            Blockmodel::from_assignment_with(&graph, assignment.clone(), nb, StorageKind::Sparse);
        group.bench_function(format!("delta_entropy/sparse_{label}"), |b| {
            let mut scratch = DeltaScratch::new();
            b.iter(|| black_box(eval_pairs(&sparse, &mut scratch)))
        });
        // Full proposal evaluation (delta + ΔS + Hastings correction) on
        // the production path — the exact per-proposal MCMC kernel.
        group.bench_function(format!("proposal_eval/adaptive_{label}"), |b| {
            let mut scratch = DeltaScratch::new();
            b.iter(|| {
                let mut acc = 0.0;
                for v in (0..n as u32).step_by(37) {
                    let to = (auto.block_of(v) + 1) % nb as u32;
                    scratch.vertex_move_delta(&graph, &auto, v, to);
                    acc += scratch.delta_entropy(&auto);
                    acc += scratch.hastings_correction(&graph, &auto, v);
                }
                black_box(acc)
            })
        });
        let dense = DenseBlockmodel::from_assignment(&graph, assignment, nb);
        group.bench_function(format!("delta_entropy/dense_naive_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for v in (0..n as u32).step_by(37) {
                    let to = (dense.assignment()[v as usize] as usize + 1) % nb;
                    acc += dense.delta_entropy_move(&graph, v, to);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// The thread-spawn tax the persistent pool eliminates, measured
/// directly: dispatching one parallel region (16 chunks at width 4)
/// through the pooled executor vs spawning scoped OS threads per call —
/// the old shim's mechanism. The work itself is trivial so the numbers
/// isolate dispatch cost; multiply by the number of parallel regions per
/// inference run (one per merge phase + one per Hybrid chunk + one per
/// Batch sweep + reductions) for the end-to-end tax.
fn bench_pool_dispatch(c: &mut Criterion) {
    use rayon::prelude::*;
    let mut group = quick(c);
    let items: Vec<u64> = (0..16).collect();
    group.bench_function("pool/region_16x4_pooled", |b| {
        rayon::with_threads(4, || {
            b.iter(|| {
                let out: Vec<u64> = items.par_iter().map(|&x| x + 1).collect();
                black_box(out)
            })
        })
    });
    group.bench_function("pool/region_16x4_scoped_spawn", |b| {
        b.iter(|| {
            // What the pre-pool shim did per call: spawn scoped OS
            // threads, join, concatenate.
            let chunks: Vec<&[u64]> = items.chunks(4).collect();
            let parts: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| scope.spawn(move || c.iter().map(|&x| x + 1).collect::<Vec<u64>>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut out = Vec::with_capacity(items.len());
            for p in parts {
                out.extend(p);
            }
            black_box(out)
        })
    });
    group.finish();
}

fn bench_propose(c: &mut Criterion) {
    let (graph, assignment, nb) = bench_graph();
    let bm = Blockmodel::from_assignment(&graph, assignment, nb);
    let mut group = quick(c);
    group.bench_function("propose/vertex", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0u32;
            for v in (0..graph.num_vertices() as u32).step_by(11) {
                acc ^= propose_for_vertex(&mut rng, &graph, &bm, v).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_merge_phase(c: &mut Criterion) {
    let (graph, _, _) = bench_graph();
    let bm = Blockmodel::identity(&graph);
    let blocks: Vec<u32> = (0..bm.num_blocks() as u32).collect();
    let mut group = quick(c);
    group.bench_function("merge/propose_all_blocks_x10", |b| {
        b.iter(|| black_box(propose_merges(&bm, &blocks, 10, 99)))
    });
    group.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let (graph, assignment, nb) = bench_graph();
    let vertices: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let mut group = quick(c);
    group.bench_function("sweep/metropolis_hastings", |b| {
        b.iter_batched(
            || Blockmodel::from_assignment(&graph, assignment.clone(), nb),
            |mut bm| {
                let mut rng = SmallRng::seed_from_u64(5);
                black_box(mh_sweep(&graph, &mut bm, &vertices, 3.0, &mut rng))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("sweep/hybrid", |b| {
        let cfg = HybridConfig {
            parallel: false,
            ..HybridConfig::default()
        };
        b.iter_batched(
            || Blockmodel::from_assignment(&graph, assignment.clone(), nb),
            |mut bm| black_box(hybrid_sweep(&graph, &mut bm, &vertices, 3.0, &cfg, 5, 0)),
            criterion::BatchSize::LargeInput,
        )
    });
    // The pooled path: chunk evaluation fans out over the persistent
    // workers (results are bit-identical to sweep/hybrid by the
    // determinism contract; only wall time differs). On a single-core
    // box this measures pure pool overhead vs the serial schedule.
    group.bench_function("sweep/hybrid_parallel", |b| {
        let cfg = HybridConfig::default();
        b.iter_batched(
            || Blockmodel::from_assignment(&graph, assignment.clone(), nb),
            |mut bm| black_box(hybrid_sweep(&graph, &mut bm, &vertices, 3.0, &cfg, 5, 0)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("sweep/batch", |b| {
        b.iter_batched(
            || Blockmodel::from_assignment(&graph, assignment.clone(), nb),
            |mut bm| black_box(batch_sweep(&graph, &mut bm, &vertices, 3.0, 5, 0)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_ownership(c: &mut Criterion) {
    let (graph, _, _) = bench_graph();
    let mut group = quick(c);
    for n in [4usize, 64] {
        group.bench_with_input(BenchmarkId::new("ownership/balanced", n), &n, |b, &n| {
            b.iter(|| black_box(balanced_ownership(&graph, n)))
        });
        group.bench_with_input(BenchmarkId::new("ownership/modulo", n), &n, |b, &n| {
            b.iter(|| black_box(modulo_ownership(graph.num_vertices(), n)))
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = quick(c);
    for n in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("allgatherv_1k_u64", n), &n, |b, &n| {
            b.iter(|| {
                ThreadCluster::run(n, CostModel::zero(), |comm| {
                    black_box(comm.allgatherv(vec![comm.rank() as u64; 1024]).len())
                })
            })
        });
    }
    group.finish();
}

fn bench_blockmodel(c: &mut Criterion) {
    let (graph, assignment, nb) = bench_graph();
    let mut group = quick(c);
    group.bench_function("blockmodel/from_assignment", |b| {
        b.iter(|| black_box(Blockmodel::from_assignment(&graph, assignment.clone(), nb)))
    });
    group.bench_function("blockmodel/entropy", |b| {
        let bm = Blockmodel::from_assignment(&graph, assignment.clone(), nb);
        b.iter(|| black_box(bm.entropy()))
    });
    // Sparse-regime rebuild + reduction kernels (identity partition,
    // C = V): the parallel per-line sort-and-fold and the fixed-shape
    // chunked entropy sum — the two full-matrix passes PR 5 parallelized.
    let identity: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let v = graph.num_vertices();
    group.bench_function("blockmodel/from_assignment_hugeC", |b| {
        b.iter(|| black_box(Blockmodel::from_assignment(&graph, identity.clone(), v)))
    });
    group.bench_function("blockmodel/entropy_hugeC", |b| {
        let bm = Blockmodel::from_assignment(&graph, identity.clone(), v);
        b.iter(|| black_box(bm.entropy()))
    });
    group.bench_function("blockmodel/move_vertex_roundtrip", |b| {
        let mut bm = Blockmodel::from_assignment(&graph, assignment.clone(), nb);
        b.iter(|| {
            for v in (0..graph.num_vertices() as u32).step_by(17) {
                let home = bm.block_of(v);
                let away = (home + 1) % nb as u32;
                bm.move_vertex(&graph, v, away);
                bm.move_vertex(&graph, v, home);
            }
        })
    });
    group.finish();
}

/// SIMD vs scalar A/B on the dense-storage kernels PR 10 vectorized,
/// plus the lntab batch-gather strategy study and the entropy
/// chunk-size study. The `simd_*`-suffixed ids run the
/// runtime-dispatched path (which falls back to scalar on non-AVX2
/// hosts, turning each pair into a self-comparison); the `scalar_*`
/// ids force the scalar source of truth. Results are bit-identical by
/// the determinism contract — only wall time may differ.
fn bench_simd(c: &mut Criterion) {
    let (graph, _, _) = bench_graph();
    let n = graph.num_vertices();
    // Force dense storage at C = V/4 (~169): well above the C ≤ 64
    // always-dense band, so the 4-lane kernels cross many blocks per
    // line and the vector path dominates the scalar block fallbacks.
    let nb = (n / 4).max(4);
    let assignment: Vec<u32> = (0..n as u32).map(|v| v % nb as u32).collect();
    let bm = Blockmodel::from_assignment_with(&graph, assignment, nb, StorageKind::Dense);
    let mut group = quick(c);
    group.bench_function("simd/delta_dense_simd", |b| {
        let mut scratch = DeltaScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for v in (0..n as u32).step_by(37) {
                let to = (bm.block_of(v) + 1) % nb as u32;
                scratch.vertex_move_delta(&graph, &bm, v, to);
                acc += scratch.delta_entropy(&bm);
            }
            black_box(acc)
        })
    });
    group.bench_function("simd/delta_dense_scalar", |b| {
        let mut scratch = DeltaScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for v in (0..n as u32).step_by(37) {
                let to = (bm.block_of(v) + 1) % nb as u32;
                scratch.vertex_move_delta(&graph, &bm, v, to);
                acc += scratch.delta_entropy_scalar(&bm);
            }
            black_box(acc)
        })
    });
    group.bench_function("simd/hastings_dense_simd", |b| {
        let mut scratch = DeltaScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for v in (0..n as u32).step_by(37) {
                let to = (bm.block_of(v) + 1) % nb as u32;
                scratch.vertex_move_delta(&graph, &bm, v, to);
                acc += scratch.hastings_correction(&graph, &bm, v);
            }
            black_box(acc)
        })
    });
    group.bench_function("simd/hastings_dense_scalar", |b| {
        let mut scratch = DeltaScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for v in (0..n as u32).step_by(37) {
                let to = (bm.block_of(v) + 1) % nb as u32;
                scratch.vertex_move_delta(&graph, &bm, v, to);
                acc += scratch.hastings_correction_scalar(&graph, &bm, v);
            }
            black_box(acc)
        })
    });
    group.bench_function("simd/entropy_dense_simd", |b| {
        b.iter(|| black_box(bm.entropy()))
    });
    group.bench_function("simd/entropy_dense_scalar", |b| {
        b.iter(|| black_box(bm.entropy_scalar()))
    });
    // lntab batch strategy A/B: one 8-lane gather per 4 cells vs four
    // scalar table loads. Within noise on the recording machine (both
    // standalone and swapped into the kernels); `simd::ln4` keeps the
    // gather for its footprint. Both stay benchable so the choice can
    // be re-audited per host.
    let ws: Vec<i64> = (0..4096).map(|i| (i * 7 + 1) % 60_000).collect();
    let mut out = vec![0.0f64; ws.len()];
    group.bench_function("simd/lntab_gather_4k", |b| {
        b.iter(|| {
            sbp_core::simd::ln_batch_gather(black_box(&ws), &mut out);
            black_box(out[ws.len() - 1])
        })
    });
    group.bench_function("simd/lntab_unrolled_4k", |b| {
        b.iter(|| {
            sbp_core::simd::ln_batch_unrolled(black_box(&ws), &mut out);
            black_box(out[ws.len() - 1])
        })
    });
    // Entropy chunk-size study under SIMD (ROADMAP carry-over from
    // PR 5): the chunk width only changes the parallel split points,
    // never the in-chunk lane order, so these four are free to differ
    // in wall time while the default stays pinned at 64 for fixture
    // stability.
    for chunk in [32usize, 64, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("blockmodel/entropy_chunk", chunk),
            &chunk,
            |b, &chunk| b.iter(|| black_box(bm.entropy_with_chunk(chunk))),
        );
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("generator/param_study_small", |b| {
        let spec = ParamStudySpec {
            truncate_min: true,
            truncate_max: true,
            duplicated: true,
            communities_base: 33,
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(param_study(spec, 0.02, seed).graph.num_arcs())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_delta,
    bench_pool_dispatch,
    bench_propose,
    bench_merge_phase,
    bench_sweeps,
    bench_ownership,
    bench_collectives,
    bench_blockmodel,
    bench_simd,
    bench_generator
);
criterion_main!(benches);

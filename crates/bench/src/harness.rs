//! Shared plumbing: configuration, table rendering, CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Harness configuration, read once from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Global size multiplier on the built-in laptop-scale defaults.
    pub scale: f64,
    /// Largest simulated rank count.
    pub max_ranks: usize,
    /// Master seed.
    pub seed: u64,
}

impl BenchConfig {
    /// Reads `EDIST_SCALE`, `EDIST_MAX_RANKS`, `EDIST_SEED`.
    pub fn from_env() -> Self {
        let parse = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<f64>().ok());
        BenchConfig {
            scale: parse("EDIST_SCALE").unwrap_or(1.0).clamp(0.01, 100.0),
            max_ranks: parse("EDIST_MAX_RANKS").unwrap_or(64.0).max(1.0) as usize,
            seed: parse("EDIST_SEED").unwrap_or(42.0) as u64,
        }
    }

    /// The paper's rank-count sweep {1, 2, 4, …}, capped by `max_ranks`.
    pub fn rank_counts(&self) -> Vec<usize> {
        [1usize, 2, 4, 8, 16, 32, 64]
            .into_iter()
            .filter(|&n| n <= self.max_ranks)
            .collect()
    }
}

/// Directory for CSV artifacts (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV artifact; best-effort (experiments still print to stdout).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut text = String::new();
    let _ = writeln!(text, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(text, "{}", row.join(","));
    }
    let path = out_dir().join(name);
    if let Err(e) = fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// A plain-text table mirroring the paper's layout.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes the CSV artifact.
    pub fn emit(&self, csv_name: &str) {
        println!("{}", self.render());
        let header: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        write_csv(csv_name, &header, &self.rows);
    }
}

/// Formats a float with 2 decimals, or a dash for NaN.
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{x:.2}")
    }
}

/// Formats seconds with 3 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["id", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-id".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("long-id"));
    }

    #[test]
    fn rank_counts_capped() {
        let cfg = BenchConfig {
            scale: 1.0,
            max_ranks: 8,
            seed: 1,
        };
        assert_eq!(cfg.rank_counts(), vec![1, 2, 4, 8]);
    }

    #[test]
    fn f2_handles_nan() {
        assert_eq!(f2(f64::NAN), "-");
        assert_eq!(f2(1.234), "1.23");
    }
}

//! # sbp-bench — the experiment harness
//!
//! One library function per paper artifact (Table VI–VIII, Fig. 2–6), each
//! returning structured rows that the `table*`/`fig*` binaries print as
//! paper-style tables and write as CSV under `target/experiments/`.
//! `all_experiments` runs the whole evaluation in one pass, sharing
//! intermediate results (Fig. 2 reuses the Table VII sweep, Fig. 5 reuses
//! Fig. 4's runs).
//!
//! All experiments honor these environment variables:
//!
//! * `EDIST_SCALE` — global multiplier (default 1.0) on the built-in
//!   laptop-scale graph sizes; raise toward the paper's sizes on a bigger
//!   machine.
//! * `EDIST_MAX_RANKS` — cap on the simulated rank counts (default 64).
//! * `EDIST_SEED` — master seed (default 42).

pub mod experiments;
pub mod harness;

pub use experiments::*;
pub use harness::*;

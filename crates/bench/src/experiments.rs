//! The experiment implementations, one per paper artifact.
//!
//! Graph sizes are laptop-scale by default (see DESIGN.md §3); every size
//! is multiplied by `BenchConfig::scale`, so the paper-scale experiments
//! are `EDIST_SCALE≈10–20` away on a capable machine. Runtimes come from
//! the simulated cluster's virtual clocks (BSP makespan, see `sbp-mpi`);
//! NMI/DL_norm come from `sbp-eval`.

use crate::harness::BenchConfig;
use edist::{Backend, Partitioner, Run};
use sbp_core::hybrid::HybridConfig;
use sbp_core::{McmcStrategy, SbpConfig};
use sbp_eval::nmi;
use sbp_gen::{
    graph_challenge, param_study, realworld, scaling_graph, Difficulty, ParamStudySpec,
    PlantedGraph, RealWorldStandIn, ScalingGraph,
};
use sbp_graph::{island_fraction_round_robin, Graph};
use sbp_mpi::CostModel;

/// The SBP hyper-parameters used throughout the evaluation: the Hybrid-SBP
/// MCMC (the paper's intra-rank algorithm), with rayon disabled because the
/// simulated ranks already saturate the host.
pub fn experiment_sbp_config(seed: u64) -> SbpConfig {
    SbpConfig {
        strategy: McmcStrategy::Hybrid(HybridConfig {
            parallel: false,
            ..HybridConfig::default()
        }),
        seed,
        ..SbpConfig::default()
    }
}

fn interconnect() -> CostModel {
    CostModel::hdr100()
}

/// Every experiment drives inference through the unified `Partitioner`
/// facade: the backend is the only thing that varies between cells.
fn run_backend(graph: &Graph, backend: Backend, seed: u64) -> Run {
    Partitioner::on(graph)
        .backend(backend)
        .config(experiment_sbp_config(seed))
        .cost_model(interconnect())
        .run()
        .expect("experiment configurations are valid")
}

fn edist_backend(ranks: usize) -> Backend {
    Backend::Edist { ranks }
}

fn dcsbp_backend(ranks: usize) -> Backend {
    Backend::DcSbp { ranks }
}

// ---------------------------------------------------------------- Table VI

/// One Table VI row: naive (python-equivalent) vs optimized DC-SBP at 8
/// ranks on a Graph-Challenge-style graph.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Dataset label, e.g. `20k-easy (scaled)`.
    pub graph_id: String,
    /// Vertices / edges of the scaled instance.
    pub vertices: usize,
    /// Total edge weight.
    pub edges: i64,
    /// NMI of the naive engine.
    pub naive_nmi: f64,
    /// Simulated runtime of the naive engine (s).
    pub naive_time: f64,
    /// NMI of the optimized engine.
    pub opt_nmi: f64,
    /// Simulated runtime of the optimized engine (s).
    pub opt_time: f64,
}

/// Regenerates Table VI: the reference-equivalent implementation must
/// match the optimized one on NMI while being far slower.
///
/// The paper compared the authors' optimized C++ translation against the
/// original python DC-SBP. A compiled reimplementation cannot honestly
/// reproduce python's interpretation overhead, so this reproduction
/// isolates the *algorithmic* half of the gap — the §III-A data-structure
/// optimizations (sparse matrix + transpose, sparse deltas, pointer-based
/// merges, hybrid MCMC) against the reference's dense matrix, dense
/// rescans and batch MCMC — on full single-node inference, where the block
/// count starts at `V` and the dense engine's O(C) kernels dominate.
pub fn table6(cfg: &BenchConfig) -> Vec<Table6Row> {
    use sbp_core::naive::naive_sbp;
    let mut rows = Vec::new();
    for (base_v, label) in [(800usize, "20k"), (1300, "50k"), (2000, "200k")] {
        for difficulty in [Difficulty::Easy, Difficulty::Hard] {
            let v = ((base_v as f64) * cfg.scale).round() as usize;
            let suffix = match difficulty {
                Difficulty::Easy => "easy",
                Difficulty::Hard => "hard",
            };
            let graph_id = format!("{label}-{suffix}");
            eprintln!("[table6] {graph_id} (V={v}) ...");
            let pg = graph_challenge(v, difficulty, cfg.seed);

            let naive_cfg = SbpConfig {
                strategy: McmcStrategy::Batch,
                seed: cfg.seed,
                ..SbpConfig::default()
            };
            let t0 = sbp_mpi::thread_cpu_time();
            let naive_res = naive_sbp(&pg.graph, &naive_cfg);
            let naive_time = sbp_mpi::thread_cpu_time() - t0;

            // The optimized engine runs through the unified facade; its
            // `virtual_seconds` is exactly the thread-CPU measurement the
            // naive side uses.
            let opt_res = run_backend(
                &pg.graph,
                Backend::Hybrid(HybridConfig {
                    parallel: false,
                    ..HybridConfig::default()
                }),
                cfg.seed,
            );
            let opt_time = opt_res.virtual_seconds;

            rows.push(Table6Row {
                graph_id,
                vertices: pg.graph.num_vertices(),
                edges: pg.graph.total_edge_weight(),
                naive_nmi: nmi(&naive_res.assignment, &pg.ground_truth),
                naive_time,
                opt_nmi: nmi(&opt_res.assignment, &pg.ground_truth),
                opt_time,
            });
        }
    }
    rows
}

// ------------------------------------------------------ Tables VII & VIII

/// Which distributed algorithm a sweep cell measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Divide-and-conquer SBP (Table VII).
    Dcsbp,
    /// EDiSt (Table VIII).
    Edist,
}

/// One cell of the exhaustive parameter-search sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Table III graph id (`TTT33` … `FFF150`).
    pub graph_id: String,
    /// Simulated rank count.
    pub n_ranks: usize,
    /// NMI against the planted partition.
    pub nmi: f64,
    /// Fraction of vertices islanded by the round-robin distribution at
    /// this rank count (Fig. 2's x-axis).
    pub island_fraction: f64,
    /// Simulated runtime (s).
    pub makespan: f64,
    /// Inferred number of blocks.
    pub num_blocks: usize,
}

/// Default scale of the parameter-study graphs relative to the paper's
/// 22 599 vertices (≈1 130 vertices at 1.0 global scale).
pub const PARAM_STUDY_DEFAULT_SCALE: f64 = 0.05;

/// Runs the 16-graph × rank-count sweep for one algorithm.
pub fn param_sweep(cfg: &BenchConfig, algo: Algo) -> Vec<SweepCell> {
    let scale = PARAM_STUDY_DEFAULT_SCALE * cfg.scale;
    let mut cells = Vec::new();
    for spec in ParamStudySpec::all() {
        let pg = param_study(spec, scale, cfg.seed);
        for &n in &cfg.rank_counts() {
            eprintln!("[{algo:?}] {} n={n} ...", spec.id());
            let island = island_fraction_round_robin(&pg.graph, n).fraction();
            let backend = match algo {
                Algo::Dcsbp => dcsbp_backend(n),
                Algo::Edist => edist_backend(n),
            };
            let run = run_backend(&pg.graph, backend, cfg.seed);
            cells.push(SweepCell {
                graph_id: spec.id(),
                n_ranks: n,
                nmi: nmi(&run.assignment, &pg.ground_truth),
                island_fraction: island,
                makespan: run.virtual_seconds,
                num_blocks: run.num_blocks,
            });
        }
    }
    cells
}

/// Table VII: DC-SBP NMI across the sweep.
pub fn table7(cfg: &BenchConfig) -> Vec<SweepCell> {
    param_sweep(cfg, Algo::Dcsbp)
}

/// Table VIII: EDiSt NMI across the sweep.
pub fn table8(cfg: &BenchConfig) -> Vec<SweepCell> {
    param_sweep(cfg, Algo::Edist)
}

// ---------------------------------------------------------------- Fig. 2

/// Fig. 2 scatter points: island-vertex fraction vs NMI, derived from the
/// Table VII sweep (multi-rank DC-SBP cells only).
pub fn fig2_points(table7_cells: &[SweepCell]) -> Vec<(f64, f64)> {
    table7_cells
        .iter()
        .filter(|c| c.n_ranks > 1)
        .map(|c| (c.island_fraction, c.nmi))
        .collect()
}

// ---------------------------------------------------------------- Fig. 3

/// One Fig. 3 point: EDiSt with several MPI tasks on one node.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// MPI tasks on the (single) node.
    pub tasks: usize,
    /// Simulated runtime (s).
    pub makespan: f64,
    /// Speedup over 1 task.
    pub speedup: f64,
}

/// Default scale of the Table IV scaling graphs (≈5 256-vertex "1M" at 1.0
/// global scale).
pub const SCALING_DEFAULT_SCALE: f64 = 0.005;

/// Regenerates Fig. 3: EDiSt runtime on the 1M-equivalent graph with 1–16
/// MPI tasks per node.
pub fn fig3(cfg: &BenchConfig) -> Vec<Fig3Row> {
    let pg = scaling_graph(
        ScalingGraph::M1,
        SCALING_DEFAULT_SCALE * cfg.scale,
        cfg.seed,
    );
    let mut rows = Vec::new();
    let mut base = f64::NAN;
    for tasks in [1usize, 2, 4, 8, 16] {
        if tasks > cfg.max_ranks {
            break;
        }
        eprintln!("[fig3] tasks={tasks} ...");
        let run = run_backend(&pg.graph, edist_backend(tasks), cfg.seed);
        if tasks == 1 {
            base = run.virtual_seconds;
        }
        rows.push(Fig3Row {
            tasks,
            makespan: run.virtual_seconds,
            speedup: base / run.virtual_seconds,
        });
    }
    rows
}

// ---------------------------------------------------------------- Fig. 4

/// One Fig. 4 point: EDiSt strong scaling on a synthetic scaling graph.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Graph id (`1M`, `2M`, `4M`).
    pub graph_id: String,
    /// Simulated rank count.
    pub n_ranks: usize,
    /// Simulated runtime (s).
    pub makespan: f64,
    /// NMI against the planted partition.
    pub nmi: f64,
    /// Speedup over the 1-rank run of the same graph.
    pub speedup: f64,
}

/// Regenerates Fig. 4: EDiSt runtime and NMI on 1M/2M/4M-equivalents from
/// 1 to 64 ranks.
pub fn fig4(cfg: &BenchConfig) -> Vec<Fig4Row> {
    let scale = SCALING_DEFAULT_SCALE * cfg.scale;
    let mut rows = Vec::new();
    for which in ScalingGraph::all() {
        let pg = scaling_graph(which, scale, cfg.seed);
        let mut base = f64::NAN;
        for &n in &cfg.rank_counts() {
            eprintln!(
                "[fig4] {} (V={}) n={n} ...",
                which.id(),
                pg.graph.num_vertices()
            );
            let run = run_backend(&pg.graph, edist_backend(n), cfg.seed);
            if n == 1 {
                base = run.virtual_seconds;
            }
            rows.push(Fig4Row {
                graph_id: which.id().to_string(),
                n_ranks: n,
                makespan: run.virtual_seconds,
                nmi: nmi(&run.assignment, &pg.ground_truth),
                speedup: base / run.virtual_seconds,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig. 5

/// One Fig. 5 row: best accuracy-preserving DC-SBP vs EDiSt at the
/// largest rank count.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Graph id.
    pub graph_id: String,
    /// Shared-memory (1-rank) runtime (s).
    pub sm_time: f64,
    /// Best DC-SBP runtime among rank counts that kept NMI within 0.05 of
    /// the 1-rank baseline.
    pub dc_time: f64,
    /// The rank count achieving `dc_time`.
    pub dc_ranks: usize,
    /// EDiSt runtime at the largest rank count.
    pub edist_time: f64,
    /// EDiSt rank count.
    pub edist_ranks: usize,
    /// `sm_time / edist_time` (the paper's headline 38×-class number).
    pub speedup_vs_sm: f64,
    /// `dc_time / edist_time` (the paper's 23.8×-class number).
    pub speedup_vs_dc: f64,
}

/// Regenerates Fig. 5 from fresh DC-SBP runs plus the Fig. 4 EDiSt rows
/// (pass `None` to rerun EDiSt too).
pub fn fig5(cfg: &BenchConfig, fig4_rows: Option<&[Fig4Row]>) -> Vec<Fig5Row> {
    let owned_fig4;
    let fig4_rows = match fig4_rows {
        Some(rows) => rows,
        None => {
            owned_fig4 = fig4(cfg);
            &owned_fig4
        }
    };
    let scale = SCALING_DEFAULT_SCALE * cfg.scale;
    let mut out = Vec::new();
    for which in ScalingGraph::all() {
        let pg = scaling_graph(which, scale, cfg.seed);
        // DC-SBP: find the largest rank count that preserves NMI.
        let mut baseline_nmi = f64::NAN;
        let mut best: Option<(usize, f64)> = None;
        for &n in &cfg.rank_counts() {
            eprintln!("[fig5] DC-SBP {} n={n} ...", which.id());
            let run = run_backend(&pg.graph, dcsbp_backend(n), cfg.seed);
            let score = nmi(&run.assignment, &pg.ground_truth);
            if n == 1 {
                baseline_nmi = score;
                best = Some((1, run.virtual_seconds));
            } else if score >= baseline_nmi - 0.05 {
                best = Some((n, run.virtual_seconds));
            }
        }
        let (dc_ranks, dc_time) = best.expect("at least the 1-rank run");
        let ed_rows: Vec<&Fig4Row> = fig4_rows
            .iter()
            .filter(|r| r.graph_id == which.id())
            .collect();
        let sm_time = ed_rows
            .iter()
            .find(|r| r.n_ranks == 1)
            .map_or(f64::NAN, |r| r.makespan);
        let last = ed_rows.last().expect("fig4 covered this graph");
        out.push(Fig5Row {
            graph_id: which.id().to_string(),
            sm_time,
            dc_time,
            dc_ranks,
            edist_time: last.makespan,
            edist_ranks: last.n_ranks,
            speedup_vs_sm: sm_time / last.makespan,
            speedup_vs_dc: dc_time / last.makespan,
        });
    }
    out
}

// ---------------------------------------------------------------- Fig. 6

/// One Fig. 6 point: runtime + normalized DL on a real-world stand-in.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Graph id (`Amazon` … `LiveJournal`).
    pub graph_id: String,
    /// Algorithm measured.
    pub algo: Algo,
    /// Simulated rank count.
    pub n_ranks: usize,
    /// Simulated runtime (s).
    pub makespan: f64,
    /// Normalized description length (lower is better).
    pub dl_norm: f64,
}

/// Per-graph scales for the real-world stand-ins (fractions of the paper's
/// vertex counts), chosen to keep the laptop suite under a few minutes.
pub fn realworld_scale(which: RealWorldStandIn, global: f64) -> f64 {
    let base = match which {
        RealWorldStandIn::Amazon => 0.02,
        RealWorldStandIn::Patents => 0.018,
        RealWorldStandIn::BerkStan => 0.012,
        RealWorldStandIn::Twitter => 0.012,
        RealWorldStandIn::LiveJournal => 0.002,
    };
    (base * global).min(1.0)
}

/// Regenerates Fig. 6: DC-SBP vs EDiSt strong scaling and DL_norm on the
/// five real-world stand-ins, at rank counts {1, 4, 16, 64}.
pub fn fig6(cfg: &BenchConfig) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for which in RealWorldStandIn::all() {
        let pg = realworld(which, realworld_scale(which, cfg.scale), cfg.seed);
        let v = pg.graph.num_vertices();
        for &n in &[1usize, 4, 16, 64] {
            if n > cfg.max_ranks {
                break;
            }
            eprintln!("[fig6] {} (V={v}) n={n} ...", which.id());
            for (algo, backend) in [
                (Algo::Dcsbp, dcsbp_backend(n)),
                (Algo::Edist, edist_backend(n)),
            ] {
                let run = run_backend(&pg.graph, backend, cfg.seed);
                rows.push(Fig6Row {
                    graph_id: which.id().to_string(),
                    algo,
                    n_ranks: n,
                    makespan: run.virtual_seconds,
                    dl_norm: run.dl_norm(&pg.graph),
                });
            }
        }
    }
    rows
}

/// Renders a parameter-search sweep in the paper's layout (rows = graphs,
/// columns = rank counts, cells = NMI) and writes the CSV artifact.
pub fn pivot_sweep(cfg: &BenchConfig, cells: &[SweepCell], title: &str, csv: &str) {
    use crate::harness::{f2, Table};
    let ranks = cfg.rank_counts();
    let mut header: Vec<String> = vec!["Graph".to_string()];
    header.extend(ranks.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &header_refs);
    let mut ids: Vec<String> = cells.iter().map(|c| c.graph_id.clone()).collect();
    ids.dedup();
    for id in ids {
        let mut row = vec![id.clone()];
        for &n in &ranks {
            let cell = cells
                .iter()
                .find(|c| c.graph_id == id && c.n_ranks == n)
                .map_or(f64::NAN, |c| c.nmi);
            row.push(f2(cell));
        }
        t.row(row);
    }
    t.emit(csv);
}

/// Convenience: builds the scaled graph set used in examples/tests.
pub fn demo_graph(cfg: &BenchConfig) -> PlantedGraph {
    param_study(
        ParamStudySpec {
            truncate_min: true,
            truncate_max: true,
            duplicated: true,
            communities_base: 33,
        },
        PARAM_STUDY_DEFAULT_SCALE * cfg.scale,
        cfg.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig {
            scale: 0.5,
            max_ranks: 2,
            seed: 7,
        }
    }

    #[test]
    fn fig2_points_drop_single_rank_cells() {
        let cells = vec![
            SweepCell {
                graph_id: "X".into(),
                n_ranks: 1,
                nmi: 0.9,
                island_fraction: 0.0,
                makespan: 1.0,
                num_blocks: 3,
            },
            SweepCell {
                graph_id: "X".into(),
                n_ranks: 4,
                nmi: 0.5,
                island_fraction: 0.3,
                makespan: 0.5,
                num_blocks: 2,
            },
        ];
        let pts = fig2_points(&cells);
        assert_eq!(pts, vec![(0.3, 0.5)]);
    }

    #[test]
    fn realworld_scales_are_sane() {
        for w in RealWorldStandIn::all() {
            let s = realworld_scale(w, 1.0);
            assert!(s > 0.0 && s <= 1.0);
        }
    }

    #[test]
    fn demo_graph_is_deterministic() {
        let cfg = tiny_cfg();
        assert_eq!(demo_graph(&cfg).graph, demo_graph(&cfg).graph);
    }

    #[test]
    #[ignore = "multi-second smoke test; run explicitly"]
    fn table6_smoke() {
        let rows = table6(&tiny_cfg());
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.naive_nmi >= 0.0 && r.opt_nmi >= 0.0);
            assert!(r.naive_time > 0.0 && r.opt_time > 0.0);
        }
    }
}

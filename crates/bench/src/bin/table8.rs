//! Regenerates Table VIII: EDiSt NMI on the exhaustive parameter-search
//! graphs across rank counts.

use sbp_bench::{pivot_sweep, table8, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let cells = table8(&cfg);
    pivot_sweep(
        &cfg,
        &cells,
        "Table VIII — NMI with EDiSt on exhaustive parameter search graphs",
        "table8.csv",
    );
}

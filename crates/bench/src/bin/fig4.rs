//! Regenerates Fig. 4: EDiSt strong scaling runtime and NMI on the
//! synthetic scaling graphs.

use sbp_bench::{f2, fig4, secs, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = fig4(&cfg);
    let mut t = Table::new(
        "Fig. 4 — EDiSt strong scaling (runtime + NMI) on synthetic graphs",
        &["graph", "ranks", "runtime (s)", "speedup", "NMI"],
    );
    for r in &rows {
        t.row(vec![
            r.graph_id.clone(),
            r.n_ranks.to_string(),
            secs(r.makespan),
            f2(r.speedup),
            f2(r.nmi),
        ]);
    }
    t.emit("fig4.csv");
}

//! Regenerates Table VII: DC-SBP NMI on the exhaustive parameter-search
//! graphs across rank counts.

use sbp_bench::{pivot_sweep, table7, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let cells = table7(&cfg);
    pivot_sweep(
        &cfg,
        &cells,
        "Table VII — NMI with DC-SBP on exhaustive parameter search graphs",
        "table7.csv",
    );
}

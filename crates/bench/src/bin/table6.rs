//! Regenerates Table VI: python-equivalent (naive) vs optimized DC-SBP.

use sbp_bench::{f2, secs, table6, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = table6(&cfg);
    let mut t = Table::new(
        "Table VI — reference-equivalent (dense/batch) vs optimized SBP engine",
        &[
            "Graph",
            "V",
            "E",
            "naive NMI",
            "naive s",
            "opt NMI",
            "opt s",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.graph_id.clone(),
            r.vertices.to_string(),
            r.edges.to_string(),
            f2(r.naive_nmi),
            secs(r.naive_time),
            f2(r.opt_nmi),
            secs(r.opt_time),
            f2(r.naive_time / r.opt_time),
        ]);
    }
    t.emit("table6.csv");
}

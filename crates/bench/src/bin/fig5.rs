//! Regenerates Fig. 5: best accuracy-preserving DC-SBP vs EDiSt runtimes.

use sbp_bench::{f2, fig5, secs, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = fig5(&cfg, None);
    let mut t = Table::new(
        "Fig. 5 — best DC-SBP vs EDiSt runtimes on synthetic scaling graphs",
        &[
            "graph",
            "shared-mem (s)",
            "best DC-SBP (s)",
            "DC ranks",
            "EDiSt (s)",
            "ED ranks",
            "speedup vs SM",
            "speedup vs DC",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.graph_id.clone(),
            secs(r.sm_time),
            secs(r.dc_time),
            r.dc_ranks.to_string(),
            secs(r.edist_time),
            r.edist_ranks.to_string(),
            f2(r.speedup_vs_sm),
            f2(r.speedup_vs_dc),
        ]);
    }
    t.emit("fig5.csv");
}

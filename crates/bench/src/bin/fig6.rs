//! Regenerates Fig. 6: DC-SBP vs EDiSt strong scaling and normalized DL on
//! real-world (stand-in) graphs.

use sbp_bench::{f2, fig6, secs, Algo, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = fig6(&cfg);
    let mut t = Table::new(
        "Fig. 6 — DC-SBP vs EDiSt on real-world graphs (runtime + DL_norm, lower DL_norm is better)",
        &["graph", "algo", "ranks", "runtime (s)", "DL_norm"],
    );
    for r in &rows {
        t.row(vec![
            r.graph_id.clone(),
            match r.algo {
                Algo::Dcsbp => "DC-SBP".into(),
                Algo::Edist => "EDiSt".to_string(),
            },
            r.n_ranks.to_string(),
            secs(r.makespan),
            f2(r.dl_norm),
        ]);
    }
    t.emit("fig6.csv");
}

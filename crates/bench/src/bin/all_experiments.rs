//! Runs the complete evaluation — every table and figure of the paper — in
//! one pass, sharing intermediate sweeps where possible, and prints a
//! paper-vs-measured summary at the end.

use sbp_bench::{
    f2, fig2_points, fig3, fig4, fig5, fig6, param_sweep, pivot_sweep, secs, table6, table8,
    write_csv, Algo, BenchConfig, Table,
};

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!(
        "all_experiments: scale={} max_ranks={} seed={}",
        cfg.scale, cfg.max_ranks, cfg.seed
    );

    // ---- Table VI ----
    let t6 = table6(&cfg);
    let mut t = Table::new(
        "Table VI — reference-equivalent (dense/batch) vs optimized SBP engine",
        &[
            "Graph",
            "V",
            "E",
            "naive NMI",
            "naive s",
            "opt NMI",
            "opt s",
            "speedup",
        ],
    );
    for r in &t6 {
        t.row(vec![
            r.graph_id.clone(),
            r.vertices.to_string(),
            r.edges.to_string(),
            f2(r.naive_nmi),
            secs(r.naive_time),
            f2(r.opt_nmi),
            secs(r.opt_time),
            f2(r.naive_time / r.opt_time),
        ]);
    }
    t.emit("table6.csv");

    // ---- Tables VII/VIII + Fig. 2 (sharing the DC-SBP sweep) ----
    let t7 = param_sweep(&cfg, Algo::Dcsbp);
    pivot_sweep(&cfg, &t7, "Table VII — NMI with DC-SBP", "table7.csv");
    let t8 = table8(&cfg);
    pivot_sweep(&cfg, &t8, "Table VIII — NMI with EDiSt", "table8.csv");

    let pts = fig2_points(&t7);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|(f, s)| vec![format!("{f:.4}"), format!("{s:.4}")])
        .collect();
    write_csv("fig2.csv", &["island_fraction", "nmi"], &rows);
    let (lo, hi): (Vec<f64>, Vec<f64>) = (
        pts.iter()
            .filter(|(f, _)| *f <= 0.1)
            .map(|&(_, s)| s)
            .collect(),
        pts.iter()
            .filter(|(f, _)| *f > 0.3)
            .map(|&(_, s)| s)
            .collect(),
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\n=== Fig. 2 summary ===\nmean DC-SBP NMI at <=10% islands: {:.3} ({} pts)\nmean DC-SBP NMI at  >30% islands: {:.3} ({} pts)",
        mean(&lo),
        lo.len(),
        mean(&hi),
        hi.len()
    );

    // ---- Fig. 3 ----
    let f3 = fig3(&cfg);
    let mut t = Table::new(
        "Fig. 3 — EDiSt MPI tasks per node",
        &["tasks", "runtime (s)", "speedup"],
    );
    for r in &f3 {
        t.row(vec![r.tasks.to_string(), secs(r.makespan), f2(r.speedup)]);
    }
    t.emit("fig3.csv");

    // ---- Fig. 4 + Fig. 5 (sharing the EDiSt scaling runs) ----
    let f4 = fig4(&cfg);
    let mut t = Table::new(
        "Fig. 4 — EDiSt strong scaling on synthetic graphs",
        &["graph", "ranks", "runtime (s)", "speedup", "NMI"],
    );
    for r in &f4 {
        t.row(vec![
            r.graph_id.clone(),
            r.n_ranks.to_string(),
            secs(r.makespan),
            f2(r.speedup),
            f2(r.nmi),
        ]);
    }
    t.emit("fig4.csv");

    let f5 = fig5(&cfg, Some(&f4));
    let mut t = Table::new(
        "Fig. 5 — best DC-SBP vs EDiSt runtimes",
        &[
            "graph",
            "shared-mem (s)",
            "best DC (s)",
            "DC ranks",
            "EDiSt (s)",
            "ED ranks",
            "spd vs SM",
            "spd vs DC",
        ],
    );
    for r in &f5 {
        t.row(vec![
            r.graph_id.clone(),
            secs(r.sm_time),
            secs(r.dc_time),
            r.dc_ranks.to_string(),
            secs(r.edist_time),
            r.edist_ranks.to_string(),
            f2(r.speedup_vs_sm),
            f2(r.speedup_vs_dc),
        ]);
    }
    t.emit("fig5.csv");

    // ---- Fig. 6 ----
    let f6 = fig6(&cfg);
    let mut t = Table::new(
        "Fig. 6 — real-world graphs (runtime + DL_norm)",
        &["graph", "algo", "ranks", "runtime (s)", "DL_norm"],
    );
    for r in &f6 {
        t.row(vec![
            r.graph_id.clone(),
            match r.algo {
                Algo::Dcsbp => "DC-SBP".to_string(),
                Algo::Edist => "EDiSt".to_string(),
            },
            r.n_ranks.to_string(),
            secs(r.makespan),
            f2(r.dl_norm),
        ]);
    }
    t.emit("fig6.csv");

    // ---- Headline summary ----
    println!("\n=== Headline comparison with the paper ===");
    let best_sm = f5.iter().map(|r| r.speedup_vs_sm).fold(f64::NAN, f64::max);
    let best_dc = f5.iter().map(|r| r.speedup_vs_dc).fold(f64::NAN, f64::max);
    println!(
        "max EDiSt speedup vs shared-memory SBP: {best_sm:.1}x (paper: up to 38.0x at 64 nodes)"
    );
    println!("max EDiSt speedup vs best DC-SBP:      {best_dc:.1}x (paper: up to 23.8x)");
    // Retention = degradation vs each graph's own 1-rank baseline (some
    // sparse graphs are unrecoverable at any rank count at this scale).
    let mut worst_drop = 0.0f64;
    for cell in t8.iter().filter(|c| c.n_ranks >= 16) {
        let baseline = t8
            .iter()
            .find(|b| b.graph_id == cell.graph_id && b.n_ranks == 1)
            .map_or(cell.nmi, |b| b.nmi);
        worst_drop = worst_drop.max(baseline - cell.nmi);
    }
    println!(
        "worst EDiSt NMI drop vs 1-rank baseline at >=16 ranks: {worst_drop:.3} (paper: EDiSt retains accuracy)"
    );
}

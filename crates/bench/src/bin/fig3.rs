//! Regenerates Fig. 3: EDiSt runtime with multiple MPI tasks per node.

use sbp_bench::{f2, fig3, secs, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = fig3(&cfg);
    let mut t = Table::new(
        "Fig. 3 — EDiSt runtime with multiple MPI tasks per compute node (1M graph)",
        &["tasks", "runtime (s)", "speedup"],
    );
    for r in &rows {
        t.row(vec![r.tasks.to_string(), secs(r.makespan), f2(r.speedup)]);
    }
    t.emit("fig3.csv");
}

//! Regenerates Fig. 2: island-vertex fraction vs DC-SBP NMI (derived from
//! the Table VII sweep).

use sbp_bench::{f2, fig2_points, table7, write_csv, BenchConfig, Table};

fn main() {
    let cfg = BenchConfig::from_env();
    let cells = table7(&cfg);
    let points = fig2_points(&cells);
    let mut t = Table::new(
        "Fig. 2 — island vertices induced by data distribution vs NMI (DC-SBP)",
        &["island fraction", "NMI"],
    );
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (frac, score) in &sorted {
        t.row(vec![f2(*frac), f2(*score)]);
    }
    println!("{}", t.render());
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|(f, s)| vec![format!("{f:.4}"), format!("{s:.4}")])
        .collect();
    write_csv("fig2.csv", &["island_fraction", "nmi"], &rows);

    // The paper's qualitative finding: NMI collapses past ~20% islands.
    let high: Vec<f64> = sorted
        .iter()
        .filter(|(f, _)| *f > 0.3)
        .map(|&(_, s)| s)
        .collect();
    if !high.is_empty() {
        let avg = high.iter().sum::<f64>() / high.len() as f64;
        println!("mean NMI at >30% islands: {avg:.3} (paper: ~0)");
    }
}

//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. vertex-ownership scheme — sorted-degree balanced (§III-B) vs naive
//!    `v mod n` (per-rank degree-mass imbalance and its effect on the BSP
//!    makespan);
//! 2. MCMC sync period — exchanging moves every sweep (the paper) vs every
//!    k sweeps (its future-work communication-reduction direction):
//!    collectives, bytes, quality;
//! 3. MCMC strategy — sequential MH vs hybrid vs batch inside EDiSt.
//!
//! ```text
//! cargo run --release -p sbp-bench --bin ablation
//! ```

use edist::{Backend, Partitioner};
use sbp_bench::{demo_graph, experiment_sbp_config, f2, secs, BenchConfig, Table};
use sbp_core::hybrid::HybridConfig;
use sbp_core::McmcStrategy;
use sbp_dist::OwnershipStrategy;
use sbp_eval::nmi;

fn main() {
    let cfg = BenchConfig::from_env();
    let planted = demo_graph(&cfg);
    let g = &planted.graph;
    let ranks = 8.min(cfg.max_ranks);
    eprintln!(
        "ablation graph: V={} E={}, {} ranks",
        g.num_vertices(),
        g.total_edge_weight(),
        ranks
    );

    // ---- 1. ownership ----
    let mut t = Table::new(
        "Ablation 1 — vertex ownership scheme (EDiSt MCMC phase)",
        &["scheme", "runtime (s)", "NMI"],
    );
    for (name, ownership) in [
        ("sorted-balanced", OwnershipStrategy::SortedBalanced),
        ("modulo", OwnershipStrategy::Modulo),
    ] {
        let run = Partitioner::on(g)
            .backend(Backend::Edist { ranks })
            .config(experiment_sbp_config(cfg.seed))
            .ownership(ownership)
            .run()
            .expect("valid configuration");
        t.row(vec![
            name.into(),
            secs(run.virtual_seconds),
            f2(nmi(&run.assignment, &planted.ground_truth)),
        ]);
    }
    t.emit("ablation_ownership.csv");

    // ---- 2. sync period ----
    let mut t = Table::new(
        "Ablation 2 — MCMC sync period (communication vs quality)",
        &[
            "period",
            "collectives",
            "MB on wire",
            "max-rank MB",
            "runtime (s)",
            "NMI",
        ],
    );
    for k in [1usize, 2, 4, 8] {
        let run = Partitioner::on(g)
            .backend(Backend::Edist { ranks })
            .config(experiment_sbp_config(cfg.seed))
            .sync_period(k)
            .run()
            .expect("valid configuration");
        let rep = run.cluster.expect("distributed backend reports cluster");
        t.row(vec![
            k.to_string(),
            rep.collectives.to_string(),
            format!("{:.2}", rep.total_bytes as f64 / 1e6),
            format!("{:.2}", rep.max_rank_bytes as f64 / 1e6),
            secs(rep.makespan),
            f2(nmi(&run.assignment, &planted.ground_truth)),
        ]);
    }
    t.emit("ablation_sync.csv");

    // ---- 3. MCMC strategy ----
    let mut t = Table::new(
        "Ablation 3 — MCMC strategy inside EDiSt",
        &["strategy", "runtime (s)", "NMI"],
    );
    for (name, strategy) in [
        ("metropolis-hastings", McmcStrategy::MetropolisHastings),
        (
            "hybrid",
            McmcStrategy::Hybrid(HybridConfig {
                parallel: false,
                ..HybridConfig::default()
            }),
        ),
        ("batch", McmcStrategy::Batch),
    ] {
        let mut sbp = experiment_sbp_config(cfg.seed);
        sbp.strategy = strategy;
        let run = Partitioner::on(g)
            .backend(Backend::Edist { ranks })
            .config(sbp)
            .run()
            .expect("valid configuration");
        t.row(vec![
            name.into(),
            secs(run.virtual_seconds),
            f2(nmi(&run.assignment, &planted.ground_truth)),
        ]);
    }
    t.emit("ablation_strategy.csv");
}

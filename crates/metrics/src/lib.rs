//! # sbp-metrics — the process-wide observability plane
//!
//! An offline, dependency-free metrics layer in the spirit of the
//! workspace's other shims: a global registry of named [`Counter`]s,
//! [`Gauge`]s, and fixed-bucket [`Histogram`]s with cheap atomic
//! recording, point-in-time [`Snapshot`]s, a canonical JSON encoding
//! ([`json`]), a Prometheus-style text exposition
//! ([`Snapshot::prometheus`]), and a self-contained HTML run report
//! ([`report`]).
//!
//! ## The observe-only determinism contract
//!
//! Metrics are **strictly observe-only**: instrumented code writes into
//! the registry but never reads a recorded value back into RNG streams,
//! description-length arithmetic, or control flow. Solver output is
//! therefore bit-identical with metrics enabled or disabled — the
//! `tests/metrics.rs` suite proves it across backends and thread
//! counts. Recording is additionally gated on a process-wide switch
//! ([`enabled`]): set the `SBP_METRICS` environment variable to `0`
//! (or call [`set_enabled`]`(false)`) and every record call degrades to
//! a single relaxed atomic load.
//!
//! ## Naming
//!
//! Metric names follow the Prometheus convention
//! (`sbp_<layer>_<what>_<unit>`), with at most one label folded into
//! the name by [`labeled`] — e.g. `sbp_pool_tasks_total{worker="3"}`.
//! The four instrumented layers are `solver` (sbp-core), `pool`
//! (the rayon shim), `wire` (sbp-dist), and `daemon` (sbp-serve).

pub mod json;
pub mod report;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bucket bounds (seconds) shared by every phase/latency
/// histogram: 1 µs … 100 s in decades, plus the implicit `+Inf`.
pub const TIME_BUCKETS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// Upper bucket bounds for size-class histograms (block sizes, batch
/// widths): powers of two from 1 to 65536, plus the implicit `+Inf`.
pub const SIZE_BUCKETS: [f64; 17] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

fn enabled_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| {
        let on = std::env::var("SBP_METRICS").map_or(true, |v| v != "0");
        AtomicBool::new(on)
    })
}

/// Whether recording is currently on (default yes; `SBP_METRICS=0` in
/// the environment starts the process with it off).
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Off, every record call is a
/// single relaxed load; registered metrics keep their accumulated
/// values.
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while recording is [disabled](enabled)).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while recording is [disabled](enabled)).
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram: cumulative-style bucket counts plus a sum
/// and total, all recorded with relaxed atomics (the sum via a CAS loop
/// over `f64` bits).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the `+Inf` overflow.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation (no-op while recording is
    /// [disabled](enabled)).
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Upper bucket bounds (the `+Inf` overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock(
    reg: &Mutex<BTreeMap<String, Metric>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
    // A panic while holding the registry lock leaves only metric
    // values behind, never torn structure — recording stays usable.
    reg.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Returns (registering on first use) the counter named `name`.
///
/// Resolution takes the registry lock — resolve once per call site
/// (e.g. into a local or a `OnceLock` static) and record through the
/// returned handle on hot paths.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric {name:?} is not a counter"),
    }
}

/// Returns (registering on first use) the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {name:?} is not a gauge"),
    }
}

/// Returns (registering on first use) the histogram named `name` with
/// the given ascending upper bucket `bounds` (an `+Inf` overflow bucket
/// is always appended). Bounds are fixed at first registration; later
/// calls ignore the argument.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name:?} is not a histogram"),
    }
}

/// Folds one label into a metric name, Prometheus-style:
/// `labeled("sbp_pool_tasks_total", "worker", 3)` →
/// `sbp_pool_tasks_total{worker="3"}`.
pub fn labeled(base: &str, key: &str, value: impl std::fmt::Display) -> String {
    format!("{base}{{{key}=\"{value}\"}}")
}

/// Zeroes every registered metric (the registry itself — names, kinds,
/// bucket bounds — is kept). Intended for tests and for the daemon's
/// per-run isolation.
pub fn reset() {
    let reg = lock(registry());
    for metric in reg.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// The frozen value of one metric inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: per-bucket counts (one longer than `bounds`,
    /// the last slot being `+Inf`), plus sum and total.
    Histogram {
        /// Ascending upper bucket bounds.
        bounds: Vec<f64>,
        /// Per-bucket observation counts (`bounds.len() + 1` slots).
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: f64,
        /// Total number of observations.
        count: u64,
    },
}

/// A point-in-time copy of every registered metric, ordered by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Metric values keyed by (possibly labeled) name.
    pub metrics: BTreeMap<String, MetricValue>,
}

/// Takes a point-in-time snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    let reg = lock(registry());
    let metrics = reg
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    bounds: h.bounds.clone(),
                    counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                    sum: h.sum(),
                    count: h.count(),
                },
            };
            (name.clone(), value)
        })
        .collect();
    Snapshot { metrics }
}

impl Snapshot {
    /// Canonical JSON encoding: `{"<name>": {"type": "counter",
    /// "value": n} | {"type": "gauge", ...} | {"type": "histogram",
    /// "bounds": [...], "counts": [...], "sum": s, "count": n}}`.
    pub fn to_json(&self) -> json::Value {
        let mut obj = BTreeMap::new();
        for (name, value) in &self.metrics {
            let mut m = BTreeMap::new();
            match value {
                MetricValue::Counter(v) => {
                    m.insert("type".into(), json::Value::Str("counter".into()));
                    m.insert("value".into(), json::Value::Num(*v as f64));
                }
                MetricValue::Gauge(v) => {
                    m.insert("type".into(), json::Value::Str("gauge".into()));
                    m.insert("value".into(), json::Value::Num(*v));
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    m.insert("type".into(), json::Value::Str("histogram".into()));
                    m.insert(
                        "bounds".into(),
                        json::Value::Arr(bounds.iter().map(|&b| json::Value::Num(b)).collect()),
                    );
                    m.insert(
                        "counts".into(),
                        json::Value::Arr(
                            counts.iter().map(|&c| json::Value::Num(c as f64)).collect(),
                        ),
                    );
                    m.insert("sum".into(), json::Value::Num(*sum));
                    m.insert("count".into(), json::Value::Num(*count as f64));
                }
            }
            obj.insert(name.clone(), json::Value::Obj(m));
        }
        json::Value::Obj(obj)
    }

    /// Decodes a snapshot from its [`to_json`](Snapshot::to_json)
    /// encoding, rejecting unknown metric types and malformed shapes.
    pub fn from_json(value: &json::Value) -> Result<Snapshot, String> {
        let obj = value.as_obj().ok_or("snapshot must be an object")?;
        let mut metrics = BTreeMap::new();
        for (name, m) in obj {
            let m = m.as_obj().ok_or("metric entry must be an object")?;
            let kind = m
                .get("type")
                .and_then(json::Value::as_str)
                .ok_or("metric entry needs a string 'type'")?;
            let value = match kind {
                "counter" => MetricValue::Counter(num_field(m, "value")? as u64),
                "gauge" => MetricValue::Gauge(num_field(m, "value")?),
                "histogram" => {
                    let bounds = num_array(m, "bounds")?;
                    let counts = num_array(m, "counts")?
                        .into_iter()
                        .map(|c| c as u64)
                        .collect::<Vec<_>>();
                    if counts.len() != bounds.len() + 1 {
                        return Err(format!(
                            "histogram {name:?}: {} counts for {} bounds",
                            counts.len(),
                            bounds.len()
                        ));
                    }
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum: num_field(m, "sum")?,
                        count: num_field(m, "count")? as u64,
                    }
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            metrics.insert(name.clone(), value);
        }
        Ok(Snapshot { metrics })
    }

    /// Prometheus-style text exposition (`# TYPE` lines, histogram
    /// `_bucket`/`_sum`/`_count` series with cumulative `le` labels).
    /// One `# TYPE` line per metric family: labeled series of the same
    /// base name (adjacent in the sorted registry) share a single
    /// declaration, as the exposition format requires.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for (name, value) in &self.metrics {
            let (base, labels) = split_labels(name);
            let declare = base != last_base;
            last_base = base;
            match value {
                MetricValue::Counter(v) => {
                    if declare {
                        let _ = writeln!(out, "# TYPE {base} counter");
                    }
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    if declare {
                        let _ = writeln!(out, "# TYPE {base} gauge");
                    }
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    if declare {
                        let _ = writeln!(out, "# TYPE {base} histogram");
                    }
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cumulative += c;
                        let le = bounds.get(i).map_or("+Inf".to_string(), |b| format!("{b}"));
                        let all = match labels {
                            Some(labels) => format!("{labels},le=\"{le}\""),
                            None => format!("le=\"{le}\""),
                        };
                        let _ = writeln!(out, "{base}_bucket{{{all}}} {cumulative}");
                    }
                    let suffix = labels.map_or(String::new(), |l| format!("{{{l}}}"));
                    let _ = writeln!(out, "{base}_sum{suffix} {sum}");
                    let _ = writeln!(out, "{base}_count{suffix} {count}");
                }
            }
        }
        out
    }
}

/// Splits `name{key="v"}` into `("name", Some("key=\"v\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

fn num_field(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(json::Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn num_array(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<Vec<f64>, String> {
    let arr = obj
        .get(key)
        .and_then(json::Value::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))?;
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("{key:?} holds a non-number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag is process-global; tests that toggle it must not
    /// interleave with tests that record.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let _serial = serial();
        set_enabled(true);
        let c = counter("test_counter_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(Arc::ptr_eq(&c, &counter("test_counter_total")));

        let g = gauge("test_gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram("test_hist", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _serial = serial();
        let c = counter("test_disabled_total");
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let _serial = serial();
        set_enabled(true);
        counter("test_rt_counter_total").add(7);
        gauge("test_rt_gauge").set(-1.25);
        histogram("test_rt_hist", &TIME_BUCKETS).observe(0.004);
        let snap = snapshot();
        let encoded = snap.to_json().to_string();
        let parsed = json::Value::parse(&encoded).unwrap();
        let back = Snapshot::from_json(&parsed).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _serial = serial();
        set_enabled(true);
        counter(&labeled("test_prom_total", "rank", 0)).add(3);
        counter(&labeled("test_prom_total", "rank", 1)).add(4);
        histogram("test_prom_seconds", &[0.1]).observe(0.05);
        let text = snapshot().prometheus();
        assert!(text.contains("# TYPE test_prom_total counter"));
        assert!(text.contains("test_prom_total{rank=\"0\"} 3"));
        assert!(text.contains("test_prom_total{rank=\"1\"} 4"));
        // One TYPE declaration per family, not per labeled series.
        assert_eq!(text.matches("# TYPE test_prom_total counter").count(), 1);
        assert!(text.contains("# TYPE test_prom_seconds histogram"));
        assert!(text.contains("test_prom_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("test_prom_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("test_prom_seconds_count 1"));
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(
            labeled("sbp_pool_tasks_total", "worker", 3),
            "sbp_pool_tasks_total{worker=\"3\"}"
        );
        assert_eq!(
            split_labels("a_total{rank=\"1\"}"),
            ("a_total", Some("rank=\"1\""))
        );
        assert_eq!(split_labels("a_total"), ("a_total", None));
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _serial = serial();
        set_enabled(true);
        let c = counter("test_reset_total");
        c.add(9);
        reset();
        assert_eq!(c.get(), 0);
        assert!(Arc::ptr_eq(&c, &counter("test_reset_total")));
    }
}

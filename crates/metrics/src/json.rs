//! A minimal JSON value, writer, and recursive-descent parser — just
//! enough for the metrics JSONL schema, with no crates.io
//! dependencies. Numbers are `f64` (integers above 2^53 lose
//! precision; metric series stay far below that). The parser is
//! depth-limited and rejects trailing garbage, so it is safe to point
//! at hostile input (it is part of the fuzz wall).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys are sorted (BTreeMap), making the encoding
    /// canonical.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Parses one JSON document, rejecting trailing non-whitespace.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing bytes after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write_num(f, *n),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON has no NaN/Inf; encode them as null so the output always
/// re-parses. Finite floats use Rust's shortest round-trip formatting.
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.is_finite() {
        write!(f, "{n}")
    } else {
        f.write_str("null")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> Self {
        ParseError { offset, message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    if depth > MAX_DEPTH {
        return Err(ParseError::at(*pos, "nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError::at(*pos, "expected ':'"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(ParseError::at(*pos, "unexpected byte")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "bad literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "bad number"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| ParseError::at(start, "bad number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(ParseError::at(*pos, "lone high surrogate"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(ParseError::at(*pos, "bad low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or(ParseError::at(*pos, "bad code point"))?
                        } else {
                            char::from_u32(hi).ok_or(ParseError::at(*pos, "lone surrogate"))?
                        };
                        out.push(ch);
                        continue; // parse_hex4 already advanced pos
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(ParseError::at(*pos, "raw control byte in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so slicing on
                // char boundaries is safe via str re-borrow).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let ch = rest
                    .chars()
                    .next()
                    .ok_or(ParseError::at(*pos, "unterminated string"))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or(ParseError::at(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(slice).map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
    *pos += 4;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let mut obj = BTreeMap::new();
        obj.insert("a".into(), Value::Num(1.5));
        obj.insert("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)]));
        obj.insert("c".into(), Value::Str("x\"\\\n\u{1F600}".into()));
        let v = Value::Obj(obj);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Value::parse(r#""\u0041\ud83d\ude00\t""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}\t".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\x\"",
            "\"\\ud800\"",
            "1 2",
            "{1:2}",
            "\u{0007}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: stays an error, never a stack overflow.
        let deep = "[".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn numbers_roundtrip() {
        for n in [0.0, -1.0, 1e-9, 123456789.0, -2.5e10, f64::MAX] {
            let text = Value::Num(n).to_string();
            assert_eq!(Value::parse(&text).unwrap(), Value::Num(n), "{n}");
        }
        // Non-finite encodes as null (JSON has no NaN).
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }
}

//! Renders a metrics JSONL run log into a self-contained HTML report —
//! hand-rolled inline SVG and a few lines of vanilla JS, no crates.io.
//!
//! The input is the line-per-object stream written by
//! `edist-cli partition --metrics-out` (see the README's
//! "Observability" section for the schema): a `meta` line, streamed
//! `sweep`/`iteration`/`phase` events, a final `summary`, and a
//! [`Snapshot`] dump under `{"type":"snapshot"}`.

use crate::json::Value;
use crate::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Chart canvas dimensions.
const W: f64 = 640.0;
const H: f64 = 240.0;
/// Plot-area margins: left, right, top, bottom.
const ML: f64 = 60.0;
const MR: f64 = 15.0;
const MT: f64 = 10.0;
const MB: f64 = 30.0;

/// Renders the report. `lines` are the parsed JSONL objects in file
/// order. Unknown line types are ignored (forward compatibility);
/// a stream with no usable lines is an error.
pub fn render(lines: &[Value]) -> Result<String, String> {
    let mut meta: Option<&Value> = None;
    let mut summary: Option<&Value> = None;
    let mut snapshot: Option<Snapshot> = None;
    let mut sweeps: Vec<SweepPoint> = Vec::new();
    let mut iterations: Vec<(f64, f64)> = Vec::new(); // (blocks, dl)

    for line in lines {
        match line.get("type").and_then(Value::as_str) {
            Some("meta") => meta = Some(line),
            Some("summary") => summary = Some(line),
            Some("snapshot") => {
                let metrics = line
                    .get("metrics")
                    .ok_or("snapshot line without 'metrics'")?;
                snapshot = Some(Snapshot::from_json(metrics)?);
            }
            Some("sweep") => {
                let dl = num(line, "dl")?;
                let proposed = num(line, "proposed").unwrap_or(0.0);
                let accepted = num(line, "accepted").unwrap_or(0.0);
                sweeps.push(SweepPoint {
                    dl,
                    proposed,
                    accepted,
                });
            }
            Some("iteration") => {
                iterations.push((num(line, "blocks")?, num(line, "dl")?));
            }
            _ => {}
        }
    }
    if meta.is_none() && summary.is_none() && sweeps.is_empty() && snapshot.is_none() {
        return Err("no recognizable metrics lines in input".into());
    }

    let mut body = String::new();
    body.push_str(&header_table(meta, summary));
    body.push_str(&dl_section(&sweeps, &iterations));
    body.push_str(&acceptance_section(&sweeps));
    if let Some(snap) = &snapshot {
        body.push_str(&block_size_section(snap));
        body.push_str(&per_rank_bytes_section(snap));
        body.push_str(&pool_section(snap));
        body.push_str(&snapshot_table(snap));
    }
    Ok(page(&body))
}

struct SweepPoint {
    dl: f64,
    proposed: f64,
    accepted: f64,
}

fn num(line: &Value, key: &str) -> Result<f64, String> {
    line.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line missing numeric field {key:?}"))
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn header_table(meta: Option<&Value>, summary: Option<&Value>) -> String {
    let mut rows = String::new();
    let mut row = |k: &str, v: String| {
        let _ = write!(rows, "<tr><th>{}</th><td>{}</td></tr>", esc(k), esc(&v));
    };
    for (label, src, key) in [
        ("backend", meta, "backend"),
        ("seed", meta, "seed"),
        ("vertices", meta, "vertices"),
        ("final DL", summary, "dl"),
        ("blocks", summary, "blocks"),
        ("wall seconds", summary, "wall_seconds"),
        ("virtual seconds", summary, "virtual_seconds"),
    ] {
        if let Some(value) = src.and_then(|s| s.get(key)) {
            let text = match value {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            };
            row(label, text);
        }
    }
    format!("<h2>Run</h2><table class=\"kv\">{rows}</table>")
}

/// One chart series: `(legend name, stroke color, (x, y) points)`.
type Series<'a> = (&'a str, &'a str, Vec<(f64, f64)>);

/// Maps data points into one SVG polyline, with axis labels.
fn line_chart(series: &[Series], x_label: &str, y_label: &str) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return "<p class=\"nodata\">no data</p>".into();
    }
    let (x0, x1) = span(all.iter().map(|p| p.0));
    let (y0, y1) = span(all.iter().map(|p| p.1));
    let sx = |x: f64| ML + (x - x0) / (x1 - x0).max(1e-12) * (W - ML - MR);
    let sy = |y: f64| H - MB - (y - y0) / (y1 - y0).max(1e-12) * (H - MT - MB);
    let mut svg = svg_open();
    axes(&mut svg, x0, x1, y0, y1, x_label, y_label);
    let mut legend = String::new();
    for (i, (name, color, pts)) in series.iter().enumerate() {
        if pts.is_empty() {
            continue;
        }
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        let _ = write!(
            svg,
            "<polyline id=\"s{i}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" \
             points=\"{}\"/>",
            path.join(" ")
        );
        let _ = write!(
            legend,
            "<span class=\"leg\" data-series=\"s{i}\" style=\"color:{color}\">&#9632; {}</span> ",
            esc(name)
        );
    }
    svg.push_str("</svg>");
    format!("<div class=\"chart\">{svg}<div class=\"legend\">{legend}</div></div>")
}

fn bar_chart(labels: &[String], values: &[f64], color: &str, y_label: &str) -> String {
    if values.is_empty() || values.iter().all(|&v| v == 0.0) {
        return "<p class=\"nodata\">no data</p>".into();
    }
    let vmax = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let n = values.len() as f64;
    let band = (W - ML - MR) / n;
    let mut svg = svg_open();
    axes(&mut svg, 0.0, n, 0.0, vmax, "", y_label);
    for (i, (&v, label)) in values.iter().zip(labels).enumerate() {
        let x = ML + i as f64 * band + band * 0.1;
        let h = v / vmax * (H - MT - MB);
        let y = H - MB - h;
        let _ = write!(
            svg,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{h:.1}\" fill=\"{color}\">\
             <title>{}: {v}</title></rect>",
            band * 0.8,
            esc(label)
        );
        if values.len() <= 24 {
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
                x + band * 0.4,
                H - MB + 14.0,
                esc(label)
            );
        }
    }
    svg.push_str("</svg>");
    format!("<div class=\"chart\">{svg}</div>")
}

fn svg_open() -> String {
    format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">"
    )
}

fn axes(svg: &mut String, x0: f64, x1: f64, y0: f64, y1: f64, x_label: &str, y_label: &str) {
    let _ = write!(
        svg,
        "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" class=\"axis\"/>\
         <line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"axis\"/>",
        H - MB,
        H - MB,
        W - MR,
        H - MB
    );
    let _ = write!(
        svg,
        "<text x=\"{ML}\" y=\"{}\" class=\"tick\">{}</text>\
         <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
        H - MB + 14.0,
        fmt_tick(x0),
        W - MR,
        H - MB + 14.0,
        fmt_tick(x1)
    );
    let _ = write!(
        svg,
        "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>\
         <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
        ML - 4.0,
        H - MB,
        fmt_tick(y0),
        ML - 4.0,
        MT + 10.0,
        fmt_tick(y1)
    );
    if !x_label.is_empty() {
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
            (ML + W - MR) / 2.0,
            H - 6.0,
            esc(x_label)
        );
    }
    if !y_label.is_empty() {
        let _ = write!(
            svg,
            "<text x=\"12\" y=\"{}\" class=\"tick\" transform=\"rotate(-90 12 {})\" \
             text-anchor=\"middle\">{}</text>",
            H / 2.0,
            H / 2.0,
            esc(y_label)
        );
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn span(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values.filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn dl_section(sweeps: &[SweepPoint], iterations: &[(f64, f64)]) -> String {
    let sweep_pts: Vec<(f64, f64)> = sweeps
        .iter()
        .enumerate()
        .map(|(i, s)| (i as f64, s.dl))
        .collect();
    let iter_pts: Vec<(f64, f64)> = iterations
        .iter()
        .enumerate()
        .map(|(i, &(_, dl))| {
            // Place iteration marks on the sweep axis proportionally.
            let frac = if iterations.len() > 1 {
                i as f64 / (iterations.len() - 1) as f64
            } else {
                1.0
            };
            (frac * (sweep_pts.len().saturating_sub(1)) as f64, dl)
        })
        .collect();
    let chart = line_chart(
        &[
            ("per-sweep DL", "#2563eb", sweep_pts),
            ("per-iteration best DL", "#dc2626", iter_pts),
        ],
        "sweep",
        "description length",
    );
    format!("<h2>Description-length trajectory</h2>{chart}")
}

fn acceptance_section(sweeps: &[SweepPoint]) -> String {
    let pts: Vec<(f64, f64)> = sweeps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.proposed > 0.0)
        .map(|(i, s)| (i as f64, s.accepted / s.proposed))
        .collect();
    let chart = line_chart(
        &[("acceptance rate", "#059669", pts)],
        "sweep",
        "accepted / proposed",
    );
    format!("<h2>Acceptance rate</h2>{chart}")
}

fn block_size_section(snap: &Snapshot) -> String {
    let Some(MetricValue::Histogram { bounds, counts, .. }) =
        snap.metrics.get("sbp_solver_block_size")
    else {
        return "<h2>Block sizes</h2><p class=\"nodata\">no data</p>".into();
    };
    let mut labels: Vec<String> = bounds
        .iter()
        .map(|b| format!("≤{}", fmt_tick(*b)))
        .collect();
    labels.push("+Inf".into());
    let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    format!(
        "<h2>Block sizes (final partition, per golden-search iteration)</h2>{}",
        bar_chart(&labels, &values, "#7c3aed", "blocks")
    )
}

fn labeled_series(snap: &Snapshot, base: &str, label: &str) -> (Vec<String>, Vec<f64>) {
    let prefix = format!("{base}{{{label}=\"");
    let mut entries: Vec<(u64, f64)> = Vec::new();
    for (name, value) in &snap.metrics {
        if let Some(rest) = name.strip_prefix(&prefix) {
            if let Some(id) = rest.strip_suffix("\"}").and_then(|s| s.parse::<u64>().ok()) {
                let v = match value {
                    MetricValue::Counter(c) => *c as f64,
                    MetricValue::Gauge(g) => *g,
                    MetricValue::Histogram { sum, .. } => *sum,
                };
                entries.push((id, v));
            }
        }
    }
    entries.sort_unstable_by_key(|&(id, _)| id);
    (
        entries.iter().map(|(id, _)| id.to_string()).collect(),
        entries.iter().map(|&(_, v)| v).collect(),
    )
}

fn per_rank_bytes_section(snap: &Snapshot) -> String {
    let (labels, values) = labeled_series(snap, "sbp_wire_move_bytes_encoded_total", "rank");
    format!(
        "<h2>Bytes on the wire (encoded move payloads, per rank)</h2>{}",
        bar_chart(&labels, &values, "#ea580c", "bytes")
    )
}

fn pool_section(snap: &Snapshot) -> String {
    let (labels, values) = labeled_series(snap, "sbp_pool_tasks_total", "worker");
    format!(
        "<h2>Pool utilization (tasks per worker)</h2>{}",
        bar_chart(&labels, &values, "#0891b2", "tasks")
    )
}

fn snapshot_table(snap: &Snapshot) -> String {
    let mut rows = String::new();
    for (name, value) in &snap.metrics {
        let text = match value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => fmt_tick(*v),
            MetricValue::Histogram { sum, count, .. } => {
                format!("count={count} sum={}", fmt_tick(*sum))
            }
        };
        let _ = write!(
            rows,
            "<tr><td class=\"mono\">{}</td><td>{}</td></tr>",
            esc(name),
            esc(&text)
        );
    }
    format!(
        "<h2>All metrics</h2><table class=\"kv\"><tr><th>name</th><th>value</th></tr>{rows}</table>"
    )
}

fn page(body: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
<title>edist run report</title>\
<style>\
body{{font:14px/1.5 system-ui,sans-serif;max-width:760px;margin:2em auto;color:#111}}\
h1{{font-size:20px}}h2{{font-size:16px;margin-top:1.6em}}\
table.kv{{border-collapse:collapse}}table.kv th,table.kv td{{text-align:left;\
padding:2px 10px;border-bottom:1px solid #e5e7eb}}\
.mono{{font-family:ui-monospace,monospace;font-size:12px}}\
.axis{{stroke:#9ca3af;stroke-width:1}}.tick{{font-size:10px;fill:#6b7280}}\
.legend{{font-size:12px}}.leg{{cursor:pointer;margin-right:8px}}\
.nodata{{color:#9ca3af;font-style:italic}}\
</style></head><body><h1>edist run report</h1>{body}\
<script>\
document.querySelectorAll('.leg').forEach(function(el){{\
el.addEventListener('click',function(){{\
var s=el.closest('.chart').querySelector('#'+el.dataset.series);\
if(s)s.style.display=s.style.display==='none'?'':'none';\
}});}});\
</script></body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(text: &str) -> Value {
        Value::parse(text).unwrap()
    }

    #[test]
    fn renders_full_stream() {
        crate::set_enabled(true);
        crate::counter(&crate::labeled(
            "sbp_wire_move_bytes_encoded_total",
            "rank",
            0,
        ))
        .add(10);
        crate::counter(&crate::labeled("sbp_pool_tasks_total", "worker", 1)).add(4);
        crate::histogram("sbp_solver_block_size", &crate::SIZE_BUCKETS).observe(3.0);
        let snap_json = crate::snapshot().to_json().to_string();
        let lines = vec![
            line(r#"{"type":"meta","schema":1,"backend":"batch","seed":7,"vertices":16}"#),
            line(
                r#"{"type":"sweep","iteration":0,"sweep":0,"dl":120.5,"proposed":16,"accepted":9}"#,
            ),
            line(
                r#"{"type":"sweep","iteration":0,"sweep":1,"dl":110.0,"proposed":16,"accepted":4}"#,
            ),
            line(r#"{"type":"iteration","iteration":0,"blocks":4,"dl":110.0}"#),
            line(
                r#"{"type":"summary","dl":110.0,"blocks":4,"wall_seconds":0.1,"virtual_seconds":0.05}"#,
            ),
            line(&format!(r#"{{"type":"snapshot","metrics":{snap_json}}}"#)),
        ];
        let html = render(&lines).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Description-length trajectory"));
        assert!(html.contains("Acceptance rate"));
        assert!(html.contains("polyline"));
        assert!(html.contains("sbp_pool_tasks_total"));
        // Self-contained: no external fetches.
        assert!(!html.contains("http-equiv"));
        assert!(!html.contains("src=\"http"));
    }

    #[test]
    fn rejects_streams_with_nothing_usable() {
        assert!(render(&[]).is_err());
        assert!(render(&[line("{\"type\":\"unknown\"}")]).is_err());
    }

    #[test]
    fn tolerates_unknown_line_types_and_missing_sections() {
        let lines = vec![
            line(r#"{"type":"meta","backend":"sequential","seed":1}"#),
            line(r#"{"type":"future-thing","x":1}"#),
        ];
        let html = render(&lines).unwrap();
        assert!(html.contains("no data"));
    }
}

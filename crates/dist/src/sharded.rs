//! Distributed SBP over **sharded** graph ingest: EDiSt and DC-SBP
//! running against a [`DistGraph`] — each rank holding only its owned
//! adjacency — instead of a replicated monolithic [`sbp_graph::Graph`].
//!
//! ## How EDiSt stays exact without the whole graph
//!
//! EDiSt replicates the *blockmodel*, not the graph. Everything a rank
//! does between sync points touches only (a) the replicated blockmodel,
//! (b) the replicated assignment vector, and (c) the adjacency of the
//! vertices it sweeps — which the sharded loader guarantees is complete
//! for owned vertices. The two places the monolithic driver walks the
//! whole graph are replaced by integer-exact collectives:
//!
//! * **Blockmodel (re)builds** (`Blockmodel::from_assignment` at
//!   iteration start and after merges): each rank derives the matrix
//!   cells of its owned out-arcs and one allgather sums them —
//!   [`Blockmodel::from_parts`] then yields the *identical integer
//!   matrix* on every rank, because integer addition is
//!   order-independent.
//! * **Peer move application** (`move_vertex` needs the mover's
//!   adjacency): ranks exchange pre-aggregated matrix **cell deltas**
//!   instead. With `A_prev` the assignment at the last sync, `own` this
//!   rank's moves and `A_next` the post-sync assignment, the ranks
//!   together reconstruct `M(A_next) − M(A_prev)` exactly, subtract the
//!   locally-known `M(A_prev + own) − M(A_prev)` correction (each
//!   replica already applied its own moves incrementally mid-sweep), and
//!   land every replica on exactly `M(A_next)` — the same integers the
//!   monolithic driver reaches by replaying peer moves. Block-degree
//!   updates need only the ghost-degree table. Since the single-payload
//!   sync, each rank's delta share is phrased so it depends on **its own
//!   moves only** (see `sharded_sync`'s per-arc decomposition), so the
//!   moves, the delta share, and the cut arcs needed for the cross-rank
//!   correction all ship in *one* allgather buffer per sync — half the
//!   collective latency of the original moves-then-deltas pair.
//!
//! Consequently a sharded EDiSt run is **bit-identical** — assignments,
//! DL, trajectories — to a monolithic EDiSt run with the same seed, rank
//! count, and ownership, **unconditionally**: sparse block-matrix lines
//! iterate in canonical order (`sbp_core::line`), so floating-point
//! summation order is a pure function of the replicated integer state in
//! both storage regimes, not just on the dense flat matrix as before.
//! The equivalence is asserted in `tests/shard.rs` across ranks ×
//! ownerships × MCMC strategies × sync periods, on dense-regime,
//! sparse-regime, and regime-crossing trajectories.
//!
//! DC-SBP composes with sharded ingest naturally — each rank's induced
//! subgraph is a subset of its owned adjacency — except for root-side
//! fine-tuning, which by construction needs the whole graph on rank 0;
//! the sharded variant therefore always behaves like the paper's
//! "no fine-tune" ablation (combine + compact + exact distributed DL).
//! Run EDiSt over the same shards to refine its output distributively.

use crate::dcsbp::{combine_parts, compact_labels, DcsbpConfig, Engine};
use crate::distgraph::{load_dist_graph, DistGraph, ShardIngestReport};
use crate::edist::{edist_driver, shared_dl, EdistConfig, EdistData};
use crate::error::{abort_schedule, guard_collectives, DistError};
use crate::exchange::{
    concat_sections, decode_cells, decode_moves, encode_cells, encode_moves, split_sections,
    ExchangeStats,
};
use crate::fault::{FaultComm, FaultPlan};
use crate::mix_seed;
use crate::solver::{run_cluster_streaming, EventRelay};
use sbp_core::mcmc::AcceptedMove;
use sbp_core::run::{CancelToken, NoProgress, ProgressEvent, ProgressSink, RunConfig, RunOutcome};
use sbp_core::{naive_sbp, solve_sbp, Blockmodel};
use sbp_graph::shard::ShardHeader;
use sbp_graph::{induced_subgraph, Vertex, Weight};
use sbp_mpi::{ClusterReport, Communicator, CostModel};
use std::collections::BTreeMap;
use std::path::Path;

// ------------------------------------------------------------ blockmodel

/// This rank's matrix cells under `labels`: one entry per distinct
/// `(row, col)` over the owned out-arcs, sorted (BTreeMap order).
fn local_cells(dg: &DistGraph, labels: &[u32]) -> Vec<(u32, u32, Weight)> {
    let mut cells: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    for &v in dg.owned() {
        let r = labels[v as usize];
        for &(d, w) in dg.local().out_edges(v) {
            *cells.entry((r, labels[d as usize])).or_insert(0) += w;
        }
    }
    cells.into_iter().map(|((r, c), w)| (r, c, w)).collect()
}

/// Builds the replicated blockmodel from per-rank cell contributions —
/// the sharded stand-in for `Blockmodel::from_assignment`. Every rank
/// returns the identical integer state.
fn dist_blockmodel<C: Communicator>(
    comm: &C,
    dg: &DistGraph,
    assignment: Vec<u32>,
    num_blocks: usize,
) -> Result<Blockmodel, DistError> {
    let mine = encode_cells(&local_cells(dg, &assignment));
    let payloads = comm.allgatherv(mine);
    let mut total: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    for payload in payloads {
        for (r, c, w) in decode_cells(&payload)? {
            *total.entry((r, c)).or_insert(0) += w;
        }
    }
    Ok(Blockmodel::from_parts(
        dg.num_vertices(),
        dg.total_edge_weight(),
        assignment,
        num_blocks,
        total.into_iter().map(|((r, c), w)| (r, c, w)),
    ))
}

// ------------------------------------------------------------- move sync

/// Accumulates `±w` cell contributions for one arc under two labelings.
fn arc_delta(
    delta: &mut BTreeMap<(u32, u32), Weight>,
    s: Vertex,
    d: Vertex,
    w: Weight,
    before: &[u32],
    after: &[u32],
) {
    *delta
        .entry((before[s as usize], before[d as usize]))
        .or_insert(0) -= w;
    *delta
        .entry((after[s as usize], after[d as usize]))
        .or_insert(0) += w;
}

/// One sync point on the sharded plane, in a **single allgather**.
///
/// The shipped buffer has three sections (framed by
/// `concat_sections` with a tiny varint length header): this rank's
/// chronological moves, its locally-computable share of the matrix
/// delta, and the cut out-arcs of its net-moved vertices. The matrix
/// delta `M(A_next) − M(A_prev)` decomposes per arc `s → d` of weight
/// `w` — writing `p·`/`n·` for the pre-/post-sync labels and `e(r, c)`
/// for a `+w` charge to cell `(r, c)` — as
///
/// ```text
/// e(ns,nd) − e(ps,pd) = [e(ns,pd) − e(ps,pd)]            source term
///                     + [e(ps,nd) − e(ps,pd)]            dest term
///                     + [e(ns,nd) − e(ns,pd)
///                        − e(ps,nd) + e(ps,pd)]          cross term
/// ```
///
/// An arc with both endpoints on one rank ships its exact delta from
/// that rank. A cut arc's source term ships from the source owner and
/// its dest term from the dest owner — each is a pure function of that
/// rank's **own** moves plus the replicated `A_prev`, which is what lets
/// the delta share a buffer with the moves instead of being computed
/// after them. The cross term is nonzero only when *both* endpoints
/// net-moved (necessarily on different ranks, since a vertex moves only
/// on its owner); no single rank can precompute it, so the source owner
/// ships the cut arcs of its moved vertices and *every* rank
/// reconstructs the identical correction after the gather, when all
/// endpoint labels are known. Integer cell sums are order-independent,
/// so the per-cell deltas — and therefore the whole trajectory — are
/// exactly the original two-allgather scheme's, at half the collective
/// latency per sync. Relabels of peer-moved vertices and block-degree
/// fixes come from the move lists and the ghost-degree table as before.
///
/// `prev` is the globally-agreed assignment at the previous sync and is
/// advanced to the new agreement. Returns the total move count.
fn sharded_sync<C: Communicator>(
    comm: &C,
    dg: &DistGraph,
    bm: &mut Blockmodel,
    prev: &mut Vec<u32>,
    pending: &[AcceptedMove],
    xstats: &mut ExchangeStats,
) -> Result<usize, DistError> {
    let rank = comm.rank();
    // The replica currently sits at M(A_prev + own): own moves were
    // applied incrementally mid-sweep, peer moves arrive below.
    let cur = bm.assignment().to_vec();
    let mut own_moved: Vec<Vertex> = pending.iter().map(|m| m.v).collect();
    own_moved.sort_unstable();
    own_moved.dedup();
    own_moved.retain(|&v| cur[v as usize] != prev[v as usize]);
    let is_own_moved = |v: Vertex| dg.owner_of(v) == rank && cur[v as usize] != prev[v as usize];

    // This rank's delta share plus the cut arcs peers will need for the
    // cross terms — all derived from own moves only (see above).
    let mut contrib: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    let mut cuts: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    for &v in &own_moved {
        for &(d, w) in dg.local().out_edges(v) {
            if dg.owner_of(d) == rank {
                // Both endpoints' final labels are known locally (a
                // vertex is only moved by its owner): exact arc delta.
                arc_delta(&mut contrib, v, d, w, prev, &cur);
            } else {
                // Cut arc: source term now, cross term post-gather.
                *contrib
                    .entry((cur[v as usize], prev[d as usize]))
                    .or_insert(0) += w;
                *contrib
                    .entry((prev[v as usize], prev[d as usize]))
                    .or_insert(0) -= w;
                *cuts.entry((v, d)).or_insert(0) += w;
            }
        }
        for &(s, w) in dg.local().in_edges(v) {
            if s == v {
                continue; // self-loop charged once via the out-arc loop
            }
            if dg.owner_of(s) == rank {
                if !is_own_moved(s) {
                    // Unmoved owned source: the dest term is the exact
                    // delta (moved sources were charged by their own
                    // out-arc pass).
                    arc_delta(&mut contrib, s, v, w, prev, &cur);
                }
            } else {
                // Cut arc owned elsewhere: this side ships the dest term.
                *contrib
                    .entry((prev[s as usize], cur[v as usize]))
                    .or_insert(0) += w;
                *contrib
                    .entry((prev[s as usize], prev[v as usize]))
                    .or_insert(0) -= w;
            }
        }
    }
    let contrib: Vec<(u32, u32, Weight)> = contrib
        .into_iter()
        .filter(|&(_, w)| w != 0)
        .map(|((r, c), w)| (r, c, w))
        .collect();
    let cuts: Vec<(u32, u32, Weight)> = cuts.into_iter().map(|((s, d), w)| (s, d, w)).collect();

    let moves_buf = encode_moves(pending);
    xstats.record(pending.len(), moves_buf.len());
    let payload = concat_sections([&moves_buf, &encode_cells(&contrib), &encode_cells(&cuts)]);

    // The sync point's one collective.
    let payloads = comm.allgatherv(payload);

    let mut gathered: Vec<Vec<AcceptedMove>> = Vec::with_capacity(payloads.len());
    let mut delta: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    let mut all_cuts: Vec<(u32, u32, Weight)> = Vec::new();
    for p in &payloads {
        let [moves_sec, cells_sec, cuts_sec] = split_sections::<3>(p)?;
        gathered.push(decode_moves(moves_sec)?);
        for (r, c, w) in decode_cells(cells_sec)? {
            *delta.entry((r, c)).or_insert(0) += w;
        }
        all_cuts.extend(decode_cells(cuts_sec)?);
    }

    // A vertex is only ever moved by its owner, so applying the per-rank
    // lists in rank order (chronological within a rank) reproduces the
    // final label of every vertex.
    let mut next = prev.clone();
    let mut moves = 0usize;
    for peer_moves in &gathered {
        moves += peer_moves.len();
        for m in peer_moves {
            next[m.v as usize] = m.to;
        }
    }

    // Cross terms: every rank reconstructs them identically from the
    // shipped cut arcs plus the now-known global move set.
    for &(s, d, w) in &all_cuts {
        let (ps, ns) = (prev[s as usize], next[s as usize]);
        let (pd, nd) = (prev[d as usize], next[d as usize]);
        if pd == nd {
            continue; // dest did not net-move: cross term vanishes
        }
        debug_assert_ne!(ps, ns, "cut arcs ship for net-moved sources only");
        *delta.entry((ns, nd)).or_insert(0) += w;
        *delta.entry((ns, pd)).or_insert(0) -= w;
        *delta.entry((ps, nd)).or_insert(0) -= w;
        *delta.entry((ps, pd)).or_insert(0) += w;
    }

    // Own-move correction: subtract M(A_prev + own) − M(A_prev) —
    // computable locally since every arc incident to an owned vertex is
    // present — so the summed delta lands the matrix exactly on
    // M(A_next).
    let mut corr: BTreeMap<(u32, u32), Weight> = BTreeMap::new();
    for &v in &own_moved {
        for &(d, w) in dg.local().out_edges(v) {
            arc_delta(&mut corr, v, d, w, prev, &cur);
        }
        for &(s, w) in dg.local().in_edges(v) {
            if s != v && !is_own_moved(s) {
                arc_delta(&mut corr, s, v, w, prev, &cur);
            }
        }
    }
    for ((r, c), w) in corr {
        *delta.entry((r, c)).or_insert(0) -= w;
    }

    // Peer relabels + degree fixes (own moves already applied in-sweep).
    let mut moved: Vec<Vertex> = gathered
        .iter()
        .flatten()
        .map(|m| m.v)
        .filter(|&v| prev[v as usize] != next[v as usize])
        .collect();
    moved.sort_unstable();
    moved.dedup();
    let relabels: Vec<(Vertex, u32)> = moved
        .iter()
        .copied()
        .filter(|&v| dg.owner_of(v) != rank)
        .map(|v| (v, next[v as usize]))
        .collect();
    let mut degree_deltas: BTreeMap<u32, (Weight, Weight)> = BTreeMap::new();
    for &(v, to) in &relabels {
        let (dout, din) = (dg.out_degree(v), dg.in_degree(v));
        let from = prev[v as usize];
        let e = degree_deltas.entry(from).or_insert((0, 0));
        e.0 -= dout;
        e.1 -= din;
        let e = degree_deltas.entry(to).or_insert((0, 0));
        e.0 += dout;
        e.1 += din;
    }
    bm.apply_dist_sync(
        &relabels,
        delta.into_iter().map(|((r, c), w)| (r, c, w)),
        degree_deltas.into_iter().map(|(b, (o, i))| (b, o, i)),
    );
    *prev = next;
    Ok(moves)
}

// ---------------------------------------------------------- EDiSt driver

/// The sharded [`EdistData`] plane: sweeps run on the local (owned-only)
/// graph, blockmodel builds go through the summed-cell collective, and
/// peer moves apply via the cell-delta sync. The control loop itself —
/// golden search, merge phase, sweep/sync schedule, cancellation, events
/// — is `edist::edist_driver`, shared verbatim with the monolithic
/// driver, so the two can never drift apart.
struct ShardedData<'a> {
    dg: &'a DistGraph,
}

impl EdistData for ShardedData<'_> {
    fn num_vertices(&self) -> usize {
        self.dg.num_vertices()
    }

    fn total_edge_weight(&self) -> i64 {
        self.dg.total_edge_weight()
    }

    fn sweep_graph(&self) -> &sbp_graph::Graph {
        self.dg.local()
    }

    fn my_vertices(&self) -> &[Vertex] {
        self.dg.owned()
    }

    fn start_blockmodel<C: Communicator>(&self, comm: &C) -> Result<Blockmodel, DistError> {
        // Identity start, like the monolithic driver (identity is already
        // compact: every vertex occupies its own block, so the monolithic
        // plane's compaction pass is the identity relabeling here).
        let n = self.dg.num_vertices();
        dist_blockmodel(comm, self.dg, (0..n as u32).collect(), n)
    }

    fn build_blockmodel<C: Communicator>(
        &self,
        comm: &C,
        assignment: Vec<u32>,
        num_blocks: usize,
    ) -> Result<Blockmodel, DistError> {
        dist_blockmodel(comm, self.dg, assignment, num_blocks)
    }

    fn exchange_moves<C: Communicator>(
        &self,
        comm: &C,
        bm: &mut Blockmodel,
        prev: &mut Vec<u32>,
        pending: &[AcceptedMove],
        xstats: &mut ExchangeStats,
    ) -> Result<usize, DistError> {
        sharded_sync(comm, self.dg, bm, prev, pending, xstats)
    }
}

/// EDiSt over sharded ingest with default cancellation and no progress
/// relay — the custom-[`Communicator`] entrypoint mirroring
/// [`crate::edist::edist`]. Collective calls must be matched by every
/// rank; the result is rank-identical.
pub fn edist_sharded<C: Communicator>(
    comm: &C,
    dg: &DistGraph,
    cfg: &EdistConfig,
) -> (RunOutcome, ExchangeStats) {
    edist_sharded_run(
        comm,
        dg,
        cfg,
        &CancelToken::default(),
        &EventRelay::disabled(),
    )
}

/// DC-SBP over sharded ingest with default cancellation and no progress
/// relay — the custom-[`Communicator`] entrypoint mirroring
/// [`crate::dcsbp::dcsbp`].
pub fn dcsbp_sharded<C: Communicator>(comm: &C, dg: &DistGraph, cfg: &DcsbpConfig) -> RunOutcome {
    dcsbp_sharded_run(
        comm,
        dg,
        cfg,
        &CancelToken::default(),
        &EventRelay::disabled(),
    )
}

/// EDiSt over sharded ingest (see module docs). The ownership comes from
/// the shards themselves — `cfg.ownership` is ignored — so the sweep sets
/// match what the shard planner promised. Collective calls must be
/// matched by every rank.
pub(crate) fn edist_sharded_run<C: Communicator>(
    comm: &C,
    dg: &DistGraph,
    cfg: &EdistConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> (RunOutcome, ExchangeStats) {
    edist_driver(comm, &ShardedData { dg }, cfg, cancel, relay)
}

// --------------------------------------------------------- DC-SBP driver

/// DC-SBP over sharded ingest: per-rank local solves on the induced
/// subgraph of the owned set (fully present locally), root-side combine,
/// and an exact distributed DL — always the "no fine-tune" variant, since
/// fine-tuning would need the whole graph on the root (see module docs).
pub(crate) fn dcsbp_sharded_run<C: Communicator>(
    comm: &C,
    dg: &DistGraph,
    cfg: &DcsbpConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> RunOutcome {
    let rank = comm.rank();
    let n = dg.num_vertices();
    if n == 0 {
        return RunOutcome::empty();
    }
    // The whole collective region runs guarded (coordinated unwind, see
    // `crate::error`): a corrupted cell payload or a peer abort degrades
    // the run instead of crashing the cluster.
    let result = guard_collectives(|| {
        let sub = induced_subgraph(dg.local(), dg.owned());

        relay.emit(ProgressEvent::PhaseStarted { phase: "local-sbp" });
        let mut sub_cfg = cfg.sbp.clone();
        sub_cfg.seed = mix_seed(cfg.sbp.seed, 0xDC00 + rank as u64);
        let local_assignment: Vec<u32> = match cfg.engine {
            Engine::Optimized => {
                let run_cfg = RunConfig {
                    sbp: sub_cfg,
                    cancel: cancel.clone(),
                    ..RunConfig::default()
                };
                solve_sbp(&sub.graph, None, &run_cfg, &mut NoProgress).assignment
            }
            Engine::Naive if cancel.is_cancelled() => vec![0; sub.graph.num_vertices()],
            Engine::Naive => naive_sbp(&sub.graph, &sub_cfg).assignment,
        };

        let payload: Vec<(u32, u32)> = local_assignment
            .iter()
            .enumerate()
            .map(|(v, &b)| (sub.to_global(v as u32), b))
            .collect();
        let gathered = comm.gatherv(0, payload);

        // Root: offset label spaces and compact — pure assignment
        // arithmetic, shared with the monolithic driver so the combine
        // semantics cannot drift (`compact_labels` reproduces exactly the
        // relabeling `Blockmodel::compacted` would apply).
        let root_result = gathered.map(|parts| {
            relay.emit(ProgressEvent::PhaseStarted { phase: "combine" });
            let (combined, width) = combine_parts(parts, n);
            let (compacted, num_blocks) = compact_labels(combined, width);
            (compacted, num_blocks, cancel.is_cancelled())
        });
        let (assignment, num_blocks, cancelled): (Vec<u32>, usize, bool) =
            comm.broadcast(0, root_result);

        // Exact DL of the combined partition, computed distributively.
        let bm = dist_blockmodel(comm, dg, assignment, num_blocks)?;
        let description_length = shared_dl(comm, &bm);
        if cancelled {
            relay.emit(ProgressEvent::Cancelled { iteration: 0 });
        } else {
            relay.emit(ProgressEvent::Finished {
                num_blocks,
                description_length,
            });
        }
        Ok(RunOutcome {
            assignment: bm.into_assignment(),
            num_blocks,
            description_length,
            iterations: Vec::new(),
            cancelled,
            degraded: None,
            virtual_seconds: comm.virtual_time(),
            cluster: None,
            sampled_vertices: None,
        })
    });
    match result {
        Ok(out) => out,
        Err(err) => {
            let reason = abort_schedule(comm, &err);
            let mut out = RunOutcome::empty();
            out.degraded = Some(reason);
            out.virtual_seconds = comm.virtual_time();
            out
        }
    }
}

// ------------------------------------------------------- public runners

/// Which sharded driver [`run_sharded`] launches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShardedBackend {
    /// EDiSt (exact; bit-identical to a monolithic run in the dense
    /// regime — see module docs).
    Edist {
        /// Sweeps between move exchanges (1 = the paper's every-sweep
        /// schedule).
        sync_period: usize,
    },
    /// DC-SBP, always in the "no fine-tune" variant (see module docs).
    DcSbp {
        /// Single-node engine for the per-rank subgraph solves.
        engine: Engine,
    },
}

/// Runs a sharded-ingest cluster over the `.sbps` directory `dir`: one
/// simulated rank per shard, each loading only its own shard (the ingest
/// collectives are part of the run and show up in the returned
/// [`ClusterReport`]). Rank 0's progress events stream to `progress`
/// live; `cfg.cancel` is honoured at the same checkpoints as the
/// monolithic drivers.
///
/// `header` must come from [`sbp_graph::shard::validate_shard_dir`] on
/// the same `dir` —
/// callers always need it anyway (to pick rank counts and reject backend
/// mismatches before spawning anything), so the directory is scanned
/// exactly once per run instead of once per layer. A shard file that
/// disappears or mutates *between* validation and the per-rank load
/// degrades the run ([`sbp_core::run::DegradedReason::ShardLoadFailure`]
/// on the detecting rank) via the coordinated unwind in [`crate::error`]
/// — it never panics the cluster.
///
/// `fault` injects a deterministic fault plan (see [`crate::fault`]) by
/// decorating every rank's communicator with [`FaultComm`]; pass
/// [`FaultPlan::none`] for a clean run.
///
/// Returns the rank-identical outcome plus the ingest report.
pub fn run_sharded(
    dir: &Path,
    header: &ShardHeader,
    backend: ShardedBackend,
    cost: CostModel,
    cfg: &RunConfig,
    fault: &FaultPlan,
    progress: &mut dyn ProgressSink,
) -> (RunOutcome, ShardIngestReport) {
    let ranks = header.shard_count;
    progress.on_event(&ProgressEvent::Started {
        num_vertices: header.num_vertices,
        num_blocks: header.num_vertices,
    });
    progress.on_event(&ProgressEvent::ClusterStarted { ranks });
    let cancel = cfg.cancel.clone();
    let out = run_cluster_streaming(ranks, cost, progress, |comm, relay| {
        if fault.is_empty() {
            sharded_rank_body(comm, dir, backend, cfg, &cancel, relay)
        } else {
            let fc = FaultComm::new(comm, fault.clone());
            sharded_rank_body(&fc, dir, backend, cfg, &cancel, relay)
        }
    });
    let mut report = ClusterReport::from_outcome(&out);
    for rank in &out.ranks {
        report.move_bytes_raw += rank.result.1.move_bytes_raw;
        report.move_bytes_encoded += rank.result.1.move_bytes_encoded;
    }
    // Decorated-communicator clock skew and degraded peers are
    // cluster-wide facts (see `finish_outcome` in `crate::solver`).
    let driver_makespan = out
        .ranks
        .iter()
        .map(|r| r.result.0.virtual_seconds)
        .fold(0.0, f64::max);
    report.makespan = report.makespan.max(driver_makespan);
    let cascade = out.ranks.iter().find_map(|r| r.result.0.degraded);
    let rank0 = out.ranks.into_iter().next().expect("at least one rank");
    let (mut outcome, _, ingest) = rank0.result;
    outcome.degraded = outcome.degraded.or(cascade);
    outcome.virtual_seconds = report.makespan;
    outcome.cluster = Some(report);
    (outcome, ingest)
}

/// One rank's whole sharded run: guarded ingest, then the backend driver.
/// Generic over the communicator so [`run_sharded`] can interpose
/// [`FaultComm`] without a second copy of the body, and `pub(crate)` so
/// the real-cluster harness in [`crate::tcprun`] runs the *identical*
/// body over a TCP communicator.
pub(crate) fn sharded_rank_body<C: Communicator>(
    comm: &C,
    dir: &Path,
    backend: ShardedBackend,
    cfg: &RunConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> (RunOutcome, ExchangeStats, ShardIngestReport) {
    // The ingest itself runs guarded: a rank whose shard file fails to
    // read (or that observes a peer's ingest failure) poisons the
    // schedule and returns a degraded empty outcome instead of
    // panicking the cluster.
    let dg = match guard_collectives(|| load_dist_graph(comm, dir)) {
        Ok(dg) => dg,
        Err(err) => {
            let reason = abort_schedule(comm, &err);
            let mut out = RunOutcome::empty();
            out.degraded = Some(reason);
            out.virtual_seconds = comm.virtual_time();
            return (out, ExchangeStats::default(), ShardIngestReport::default());
        }
    };
    let report = *dg.report();
    let (outcome, xstats) = match backend {
        ShardedBackend::Edist { sync_period } => {
            let ecfg = EdistConfig {
                sbp: cfg.sbp.clone(),
                ownership: dg.strategy(),
                sync_period,
                checkpoint: cfg.checkpoint.clone(),
                resume: cfg.resume.clone(),
            };
            edist_sharded_run(comm, &dg, &ecfg, cancel, relay)
        }
        ShardedBackend::DcSbp { engine } => {
            let dcfg = DcsbpConfig {
                sbp: cfg.sbp.clone(),
                engine,
                skip_finetune: true,
            };
            (
                dcsbp_sharded_run(comm, &dg, &dcfg, cancel, relay),
                ExchangeStats::default(),
            )
        }
    };
    (outcome, xstats, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Edist;
    use sbp_core::run::Solver;
    use sbp_core::SbpConfig;
    use sbp_graph::fixtures::two_cliques;
    use sbp_graph::shard::{shard_graph, validate_shard_dir};
    use sbp_graph::OwnershipStrategy;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sharded_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Validate-then-run, as every real caller does.
    fn run(
        dir: &std::path::Path,
        backend: ShardedBackend,
        cfg: &RunConfig,
    ) -> (RunOutcome, ShardIngestReport) {
        let header = validate_shard_dir(dir).expect("coherent shard dir");
        run_sharded(
            dir,
            &header,
            backend,
            CostModel::zero(),
            cfg,
            &FaultPlan::none(),
            &mut NoProgress,
        )
    }

    #[test]
    fn sharded_edist_recovers_two_cliques() {
        let g = two_cliques(8);
        let dir = temp_dir("recover");
        shard_graph(&g, &dir, 2, OwnershipStrategy::SortedBalanced).unwrap();
        let (out, ingest) = run(
            &dir,
            ShardedBackend::Edist { sync_period: 1 },
            &RunConfig::seeded(7),
        );
        assert_eq!(out.num_blocks, 2);
        assert_eq!(out.assignment[0], out.assignment[7]);
        assert_ne!(out.assignment[0], out.assignment[8]);
        assert_eq!(ingest.total_arcs, g.num_arcs());
        let rep = out.cluster.expect("cluster report");
        assert_eq!(rep.ranks, 2);
        assert!(rep.move_bytes_encoded <= rep.move_bytes_raw);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_edist_is_bit_identical_to_monolithic() {
        // Dense regime (V ≤ 64): the sharded cell-delta maintenance must
        // reproduce the monolithic trajectory bit for bit, at every rank
        // count and under both ownership schemes.
        let g = two_cliques(8);
        for strategy in [OwnershipStrategy::Modulo, OwnershipStrategy::SortedBalanced] {
            for ranks in [1usize, 2, 4] {
                let dir = temp_dir(&format!("bitid_{ranks}_{}", strategy.code()));
                shard_graph(&g, &dir, ranks, strategy).unwrap();
                let cfg = RunConfig::seeded(42);
                let (sharded, _) = run(&dir, ShardedBackend::Edist { sync_period: 1 }, &cfg);
                let mono = Edist {
                    ranks,
                    cost: CostModel::zero(),
                    ownership: strategy,
                    sync_period: 1,
                    fault: crate::fault::FaultPlan::none(),
                }
                .solve(&g, &RunConfig::seeded(42), &mut NoProgress);
                assert_eq!(sharded.assignment, mono.assignment, "{strategy:?}×{ranks}");
                assert_eq!(sharded.num_blocks, mono.num_blocks);
                assert_eq!(
                    sharded.description_length.to_bits(),
                    mono.description_length.to_bits(),
                    "{strategy:?}×{ranks}: DL must match to the last bit"
                );
                assert_eq!(sharded.iterations.len(), mono.iterations.len());
                for (a, b) in sharded.iterations.iter().zip(mono.iterations.iter()) {
                    assert_eq!(a.dl.to_bits(), b.dl.to_bits());
                    assert_eq!(a.sweeps, b.sweeps);
                    assert_eq!(a.moves, b.moves);
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn sharded_dcsbp_runs_and_reports() {
        let g = two_cliques(8);
        let dir = temp_dir("dcsbp");
        shard_graph(&g, &dir, 2, OwnershipStrategy::Modulo).unwrap();
        let (out, ingest) = run(
            &dir,
            ShardedBackend::DcSbp {
                engine: Engine::Optimized,
            },
            &RunConfig::seeded(1),
        );
        assert_eq!(out.assignment.len(), 16);
        assert!(out.num_blocks >= 1);
        assert!(out
            .assignment
            .iter()
            .all(|&b| (b as usize) < out.num_blocks));
        assert_eq!(ingest.ranks, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_shard_dir_fails_validation_before_spawning() {
        // Callers must validate first; an empty directory never reaches
        // run_sharded.
        let dir = temp_dir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(validate_shard_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_cancelled_sharded_run_aborts_consistently() {
        let g = two_cliques(6);
        let dir = temp_dir("cancel");
        shard_graph(&g, &dir, 3, OwnershipStrategy::SortedBalanced).unwrap();
        let cfg = RunConfig {
            sbp: SbpConfig::default(),
            cancel: CancelToken::new(),
            ..RunConfig::default()
        };
        cfg.cancel.cancel();
        let (out, _) = run(&dir, ShardedBackend::Edist { sync_period: 1 }, &cfg);
        assert!(out.cancelled);
        assert_eq!(out.num_blocks, 12, "identity bracket entry comes back");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Wire encodings for EDiSt's collective payloads, built on the shared
//! [`sbp_graph::varint`] codec.
//!
//! Three payload kinds exist, and since the single-payload sync they all
//! travel in **one** allgather per sync point (framed by
//! `concat_sections` with a tiny varint length header):
//!
//! * **Move lists** `(vertex, to)` — delta + zigzag + varint. Vertices
//!   inside one rank's sweep arrive roughly in ownership order, so the
//!   deltas are small; block ids are near-repeating. On the paper's
//!   graphs this cuts the exchange to ~2–3 bytes/move from 8 raw.
//! * **Cell deltas** `(row, col, ±weight)` — the sharded driver's
//!   blockmodel synchronization. Sorted by `(row, col)` before encoding,
//!   so the same delta scheme applies; weights are signed (zigzag).
//! * **Cut arcs** `(src, dst, weight)` of moved vertices — the sharded
//!   sync's cross-rank correction inputs (see `sharded.rs`), reusing the
//!   cell codec (sorted unique pairs, positive weights).
//!
//! All decoders are strict (panicking on malformed internal payloads —
//! a malformed collective is a driver bug, not user input), and all
//! roundtrip bit-exactly, which is load-bearing: the move exchange is part
//! of EDiSt's exactness story, so compression must never be lossy.

use sbp_core::mcmc::AcceptedMove;
use sbp_graph::varint::{read_i64, read_u64, write_i64, write_u64};
use sbp_graph::Weight;

/// Bytes a move list would occupy as raw fixed-width pairs — the
/// uncompressed baseline [`sbp_mpi::ClusterReport::move_bytes_raw`]
/// reports.
pub(crate) fn raw_move_bytes(count: usize) -> u64 {
    (count * std::mem::size_of::<AcceptedMove>()) as u64
}

/// Encodes a move list (chronological order preserved).
pub(crate) fn encode_moves(moves: &[AcceptedMove]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(moves.len() * 3 + 4);
    write_u64(&mut buf, moves.len() as u64);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for m in moves {
        write_i64(&mut buf, i64::from(m.v) - prev_v);
        write_i64(&mut buf, i64::from(m.to) - prev_to);
        prev_v = i64::from(m.v);
        prev_to = i64::from(m.to);
    }
    buf
}

/// Decodes a move list produced by [`encode_moves`].
///
/// # Panics
/// Panics on malformed input: collective payloads are produced by this
/// module, so corruption means a driver bug.
pub(crate) fn decode_moves(buf: &[u8]) -> Vec<AcceptedMove> {
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).expect("move payload truncated") as usize;
    let mut moves = Vec::with_capacity(count);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for _ in 0..count {
        prev_v += read_i64(buf, &mut pos).expect("move payload truncated");
        prev_to += read_i64(buf, &mut pos).expect("move payload truncated");
        moves.push(AcceptedMove {
            v: u32::try_from(prev_v).expect("move vertex out of range"),
            to: u32::try_from(prev_to).expect("move target out of range"),
        });
    }
    assert_eq!(pos, buf.len(), "trailing bytes in move payload");
    moves
}

/// Encodes `(row, col, delta)` cells. Cells must be sorted by
/// `(row, col)` with unique keys (the aggregation maps guarantee both).
pub(crate) fn encode_cells(cells: &[(u32, u32, Weight)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(cells.len() * 4 + 4);
    write_u64(&mut buf, cells.len() as u64);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for (i, &(r, c, w)) in cells.iter().enumerate() {
        let (r, c) = (u64::from(r), u64::from(c));
        debug_assert!(i == 0 || (r, c) > (prev_r, prev_c), "cells not sorted");
        if i == 0 {
            write_u64(&mut buf, r);
            write_u64(&mut buf, c);
        } else {
            write_u64(&mut buf, r - prev_r);
            if r == prev_r {
                write_u64(&mut buf, c - prev_c - 1);
            } else {
                write_u64(&mut buf, c);
            }
        }
        write_i64(&mut buf, w);
        (prev_r, prev_c) = (r, c);
    }
    buf
}

/// Decodes a cell list produced by [`encode_cells`].
///
/// # Panics
/// Panics on malformed input (driver bug, see [`decode_moves`]).
pub(crate) fn decode_cells(buf: &[u8]) -> Vec<(u32, u32, Weight)> {
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).expect("cell payload truncated") as usize;
    let mut cells = Vec::with_capacity(count);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for i in 0..count {
        let dr = read_u64(buf, &mut pos).expect("cell payload truncated");
        let c_raw = read_u64(buf, &mut pos).expect("cell payload truncated");
        let (r, c) = if i == 0 {
            (dr, c_raw)
        } else if dr == 0 {
            (prev_r, prev_c + c_raw + 1)
        } else {
            (prev_r + dr, c_raw)
        };
        let w = read_i64(buf, &mut pos).expect("cell payload truncated");
        cells.push((
            u32::try_from(r).expect("cell row out of range"),
            u32::try_from(c).expect("cell col out of range"),
            w,
        ));
        (prev_r, prev_c) = (r, c);
    }
    assert_eq!(pos, buf.len(), "trailing bytes in cell payload");
    cells
}

/// Frames several independently-encoded payloads into one buffer, so a
/// whole sync point ships in a single allgather: a tiny header holding
/// the varint byte length of every section but the last, then the
/// sections back to back (the last runs to the end of the buffer).
pub(crate) fn concat_sections<const N: usize>(sections: [&[u8]; N]) -> Vec<u8> {
    let total: usize = sections.iter().map(|s| s.len()).sum();
    let mut buf = Vec::with_capacity(total + 2 * N);
    for s in &sections[..N - 1] {
        write_u64(&mut buf, s.len() as u64);
    }
    for s in sections {
        buf.extend_from_slice(s);
    }
    buf
}

/// Splits a buffer produced by `concat_sections` back into its `N`
/// sections.
///
/// # Panics
/// Panics on malformed input (driver bug, see [`decode_moves`]).
pub(crate) fn split_sections<const N: usize>(buf: &[u8]) -> [&[u8]; N] {
    let mut pos = 0usize;
    let mut lens = [0usize; N];
    for l in lens.iter_mut().take(N - 1) {
        *l = read_u64(buf, &mut pos).expect("sync header truncated") as usize;
    }
    let mut out = [&buf[..0]; N];
    for (i, slot) in out.iter_mut().enumerate() {
        let end = if i == N - 1 {
            buf.len()
        } else {
            pos.checked_add(lens[i]).expect("sync section overflow")
        };
        assert!(end <= buf.len() && pos <= end, "sync section out of bounds");
        *slot = &buf[pos..end];
        pos = end;
    }
    out
}

/// Per-rank accounting of the compressed move exchange, summed into
/// [`sbp_mpi::ClusterReport`] by the solver wrappers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Bytes the exchange would have sent as raw fixed-width pairs.
    pub move_bytes_raw: u64,
    /// Bytes actually sent after delta + varint encoding.
    pub move_bytes_encoded: u64,
}

impl ExchangeStats {
    pub(crate) fn record(&mut self, moves: usize, encoded: usize) {
        self.move_bytes_raw += raw_move_bytes(moves);
        self.move_bytes_encoded += encoded as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_roundtrip_bit_exact() {
        let moves = vec![
            AcceptedMove { v: 5, to: 2 },
            AcceptedMove { v: 3, to: 2 },
            AcceptedMove { v: 900_000, to: 0 },
            AcceptedMove { v: 0, to: u32::MAX },
        ];
        assert_eq!(decode_moves(&encode_moves(&moves)), moves);
        assert_eq!(decode_moves(&encode_moves(&[])), vec![]);
    }

    #[test]
    fn nearby_moves_compress_well() {
        let moves: Vec<AcceptedMove> = (0..1000)
            .map(|i| AcceptedMove {
                v: i * 3,
                to: (i / 100) % 4,
            })
            .collect();
        let encoded = encode_moves(&moves);
        assert!(
            (encoded.len() as u64) * 2 < raw_move_bytes(moves.len()),
            "{} bytes not < half of {}",
            encoded.len(),
            raw_move_bytes(moves.len())
        );
    }

    #[test]
    fn cells_roundtrip_including_negative_deltas() {
        let cells = vec![
            (0u32, 0u32, -4i64),
            (0, 7, 4),
            (2, 1, i64::MAX),
            (2, 2, i64::MIN + 1),
            (9, 0, 1),
        ];
        assert_eq!(decode_cells(&encode_cells(&cells)), cells);
        assert_eq!(decode_cells(&encode_cells(&[])), vec![]);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_move_payload_panics() {
        let buf = encode_moves(&[AcceptedMove { v: 1, to: 1 }]);
        decode_moves(&buf[..buf.len() - 1]);
    }

    #[test]
    fn sections_roundtrip_through_one_buffer() {
        let moves = encode_moves(&[AcceptedMove { v: 9, to: 1 }, AcceptedMove { v: 2, to: 0 }]);
        let cells = encode_cells(&[(0, 3, -2), (1, 1, 5)]);
        let cuts = encode_cells(&[]);
        let framed = concat_sections([&moves, &cells, &cuts]);
        let [m, ce, cu] = split_sections::<3>(&framed);
        assert_eq!(m, &moves[..]);
        assert_eq!(ce, &cells[..]);
        assert_eq!(cu, &cuts[..]);
        assert_eq!(decode_moves(m).len(), 2);
        assert_eq!(decode_cells(ce), vec![(0, 3, -2), (1, 1, 5)]);
        assert!(decode_cells(cu).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_section_header_panics() {
        let moves = encode_moves(&[]);
        let cells = encode_cells(&[]);
        let mut framed = concat_sections([&moves, &cells, &[][..]]);
        framed[0] = 200; // claim a longer first section than the buffer holds
        let _ = split_sections::<3>(&framed);
    }
}

//! Wire encodings for EDiSt's collective payloads, built on the shared
//! [`sbp_graph::varint`] codec.
//!
//! Two payloads go through the allgathers every sync point:
//!
//! * **Move lists** `(vertex, to)` — delta + zigzag + varint. Vertices
//!   inside one rank's sweep arrive roughly in ownership order, so the
//!   deltas are small; block ids are near-repeating. On the paper's
//!   graphs this cuts the exchange to ~2–3 bytes/move from 8 raw.
//! * **Cell deltas** `(row, col, ±weight)` — the sharded driver's
//!   blockmodel synchronization. Sorted by `(row, col)` before encoding,
//!   so the same delta scheme applies; weights are signed (zigzag).
//!
//! Both decoders are strict (panicking on malformed internal payloads —
//! a malformed collective is a driver bug, not user input), and both
//! roundtrip bit-exactly, which is load-bearing: the move exchange is part
//! of EDiSt's exactness story, so compression must never be lossy.

use sbp_core::mcmc::AcceptedMove;
use sbp_graph::varint::{read_i64, read_u64, write_i64, write_u64};
use sbp_graph::Weight;

/// Bytes a move list would occupy as raw fixed-width pairs — the
/// uncompressed baseline [`sbp_mpi::ClusterReport::move_bytes_raw`]
/// reports.
pub(crate) fn raw_move_bytes(count: usize) -> u64 {
    (count * std::mem::size_of::<AcceptedMove>()) as u64
}

/// Encodes a move list (chronological order preserved).
pub(crate) fn encode_moves(moves: &[AcceptedMove]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(moves.len() * 3 + 4);
    write_u64(&mut buf, moves.len() as u64);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for m in moves {
        write_i64(&mut buf, i64::from(m.v) - prev_v);
        write_i64(&mut buf, i64::from(m.to) - prev_to);
        prev_v = i64::from(m.v);
        prev_to = i64::from(m.to);
    }
    buf
}

/// Decodes a move list produced by [`encode_moves`].
///
/// # Panics
/// Panics on malformed input: collective payloads are produced by this
/// module, so corruption means a driver bug.
pub(crate) fn decode_moves(buf: &[u8]) -> Vec<AcceptedMove> {
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).expect("move payload truncated") as usize;
    let mut moves = Vec::with_capacity(count);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for _ in 0..count {
        prev_v += read_i64(buf, &mut pos).expect("move payload truncated");
        prev_to += read_i64(buf, &mut pos).expect("move payload truncated");
        moves.push(AcceptedMove {
            v: u32::try_from(prev_v).expect("move vertex out of range"),
            to: u32::try_from(prev_to).expect("move target out of range"),
        });
    }
    assert_eq!(pos, buf.len(), "trailing bytes in move payload");
    moves
}

/// Encodes `(row, col, delta)` cells. Cells must be sorted by
/// `(row, col)` with unique keys (the aggregation maps guarantee both).
pub(crate) fn encode_cells(cells: &[(u32, u32, Weight)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(cells.len() * 4 + 4);
    write_u64(&mut buf, cells.len() as u64);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for (i, &(r, c, w)) in cells.iter().enumerate() {
        let (r, c) = (u64::from(r), u64::from(c));
        debug_assert!(i == 0 || (r, c) > (prev_r, prev_c), "cells not sorted");
        if i == 0 {
            write_u64(&mut buf, r);
            write_u64(&mut buf, c);
        } else {
            write_u64(&mut buf, r - prev_r);
            if r == prev_r {
                write_u64(&mut buf, c - prev_c - 1);
            } else {
                write_u64(&mut buf, c);
            }
        }
        write_i64(&mut buf, w);
        (prev_r, prev_c) = (r, c);
    }
    buf
}

/// Decodes a cell list produced by [`encode_cells`].
///
/// # Panics
/// Panics on malformed input (driver bug, see [`decode_moves`]).
pub(crate) fn decode_cells(buf: &[u8]) -> Vec<(u32, u32, Weight)> {
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).expect("cell payload truncated") as usize;
    let mut cells = Vec::with_capacity(count);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for i in 0..count {
        let dr = read_u64(buf, &mut pos).expect("cell payload truncated");
        let c_raw = read_u64(buf, &mut pos).expect("cell payload truncated");
        let (r, c) = if i == 0 {
            (dr, c_raw)
        } else if dr == 0 {
            (prev_r, prev_c + c_raw + 1)
        } else {
            (prev_r + dr, c_raw)
        };
        let w = read_i64(buf, &mut pos).expect("cell payload truncated");
        cells.push((
            u32::try_from(r).expect("cell row out of range"),
            u32::try_from(c).expect("cell col out of range"),
            w,
        ));
        (prev_r, prev_c) = (r, c);
    }
    assert_eq!(pos, buf.len(), "trailing bytes in cell payload");
    cells
}

/// Per-rank accounting of the compressed move exchange, summed into
/// [`sbp_mpi::ClusterReport`] by the solver wrappers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Bytes the exchange would have sent as raw fixed-width pairs.
    pub move_bytes_raw: u64,
    /// Bytes actually sent after delta + varint encoding.
    pub move_bytes_encoded: u64,
}

impl ExchangeStats {
    pub(crate) fn record(&mut self, moves: usize, encoded: usize) {
        self.move_bytes_raw += raw_move_bytes(moves);
        self.move_bytes_encoded += encoded as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_roundtrip_bit_exact() {
        let moves = vec![
            AcceptedMove { v: 5, to: 2 },
            AcceptedMove { v: 3, to: 2 },
            AcceptedMove { v: 900_000, to: 0 },
            AcceptedMove { v: 0, to: u32::MAX },
        ];
        assert_eq!(decode_moves(&encode_moves(&moves)), moves);
        assert_eq!(decode_moves(&encode_moves(&[])), vec![]);
    }

    #[test]
    fn nearby_moves_compress_well() {
        let moves: Vec<AcceptedMove> = (0..1000)
            .map(|i| AcceptedMove {
                v: i * 3,
                to: (i / 100) % 4,
            })
            .collect();
        let encoded = encode_moves(&moves);
        assert!(
            (encoded.len() as u64) * 2 < raw_move_bytes(moves.len()),
            "{} bytes not < half of {}",
            encoded.len(),
            raw_move_bytes(moves.len())
        );
    }

    #[test]
    fn cells_roundtrip_including_negative_deltas() {
        let cells = vec![
            (0u32, 0u32, -4i64),
            (0, 7, 4),
            (2, 1, i64::MAX),
            (2, 2, i64::MIN + 1),
            (9, 0, 1),
        ];
        assert_eq!(decode_cells(&encode_cells(&cells)), cells);
        assert_eq!(decode_cells(&encode_cells(&[])), vec![]);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_move_payload_panics() {
        let buf = encode_moves(&[AcceptedMove { v: 1, to: 1 }]);
        decode_moves(&buf[..buf.len() - 1]);
    }
}

//! Wire encodings for EDiSt's collective payloads, built on the shared
//! [`sbp_graph::varint`] codec.
//!
//! Three payload kinds exist, and since the single-payload sync they all
//! travel in **one** allgather per sync point (framed by
//! `concat_sections` with a tiny varint length header):
//!
//! * **Move lists** `(vertex, to)` — delta + zigzag + varint. Vertices
//!   inside one rank's sweep arrive roughly in ownership order, so the
//!   deltas are small; block ids are near-repeating. On the paper's
//!   graphs this cuts the exchange to ~2–3 bytes/move from 8 raw.
//! * **Cell deltas** `(row, col, ±weight)` — the sharded driver's
//!   blockmodel synchronization. Sorted by `(row, col)` before encoding,
//!   so the same delta scheme applies; weights are signed (zigzag).
//! * **Cut arcs** `(src, dst, weight)` of moved vertices — the sharded
//!   sync's cross-rank correction inputs (see `sharded.rs`), reusing the
//!   cell codec (sorted unique pairs, positive weights).
//!
//! All decoders are **strict and fallible**: malformed input returns a
//! typed [`DecodeError`], never panics, and never allocates beyond the
//! declared decode limits — every element count is checked against the
//! bytes actually remaining *before* the output vector is sized, and
//! section headers are bounds-checked before slicing. A decode failure
//! in a live cluster (a corrupted frame, a hostile peer once a real
//! transport exists) aborts the schedule coordinately instead of
//! crashing the rank — see `crate::error`. All codecs roundtrip
//! bit-exactly, which is load-bearing: the move exchange is part of
//! EDiSt's exactness story, so compression must never be lossy.

use crate::error::DecodeError;
use sbp_core::mcmc::AcceptedMove;
use sbp_graph::varint::{read_i64, read_u64, write_i64, write_u64};
use sbp_graph::Weight;

/// Section framing, re-exported from [`sbp_graph::frame`] (shared with
/// the TCP transport's handshake frames): [`concat_sections`] packs a
/// whole sync point into one allgather payload, [`split_sections`]
/// strictly unpacks it, and [`MAX_SECTIONS`] caps the header walk.
pub use sbp_graph::frame::{concat_sections, split_sections, MAX_SECTIONS};

/// Bytes a move list would occupy as raw fixed-width pairs — the
/// uncompressed baseline [`sbp_mpi::ClusterReport::move_bytes_raw`]
/// reports.
pub(crate) fn raw_move_bytes(count: usize) -> u64 {
    (count * std::mem::size_of::<AcceptedMove>()) as u64
}

/// Encodes a move list (chronological order preserved).
pub fn encode_moves(moves: &[AcceptedMove]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(moves.len() * 3 + 4);
    write_u64(&mut buf, moves.len() as u64);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for m in moves {
        write_i64(&mut buf, i64::from(m.v) - prev_v);
        write_i64(&mut buf, i64::from(m.to) - prev_to);
        prev_v = i64::from(m.v);
        prev_to = i64::from(m.to);
    }
    buf
}

/// Decodes a move list produced by [`encode_moves`]. Strict: rejects
/// truncation, out-of-range values, trailing bytes, and counts that
/// could not fit in the buffer (each move occupies ≥ 2 bytes, checked
/// before allocating).
pub fn decode_moves(buf: &[u8]) -> Result<Vec<AcceptedMove>, DecodeError> {
    const WHAT: &str = "move";
    let truncated = DecodeError::Truncated { what: WHAT };
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).ok_or(truncated.clone())? as usize;
    let max = (buf.len() - pos) / 2;
    if count > max {
        return Err(DecodeError::CountExceedsPayload {
            what: WHAT,
            declared: count as u64,
            max: max as u64,
        });
    }
    let mut moves = Vec::with_capacity(count);
    let (mut prev_v, mut prev_to) = (0i64, 0i64);
    for _ in 0..count {
        prev_v = prev_v
            .checked_add(read_i64(buf, &mut pos).ok_or(truncated.clone())?)
            .ok_or(DecodeError::ValueOutOfRange {
                what: "move vertex",
            })?;
        prev_to = prev_to
            .checked_add(read_i64(buf, &mut pos).ok_or(truncated.clone())?)
            .ok_or(DecodeError::ValueOutOfRange {
                what: "move target",
            })?;
        moves.push(AcceptedMove {
            v: u32::try_from(prev_v).map_err(|_| DecodeError::ValueOutOfRange {
                what: "move vertex",
            })?,
            to: u32::try_from(prev_to).map_err(|_| DecodeError::ValueOutOfRange {
                what: "move target",
            })?,
        });
    }
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes { what: WHAT });
    }
    Ok(moves)
}

/// Encodes `(row, col, delta)` cells. Cells must be sorted by
/// `(row, col)` with unique keys (the aggregation maps guarantee both).
pub fn encode_cells(cells: &[(u32, u32, Weight)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(cells.len() * 4 + 4);
    write_u64(&mut buf, cells.len() as u64);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for (i, &(r, c, w)) in cells.iter().enumerate() {
        let (r, c) = (u64::from(r), u64::from(c));
        debug_assert!(i == 0 || (r, c) > (prev_r, prev_c), "cells not sorted");
        if i == 0 {
            write_u64(&mut buf, r);
            write_u64(&mut buf, c);
        } else {
            write_u64(&mut buf, r - prev_r);
            if r == prev_r {
                write_u64(&mut buf, c - prev_c - 1);
            } else {
                write_u64(&mut buf, c);
            }
        }
        write_i64(&mut buf, w);
        (prev_r, prev_c) = (r, c);
    }
    buf
}

/// Decodes a cell list produced by [`encode_cells`]. Strict and
/// allocation-bounded like [`decode_moves`] (each cell occupies ≥ 3
/// bytes, checked before allocating).
pub fn decode_cells(buf: &[u8]) -> Result<Vec<(u32, u32, Weight)>, DecodeError> {
    const WHAT: &str = "cell";
    let truncated = DecodeError::Truncated { what: WHAT };
    let mut pos = 0usize;
    let count = read_u64(buf, &mut pos).ok_or(truncated.clone())? as usize;
    let max = (buf.len() - pos) / 3;
    if count > max {
        return Err(DecodeError::CountExceedsPayload {
            what: WHAT,
            declared: count as u64,
            max: max as u64,
        });
    }
    let mut cells = Vec::with_capacity(count);
    let (mut prev_r, mut prev_c) = (0u64, 0u64);
    for i in 0..count {
        let dr = read_u64(buf, &mut pos).ok_or(truncated.clone())?;
        let c_raw = read_u64(buf, &mut pos).ok_or(truncated.clone())?;
        let out_of_range = |what| DecodeError::ValueOutOfRange { what };
        let (r, c) = if i == 0 {
            (dr, c_raw)
        } else if dr == 0 {
            (
                prev_r,
                prev_c
                    .checked_add(c_raw)
                    .and_then(|c| c.checked_add(1))
                    .ok_or(out_of_range("cell col"))?,
            )
        } else {
            (
                prev_r.checked_add(dr).ok_or(out_of_range("cell row"))?,
                c_raw,
            )
        };
        let w = read_i64(buf, &mut pos).ok_or(truncated.clone())?;
        cells.push((
            u32::try_from(r).map_err(|_| out_of_range("cell row"))?,
            u32::try_from(c).map_err(|_| out_of_range("cell col"))?,
            w,
        ));
        (prev_r, prev_c) = (r, c);
    }
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes { what: WHAT });
    }
    Ok(cells)
}

/// Per-rank accounting of the compressed move exchange, summed into
/// [`sbp_mpi::ClusterReport`] by the solver wrappers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Bytes the exchange would have sent as raw fixed-width pairs.
    pub move_bytes_raw: u64,
    /// Bytes actually sent after delta + varint encoding.
    pub move_bytes_encoded: u64,
}

impl ExchangeStats {
    pub(crate) fn record(&mut self, moves: usize, encoded: usize) {
        self.move_bytes_raw += raw_move_bytes(moves);
        self.move_bytes_encoded += encoded as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_roundtrip_bit_exact() {
        let moves = vec![
            AcceptedMove { v: 5, to: 2 },
            AcceptedMove { v: 3, to: 2 },
            AcceptedMove { v: 900_000, to: 0 },
            AcceptedMove { v: 0, to: u32::MAX },
        ];
        assert_eq!(decode_moves(&encode_moves(&moves)).expect("ok"), moves);
        assert_eq!(decode_moves(&encode_moves(&[])).expect("ok"), vec![]);
    }

    #[test]
    fn nearby_moves_compress_well() {
        let moves: Vec<AcceptedMove> = (0..1000)
            .map(|i| AcceptedMove {
                v: i * 3,
                to: (i / 100) % 4,
            })
            .collect();
        let encoded = encode_moves(&moves);
        assert!(
            (encoded.len() as u64) * 2 < raw_move_bytes(moves.len()),
            "{} bytes not < half of {}",
            encoded.len(),
            raw_move_bytes(moves.len())
        );
    }

    #[test]
    fn cells_roundtrip_including_negative_deltas() {
        let cells = vec![
            (0u32, 0u32, -4i64),
            (0, 7, 4),
            (2, 1, i64::MAX),
            (2, 2, i64::MIN + 1),
            (9, 0, 1),
        ];
        assert_eq!(decode_cells(&encode_cells(&cells)).expect("ok"), cells);
        assert_eq!(decode_cells(&encode_cells(&[])).expect("ok"), vec![]);
    }

    #[test]
    fn truncated_move_payload_errors() {
        let buf = encode_moves(&[AcceptedMove { v: 1, to: 1 }]);
        for cut in 0..buf.len() {
            let r = decode_moves(&buf[..cut]);
            assert!(r.is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn crafted_move_count_is_rejected_before_allocation() {
        // Header declares u64::MAX moves over a 1-byte body: the count
        // check must reject it without sizing a vector from it.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.push(0);
        match decode_moves(&buf) {
            Err(DecodeError::CountExceedsPayload { declared, .. }) => {
                assert_eq!(declared, u64::MAX);
            }
            other => panic!("expected CountExceedsPayload, got {other:?}"),
        }
    }

    #[test]
    fn crafted_cell_count_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 60);
        buf.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            decode_cells(&buf),
            Err(DecodeError::CountExceedsPayload { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = encode_moves(&[AcceptedMove { v: 1, to: 1 }]);
        buf.push(0);
        assert!(matches!(
            decode_moves(&buf),
            Err(DecodeError::TrailingBytes { .. })
        ));
        let mut buf = encode_cells(&[(1, 2, 3)]);
        buf.push(7);
        assert!(matches!(
            decode_cells(&buf),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn sections_roundtrip_through_one_buffer() {
        let moves = encode_moves(&[AcceptedMove { v: 9, to: 1 }, AcceptedMove { v: 2, to: 0 }]);
        let cells = encode_cells(&[(0, 3, -2), (1, 1, 5)]);
        let cuts = encode_cells(&[]);
        let framed = concat_sections([&moves, &cells, &cuts]);
        let [m, ce, cu] = split_sections::<3>(&framed).expect("well-formed");
        assert_eq!(m, &moves[..]);
        assert_eq!(ce, &cells[..]);
        assert_eq!(cu, &cuts[..]);
        assert_eq!(decode_moves(m).expect("ok").len(), 2);
        assert_eq!(decode_cells(ce).expect("ok"), vec![(0, 3, -2), (1, 1, 5)]);
        assert!(decode_cells(cu).expect("ok").is_empty());
    }

    #[test]
    fn oversized_section_header_errors() {
        let moves = encode_moves(&[]);
        let cells = encode_cells(&[]);
        let mut framed = concat_sections([&moves, &cells, &[][..]]);
        framed[0] = 200; // claim a longer first section than the buffer holds
        assert!(matches!(
            split_sections::<3>(&framed),
            Err(DecodeError::SectionOutOfBounds { .. })
        ));
    }

    #[test]
    fn truncated_section_header_errors() {
        assert!(matches!(
            split_sections::<3>(&[]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn overflowing_section_header_errors() {
        // A header whose declared length wraps pos + len past usize::MAX.
        let mut framed = Vec::new();
        write_u64(&mut framed, u64::MAX);
        write_u64(&mut framed, 0);
        framed.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            split_sections::<3>(&framed),
            Err(DecodeError::SectionOutOfBounds { .. })
        ));
    }
}

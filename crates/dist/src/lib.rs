//! # sbp-dist — the distributed stochastic block partitioning algorithms
//!
//! The two cluster-scale algorithms the paper evaluates, written against
//! the [`sbp_mpi::Communicator`] trait so they run identically on the
//! in-process thread cluster or (in principle) real MPI bindings:
//!
//! * [`dcsbp`] — divide-and-conquer SBP (paper Alg. 3): round-robin vertex
//!   distribution, independent per-rank inference on *induced* subgraphs
//!   (the step that creates island vertices on sparse graphs), gather to
//!   the root, label-offset combination, and root-side fine-tuning.
//! * [`edist`] — EDiSt (paper Algs. 4–5): the graph and blockmodel are
//!   replicated on every rank while the *work* (merge proposals, MCMC
//!   vertex sweeps) is partitioned by ownership; allgathered candidate
//!   lists and move lists keep every rank's blockmodel bit-identical, so
//!   the distributed algorithm is **exact** — it explores the same state
//!   space as sequential SBP regardless of rank count.
//!
//! [`run_dcsbp_cluster`] / [`run_edist_cluster`] wrap the algorithms in a
//! [`sbp_mpi::ThreadCluster`] and report the BSP makespan plus
//! communication statistics as a [`ClusterReport`].

pub mod dcsbp;
pub mod edist;
pub mod ownership;

pub use dcsbp::{dcsbp, run_dcsbp_cluster, DcsbpConfig, DcsbpResult, Engine};
pub use edist::{edist, run_edist_cluster, EdistConfig, EdistResult};
pub use ownership::{balanced_ownership, modulo_ownership, owned_blocks, OwnershipStrategy};

use sbp_mpi::ClusterOutcome;

/// Aggregate communication/runtime report of a simulated cluster run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterReport {
    /// BSP makespan: the maximum final virtual clock across ranks (s).
    pub makespan: f64,
    /// Collectives each rank participated in.
    pub collectives: u64,
    /// Total payload bytes moved across the simulated interconnect.
    pub total_bytes: u64,
    /// Number of ranks.
    pub ranks: usize,
}

impl ClusterReport {
    /// Summarizes a [`ClusterOutcome`].
    pub fn from_outcome<R>(out: &ClusterOutcome<R>) -> Self {
        ClusterReport {
            makespan: out.makespan(),
            collectives: out.ranks.first().map_or(0, |r| r.stats.collectives),
            total_bytes: out.total_bytes(),
            ranks: out.ranks.len(),
        }
    }
}

/// SplitMix64-style mixing used to derive per-rank / per-phase RNG streams
/// from the master seed, so simulated rank counts never share a stream.
pub(crate) fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_seeds_differ_per_salt() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(42, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}

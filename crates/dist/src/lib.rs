//! # sbp-dist — the distributed stochastic block partitioning algorithms
//!
//! The two cluster-scale algorithms the paper evaluates, written against
//! the [`sbp_mpi::Communicator`] trait so they run identically on the
//! in-process thread cluster or (in principle) real MPI bindings:
//!
//! * [`mod@dcsbp`] — divide-and-conquer SBP (paper Alg. 3): round-robin vertex
//!   distribution, independent per-rank inference on *induced* subgraphs
//!   (the step that creates island vertices on sparse graphs), gather to
//!   the root, label-offset combination, and root-side fine-tuning.
//! * [`mod@edist`] — EDiSt (paper Algs. 4–5): the graph and blockmodel are
//!   replicated on every rank while the *work* (merge proposals, MCMC
//!   vertex sweeps) is partitioned by ownership; allgathered candidate
//!   lists and move lists keep every rank's blockmodel bit-identical, so
//!   the distributed algorithm is **exact** — it explores the same state
//!   space as sequential SBP regardless of rank count.
//!
//! The preferred entrypoints are the [`Solver`](sbp_core::Solver)
//! backends [`DcSbp`] and [`Edist`] (usually reached through the `edist`
//! facade's `Partitioner` builder): they stream rank 0's progress events
//! to the caller, honour a broadcast-coordinated cancellation token, and
//! return the unified [`sbp_core::RunOutcome`] with a [`ClusterReport`]
//! attached. The legacy [`run_dcsbp_cluster`] / [`run_edist_cluster`]
//! free functions remain as deprecated shims over them.
//!
//! ## Coordinated unwind
//!
//! Failures never panic the cluster or deadlock a collective. Every
//! matched-collective region runs under `error::guard_collectives`; a
//! rank that fails — shard ingest error, malformed peer payload, an
//! injected [`fault::RankDeath`] — poisons its peers through
//! `error::abort_schedule` (waking anyone blocked in a collective)
//! and returns its best-so-far partition with
//! [`sbp_core::RunOutcome::degraded`] set. Peers observe the poison as
//! a typed [`DistError::PeerAborted`] and unwind the same way, so all
//! ranks return. The detecting rank reports the specific
//! [`sbp_core::DegradedReason`]; cascade observers report
//! `RankFailure`. [`fault::FaultComm`] injects deterministic,
//! seed-keyed faults (kill / mangle / delay, counted in collective
//! sync points) to exercise the protocol in tests, and
//! [`checkpoint`] gives rank 0 `.sbpc` snapshots for bit-identical
//! resume after a crash.

pub mod checkpoint;
pub mod dcsbp;
pub mod distgraph;
pub mod edist;
pub mod error;
pub mod exchange;
pub mod fault;
pub mod ownership;
pub mod sharded;
pub mod solver;
pub mod tcprun;

#[allow(deprecated)]
pub use dcsbp::run_dcsbp_cluster;
pub use dcsbp::{dcsbp, DcsbpConfig, DcsbpResult, Engine};
pub use distgraph::{load_dist_graph, DistGraph, ShardIngestReport};
#[allow(deprecated)]
pub use edist::run_edist_cluster;
pub use edist::{edist, EdistConfig, EdistResult};
pub use error::{DecodeError, DistError};
pub use exchange::ExchangeStats;
pub use fault::{Fault, FaultComm, FaultPlan, RankDeath};
pub use ownership::{balanced_ownership, modulo_ownership, owned_blocks, OwnershipStrategy};
pub use sbp_mpi::ClusterReport;
pub use sharded::{dcsbp_sharded, edist_sharded, run_sharded, ShardedBackend};
pub use solver::{register_solvers, DcSbp, Edist};
pub use tcprun::{run_tcp_rank, TcpRun, TcpSource};

/// SplitMix64-style mixing used to derive per-rank / per-phase RNG streams
/// from the master seed, so simulated rank counts never share a stream.
pub(crate) fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_seeds_differ_per_salt() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(42, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}

//! Distributed checkpoint integration: rank 0 writes the shared
//! `.sbpc` snapshot (see [`sbp_core::checkpoint`] for the format) at the
//! golden-loop sync boundaries of the EDiSt driver.
//!
//! Only rank 0 touches the filesystem — every rank holds the identical
//! bracket/trajectory state (the bit-identity contract), so one writer
//! suffices and the snapshot is valid for resuming at *any* rank count,
//! monolithic or sharded. Writes are best-effort by the same contract as
//! the single-node engine: a failed write must not abort the run it is
//! meant to protect (the API layer pre-validates the path instead).

use sbp_core::checkpoint::{strategy_tag, CheckpointState};
use sbp_core::run::CheckpointSpec;
use sbp_core::{GoldenBracket, IterationStat, SbpConfig};

/// Builds the snapshot of the distributed golden loop. Unlike
/// [`sbp_core::checkpoint_state`] this takes the graph fingerprint as
/// plain numbers, because the sharded plane has no monolithic
/// [`sbp_graph::Graph`] to ask — `num_vertices` and `total_edge_weight`
/// must be the *global* figures (identical on every rank).
pub(crate) fn dist_checkpoint_state(
    sbp: &SbpConfig,
    num_vertices: u64,
    total_edge_weight: u64,
    bracket: &GoldenBracket,
    iterations: &[IterationStat],
    next_iter: usize,
) -> CheckpointState {
    let (hi, mid, lo) = bracket.parts();
    CheckpointState {
        seed: sbp.seed,
        strategy_tag: strategy_tag(&sbp.strategy),
        num_vertices,
        total_edge_weight,
        next_iter: next_iter as u64,
        iterations: iterations.to_vec(),
        hi: hi.cloned(),
        mid: mid.cloned(),
        lo: lo.cloned(),
    }
}

/// Writes a checkpoint if `spec` asks for one at this boundary.
/// Call on rank 0 only; best-effort (see module docs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn maybe_checkpoint(
    spec: Option<&CheckpointSpec>,
    sbp: &SbpConfig,
    num_vertices: u64,
    total_edge_weight: u64,
    bracket: &GoldenBracket,
    iterations: &[IterationStat],
    next_iter: usize,
) {
    let Some(spec) = spec else {
        return;
    };
    if !next_iter.is_multiple_of(spec.every.max(1)) {
        return;
    }
    let state = dist_checkpoint_state(
        sbp,
        num_vertices,
        total_edge_weight,
        bracket,
        iterations,
        next_iter,
    );
    let _ = state.write_to(&spec.path);
}

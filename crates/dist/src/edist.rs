//! EDiSt — exact distributed stochastic block partitioning (paper
//! Algs. 4–5).
//!
//! Every rank holds the full graph and a replica of the blockmodel; only
//! the *work* is partitioned. Each iteration of the golden-ratio search
//! runs:
//!
//! 1. **Distributed merge phase** (Alg. 4): rank `r` evaluates merge
//!    proposals for the blocks it owns (`b mod n == r`), the candidate
//!    lists are allgathered, and every rank applies the identical best
//!    merge set (the candidate order is normalized by `apply_merges`'
//!    total-order sort, so replicas stay bit-identical).
//! 2. **Distributed MCMC phase** (Alg. 5): rank `r` sweeps the vertices it
//!    owns against its replica, accepted moves are allgathered every
//!    `sync_period` sweeps, and each rank applies its peers' moves. Since
//!    a vertex is moved only by its owner, the post-sync assignment — and
//!    therefore the blockmodel, a pure function of the assignment — is
//!    identical on every rank.
//!
//! **Rank-count-invariant randomness.** Every RNG stream is derived from
//! the master seed and a *vertex or block key* (via
//! [`sbp_core::sbp::merge_phase_seed`] / [`sbp_core::sbp::mcmc_phase_seed`]
//! and the `(seed, sweep, vertex)` keying inside the sweeps) — never from
//! the rank id. A proposal therefore draws the same randomness no matter
//! which rank evaluates it, so a single-rank EDiSt run is bit-identical
//! to sequential SBP, and under the frozen-state `Batch` strategy the
//! whole trajectory is bit-identical across rank counts (see the
//! backend-equivalence tests in the facade crate).
//!
//! Convergence and cancellation decisions use values broadcast from rank
//! 0. Since canonical sparse-line iteration (`sbp_core::line`), replicas
//! holding the same integer state compute bit-identical floating-point
//! sums in both storage regimes, so the broadcast is no longer papering
//! over layout-dependent last-bit drift — it remains because a
//! cancellation racing a collective must never make ranks disagree on
//! control flow (that would mismatch the collective schedule), and as
//! defense in depth for the DL.

use crate::checkpoint::maybe_checkpoint;
use crate::error::{abort_schedule, guard_collectives, DistError};
use crate::exchange::{decode_moves, encode_moves, ExchangeStats};
use crate::ownership::{owned_blocks, OwnershipStrategy};
use crate::solver::EventRelay;
use sbp_core::checkpoint::CheckpointState;
use sbp_core::golden::{BracketEntry, GoldenBracket, NextStep};
use sbp_core::hybrid::{batch_sweep, hybrid_sweep};
use sbp_core::mcmc::{keyed_mh_sweep, AcceptedMove, ConvergenceCheck, SweepOutcome};
use sbp_core::merge::{apply_merges, propose_merges, MergeCandidate};
use sbp_core::run::{
    CancelToken, CheckpointSpec, DegradedReason, NoProgress, ProgressEvent, RunConfig, RunOutcome,
    Solver,
};
use sbp_core::sbp::{mcmc_phase_seed, merge_phase_seed};
use sbp_core::{Blockmodel, IterationStat, McmcStrategy, SbpConfig};
use sbp_graph::{Graph, Vertex};
use sbp_mpi::{ClusterReport, Communicator, CostModel};
use std::sync::Arc;

/// EDiSt configuration.
#[derive(Clone, Debug)]
pub struct EdistConfig {
    /// Hyper-parameters of the underlying SBP search.
    pub sbp: SbpConfig,
    /// Vertex-ownership scheme for the MCMC phase.
    pub ownership: OwnershipStrategy,
    /// Sweeps between move exchanges (1 = the paper's every-sweep
    /// allgather; larger values trade staleness for fewer collectives).
    pub sync_period: usize,
    /// Write an `.sbpc` snapshot (rank 0 only) at matching golden-loop
    /// boundaries.
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from a previously-loaded snapshot instead of the identity
    /// partition. Must already be validated against this run's graph,
    /// seed, and strategy (the API layer does this).
    pub resume: Option<CheckpointState>,
}

impl Default for EdistConfig {
    fn default() -> Self {
        EdistConfig {
            sbp: SbpConfig::default(),
            ownership: OwnershipStrategy::SortedBalanced,
            sync_period: 1,
            checkpoint: None,
            resume: None,
        }
    }
}

/// EDiSt result (identical on every rank).
#[derive(Clone, Debug)]
pub struct EdistResult {
    /// Inferred block assignment.
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
}

/// Broadcasts rank 0's description length so every replica records the
/// bit-identical value (see module docs).
pub(crate) fn shared_dl<C: Communicator>(comm: &C, bm: &Blockmodel) -> f64 {
    comm.broadcast(0, (comm.rank() == 0).then(|| bm.description_length()))
}

/// Broadcasts rank 0's view of the cancellation token so every rank
/// takes the same branch at the same collective.
pub(crate) fn shared_cancelled<C: Communicator>(comm: &C, cancel: &CancelToken) -> bool {
    comm.broadcast(0, (comm.rank() == 0).then(|| cancel.is_cancelled()))
}

/// Runs EDiSt on this rank; collective calls must be matched by every rank
/// of `comm`. Returns the same result on every rank.
pub fn edist<C: Communicator>(comm: &C, graph: &Graph, cfg: &EdistConfig) -> EdistResult {
    let (out, _) = edist_run(
        comm,
        graph,
        cfg,
        &CancelToken::default(),
        &EventRelay::disabled(),
    );
    EdistResult {
        assignment: out.assignment,
        num_blocks: out.num_blocks,
        description_length: out.description_length,
    }
}

/// The data plane the shared EDiSt driver runs against.
///
/// EDiSt's *control flow* — golden search, distributed merge phase, sweep
/// and sync schedule, convergence rule, broadcast-coordinated
/// cancellation, event emission — is identical whether the graph is fully
/// replicated (this module) or sharded per rank
/// ([`crate::sharded`]); only how the replicated blockmodel is (re)built
/// and how peers' moves reach the replica differ. Keeping the loop in one
/// place means a change to the collective schedule cannot desynchronize
/// one driver but not the other.
pub(crate) trait EdistData {
    /// Global vertex count.
    fn num_vertices(&self) -> usize;
    /// Global total edge weight (the checkpoint fingerprint — must match
    /// what a monolithic view of the graph would report).
    fn total_edge_weight(&self) -> i64;
    /// Graph used for owned-vertex sweeps and own-move application. The
    /// sharded plane's graph is complete only for owned vertices — the
    /// sweeps never walk further.
    fn sweep_graph(&self) -> &Graph;
    /// Vertices this rank sweeps.
    fn my_vertices(&self) -> &[Vertex];
    /// The starting blockmodel (compacted identity partition); identical
    /// on every rank.
    fn start_blockmodel<C: Communicator>(&self, comm: &C) -> Result<Blockmodel, DistError>;
    /// The replicated blockmodel implied by `assignment`; identical on
    /// every rank (a collective on the sharded plane, which can fail on
    /// a corrupted cell payload).
    fn build_blockmodel<C: Communicator>(
        &self,
        comm: &C,
        assignment: Vec<u32>,
        num_blocks: usize,
    ) -> Result<Blockmodel, DistError>;
    /// Executes one sync point: ships this rank's pending moves (plus
    /// whatever else the plane needs — the sharded plane piggybacks its
    /// cell-delta and cut-arc sections onto the same buffer, so every
    /// sync costs **one** allgather on either plane), applies the
    /// gathered peer moves to the replica, and returns the total move
    /// count across ranks. `prev` holds the globally-agreed assignment
    /// at the previous sync and must be advanced (the replicated plane
    /// can ignore it). `xstats` records the move-section bytes. A
    /// malformed peer payload surfaces as a [`DistError`] — the driver
    /// aborts the schedule coordinately rather than panicking.
    fn exchange_moves<C: Communicator>(
        &self,
        comm: &C,
        bm: &mut Blockmodel,
        prev: &mut Vec<u32>,
        pending: &[AcceptedMove],
        xstats: &mut ExchangeStats,
    ) -> Result<usize, DistError>;
}

/// The fully-replicated data plane: every rank holds the whole graph
/// (the paper's EDiSt deployment).
struct ReplicatedData<'a> {
    graph: &'a Graph,
    mine: Vec<Vertex>,
}

impl EdistData for ReplicatedData<'_> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn total_edge_weight(&self) -> i64 {
        self.graph.total_edge_weight()
    }

    fn sweep_graph(&self) -> &Graph {
        self.graph
    }

    fn my_vertices(&self) -> &[Vertex] {
        &self.mine
    }

    fn start_blockmodel<C: Communicator>(&self, _comm: &C) -> Result<Blockmodel, DistError> {
        // Identical starting point to the single-node engine: the
        // compacted identity partition.
        let n = self.graph.num_vertices();
        Ok(
            Blockmodel::from_assignment(self.graph, (0..n as u32).collect(), n)
                .compacted(self.graph),
        )
    }

    fn build_blockmodel<C: Communicator>(
        &self,
        _comm: &C,
        assignment: Vec<u32>,
        num_blocks: usize,
    ) -> Result<Blockmodel, DistError> {
        Ok(Blockmodel::from_assignment(
            self.graph, assignment, num_blocks,
        ))
    }

    fn exchange_moves<C: Communicator>(
        &self,
        comm: &C,
        bm: &mut Blockmodel,
        _prev: &mut Vec<u32>,
        pending: &[AcceptedMove],
        xstats: &mut ExchangeStats,
    ) -> Result<usize, DistError> {
        let payload = encode_moves(pending);
        xstats.record(pending.len(), payload.len());
        let gathered = comm
            .allgatherv(payload)
            .into_iter()
            .map(|bytes| decode_moves(&bytes))
            .collect::<Result<Vec<Vec<AcceptedMove>>, _>>()?;
        let mut moves = 0usize;
        for (from_rank, peer_moves) in gathered.into_iter().enumerate() {
            moves += peer_moves.len();
            if from_rank == comm.rank() {
                continue; // already applied during the sweep
            }
            for m in peer_moves {
                bm.move_vertex(self.graph, m.v, m.to);
            }
        }
        Ok(moves)
    }
}

/// The full monolithic EDiSt driver: golden-ratio search with distributed
/// merge and MCMC phases, per-iteration trajectory recording, rank-0
/// progress relay, and broadcast-coordinated cancellation. Also returns
/// this rank's move-exchange byte accounting (raw vs varint-encoded).
pub(crate) fn edist_run<C: Communicator>(
    comm: &C,
    graph: &Graph,
    cfg: &EdistConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> (RunOutcome, ExchangeStats) {
    let ownership = cfg.ownership.partition(graph, comm.size());
    let data = ReplicatedData {
        graph,
        mine: ownership[comm.rank()].clone(),
    };
    edist_driver(comm, &data, cfg, cancel, relay)
}

/// What one guarded golden-loop iteration decided.
enum IterStep {
    /// The broadcast cancellation decision fired before the iteration.
    Cancelled,
    /// The bracket converged; `best` is the final answer.
    Finished(BracketEntry),
    /// A merge+MCMC iteration was recorded into the bracket.
    Recorded {
        /// The MCMC phase observed a broadcast cancellation mid-iteration.
        phase_cancelled: bool,
    },
}

/// The shared EDiSt control loop over any [`EdistData`] plane.
///
/// ## Coordinated unwind
///
/// Every collective region runs under [`guard_collectives`]: a local
/// failure (malformed peer payload, injected [`crate::fault::RankDeath`])
/// or an observed peer abort ([`sbp_mpi::PeerAborted`]) surfaces as a
/// [`DistError`] instead of a panic. The failing rank then poisons its
/// peers via [`abort_schedule`] — waking anyone blocked in a collective —
/// and returns its best-so-far bracket entry with
/// [`RunOutcome::degraded`] set. The rank that *detects* a failure
/// reports its specific [`DegradedReason`]; ranks that merely observe
/// the cascade report [`DegradedReason::RankFailure`].
///
/// ## Checkpoint / resume
///
/// With `cfg.checkpoint` set, rank 0 snapshots the bracket, trajectory
/// and next-iteration index after every `every`-th recorded iteration
/// (see [`crate::checkpoint`]). With `cfg.resume` set, the loop starts
/// from the snapshot instead of the identity partition; because all RNG
/// streams are keyed by `(seed, iteration, sweep, vertex)`, the resumed
/// trajectory is bit-identical to the uninterrupted one.
pub(crate) fn edist_driver<C: Communicator, D: EdistData>(
    comm: &C,
    data: &D,
    cfg: &EdistConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> (RunOutcome, ExchangeStats) {
    let mut xstats = ExchangeStats::default();
    if data.num_vertices() == 0 {
        return (RunOutcome::empty(), xstats);
    }
    let (rank, size) = (comm.rank(), comm.size());

    let init = guard_collectives(|| {
        if let Some(state) = &cfg.resume {
            // The snapshot was validated by the caller; every rank holds
            // the same one, so no collective is needed here.
            Ok((
                state.bracket(cfg.sbp.block_reduction_rate),
                state.iterations.clone(),
                state.next_iter as usize,
            ))
        } else {
            let start = data.start_blockmodel(comm)?;
            let dl = shared_dl(comm, &start);
            let mut bracket = GoldenBracket::new(cfg.sbp.block_reduction_rate);
            bracket.seed(BracketEntry {
                assignment: start.assignment().to_vec(),
                num_blocks: start.num_blocks(),
                dl,
            });
            Ok((bracket, Vec::new(), 0))
        }
    });
    let (mut bracket, mut iterations, first_iter) = match init {
        Ok(t) => t,
        Err(err) => {
            let reason = abort_schedule(comm, &err);
            let mut out = RunOutcome::empty();
            out.degraded = Some(reason);
            out.virtual_seconds = comm.virtual_time();
            return (out, xstats);
        }
    };
    let mut cancelled = false;
    let mut degraded: Option<DegradedReason> = None;

    for iter_idx in first_iter..cfg.sbp.max_iterations {
        let step = guard_collectives(|| {
            if shared_cancelled(comm, cancel) {
                return Ok(IterStep::Cancelled);
            }
            match bracket.next() {
                NextStep::Done(best) => Ok(IterStep::Finished(best)),
                NextStep::Continue {
                    start,
                    blocks_to_merge,
                } => {
                    let from_blocks = start.num_blocks;
                    let bm = data.build_blockmodel(comm, start.assignment, start.num_blocks)?;

                    // ---- distributed merge phase (Alg. 4) ----
                    // Solver-layer metrics are recorded by rank 0 only:
                    // every rank walks the same replicated golden loop,
                    // so an ungated count would be multiplied by the
                    // rank count. Observe-only — no collective is added.
                    let merge_clock = (rank == 0).then(sbp_core::sbp::phase_clock).flatten();
                    let my_blocks = owned_blocks(bm.num_blocks(), rank, size);
                    let merge_seed = merge_phase_seed(cfg.sbp.seed, iter_idx);
                    let mine = propose_merges(
                        &bm,
                        &my_blocks,
                        cfg.sbp.merge_proposals_per_block,
                        merge_seed,
                    );
                    let candidates: Vec<MergeCandidate> =
                        comm.allgatherv(mine).into_iter().flatten().collect();
                    let (assignment, num_blocks) = apply_merges(&bm, candidates, blocks_to_merge);
                    let mut bm = data.build_blockmodel(comm, assignment, num_blocks)?;
                    sbp_core::sbp::record_merge_timing(merge_clock);
                    relay.emit(ProgressEvent::Merged {
                        iteration: iter_idx,
                        from_blocks,
                        num_blocks: bm.num_blocks(),
                    });

                    // ---- distributed MCMC phase (Alg. 5) ----
                    let threshold = if bracket.established() {
                        cfg.sbp.threshold_post
                    } else {
                        cfg.sbp.threshold_pre
                    };
                    let mcmc_clock = (rank == 0).then(sbp_core::sbp::phase_clock).flatten();
                    let phase = mcmc_phase_distributed(
                        comm,
                        data,
                        &mut bm,
                        cfg,
                        threshold,
                        iter_idx,
                        cancel,
                        relay,
                        &mut xstats,
                    )?;
                    sbp_core::sbp::record_mcmc_timing(mcmc_clock);
                    if rank == 0 {
                        sbp_core::sbp::record_iteration();
                        sbp_core::sbp::observe_block_sizes(&bm);
                    }

                    let entry = BracketEntry {
                        assignment: bm.assignment().to_vec(),
                        num_blocks: bm.num_blocks(),
                        dl: phase.dl,
                    };
                    let stat = IterationStat {
                        num_blocks: entry.num_blocks,
                        dl: entry.dl,
                        sweeps: phase.sweeps,
                        moves: phase.moves,
                    };
                    relay.emit(ProgressEvent::Iteration {
                        iteration: iter_idx,
                        stat: stat.clone(),
                    });
                    iterations.push(stat);
                    bracket.record(entry);
                    Ok(IterStep::Recorded {
                        phase_cancelled: phase.cancelled,
                    })
                }
            }
        });
        match step {
            Ok(IterStep::Cancelled) => {
                cancelled = true;
                relay.emit(ProgressEvent::Cancelled {
                    iteration: iter_idx,
                });
                break;
            }
            Ok(IterStep::Finished(best)) => {
                relay.emit(ProgressEvent::Finished {
                    num_blocks: best.num_blocks,
                    description_length: best.dl,
                });
                return (outcome_from(comm, best, iterations, false, None), xstats);
            }
            Ok(IterStep::Recorded { phase_cancelled }) => {
                if rank == 0 {
                    maybe_checkpoint(
                        cfg.checkpoint.as_ref(),
                        &cfg.sbp,
                        data.num_vertices() as u64,
                        data.total_edge_weight().max(0) as u64,
                        &bracket,
                        &iterations,
                        iter_idx + 1,
                    );
                }
                if phase_cancelled {
                    cancelled = true;
                    relay.emit(ProgressEvent::Cancelled {
                        iteration: iter_idx,
                    });
                    break;
                }
            }
            Err(err) => {
                degraded = Some(abort_schedule(comm, &err));
                break;
            }
        }
    }
    let best = bracket.best().expect("bracket was seeded").clone();
    if !cancelled && degraded.is_none() {
        relay.emit(ProgressEvent::Finished {
            num_blocks: best.num_blocks,
            description_length: best.dl,
        });
    }
    (
        outcome_from(comm, best, iterations, cancelled, degraded),
        xstats,
    )
}

fn outcome_from<C: Communicator>(
    comm: &C,
    best: BracketEntry,
    iterations: Vec<IterationStat>,
    cancelled: bool,
    degraded: Option<DegradedReason>,
) -> RunOutcome {
    RunOutcome {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        description_length: best.dl,
        iterations,
        cancelled,
        degraded,
        virtual_seconds: comm.virtual_time(),
        cluster: None,
        sampled_vertices: None,
    }
}

/// What one distributed MCMC phase produced.
struct DistributedPhase {
    dl: f64,
    sweeps: usize,
    moves: usize,
    cancelled: bool,
}

/// Per-rank wire counters, resolved once per MCMC phase and recorded at
/// the existing sync points (observe-only: no extra collectives, no
/// extra wire bytes). The rank id is folded into the metric name so
/// simulated ranks sharing one process registry stay distinguishable.
struct WireMetrics {
    syncs: std::sync::Arc<sbp_metrics::Counter>,
    moves: std::sync::Arc<sbp_metrics::Counter>,
    bytes_raw: std::sync::Arc<sbp_metrics::Counter>,
    bytes_encoded: std::sync::Arc<sbp_metrics::Counter>,
}

impl WireMetrics {
    fn new(rank: usize) -> Self {
        let name = |base: &str| sbp_metrics::labeled(base, "rank", rank);
        WireMetrics {
            syncs: sbp_metrics::counter(&name("sbp_wire_syncs_total")),
            moves: sbp_metrics::counter(&name("sbp_wire_moves_total")),
            bytes_raw: sbp_metrics::counter(&name("sbp_wire_move_bytes_raw_total")),
            bytes_encoded: sbp_metrics::counter(&name("sbp_wire_move_bytes_encoded_total")),
        }
    }

    /// Records one sync point: the moves this rank shipped and the byte
    /// delta `exchange_moves` added to the per-phase accounting.
    fn record_sync(&self, shipped: usize, before: ExchangeStats, after: ExchangeStats) {
        self.syncs.inc();
        self.moves.add(shipped as u64);
        self.bytes_raw
            .add(after.move_bytes_raw - before.move_bytes_raw);
        self.bytes_encoded
            .add(after.move_bytes_encoded - before.move_bytes_encoded);
    }
}

/// One distributed MCMC phase: sweep owned vertices, sync every
/// `sync_period` sweeps through the data plane's single-allgather move
/// exchange (delta+varint payloads — see [`crate::exchange`]; the
/// encoding is lossless, so exactness is untouched; the sharded plane
/// concatenates its cell-delta and cut-arc sections onto the same
/// buffer), and stop on the shared convergence rule (or a broadcast
/// cancellation decision). Emits a [`ProgressEvent::Sweep`] after every
/// sync point — rank 0 already holds the broadcast DL there.
#[allow(clippy::too_many_arguments)]
fn mcmc_phase_distributed<C: Communicator, D: EdistData>(
    comm: &C,
    data: &D,
    bm: &mut Blockmodel,
    cfg: &EdistConfig,
    threshold: f64,
    iter_idx: usize,
    cancel: &CancelToken,
    relay: &EventRelay,
    xstats: &mut ExchangeStats,
) -> Result<DistributedPhase, DistError> {
    let beta = cfg.sbp.beta;
    let sync_period = cfg.sync_period.max(1);
    let graph = data.sweep_graph();
    let my_vertices = data.my_vertices();
    // Vertex-keyed streams: the seed depends on the iteration only, never
    // on the rank, so rank counts explore the same randomness.
    let sweep_seed = mcmc_phase_seed(cfg.sbp.seed, iter_idx);
    let initial_dl = shared_dl(comm, bm);
    let mut check = ConvergenceCheck::new(initial_dl, threshold);
    // The globally-agreed assignment at the last sync point (the sharded
    // plane's move application is phrased relative to it).
    let mut prev = bm.assignment().to_vec();
    let mut pending: Vec<AcceptedMove> = Vec::new();
    let mut dl = initial_dl;
    let mut moves = 0usize;
    let mut cancelled = false;
    let wire = sbp_metrics::enabled().then(|| WireMetrics::new(comm.rank()));

    let mut sweeps = 0usize;
    let mut proposed_since_sync = 0usize;
    while sweeps < cfg.sbp.max_sweeps {
        let outcome: SweepOutcome = match &cfg.sbp.strategy {
            McmcStrategy::MetropolisHastings => {
                keyed_mh_sweep(graph, bm, my_vertices, beta, sweep_seed, sweeps)
            }
            McmcStrategy::Hybrid(hcfg) => {
                hybrid_sweep(graph, bm, my_vertices, beta, hcfg, sweep_seed, sweeps)
            }
            McmcStrategy::Batch => batch_sweep(graph, bm, my_vertices, beta, sweep_seed, sweeps),
        };
        pending.extend(outcome.moves);
        proposed_since_sync += outcome.proposals;
        sweeps += 1;

        if sweeps.is_multiple_of(sync_period) || sweeps == cfg.sbp.max_sweeps {
            let shipped = pending.len();
            let xstats_before = *xstats;
            let exchanged = data.exchange_moves(comm, bm, &mut prev, &pending, xstats)?;
            moves += exchanged;
            if let Some(w) = &wire {
                w.record_sync(shipped, xstats_before, *xstats);
            }
            pending.clear();
            // One broadcast carries both the convergence value and the
            // cancellation decision, so all ranks agree on both.
            let (new_dl, cancel_now) = comm.broadcast(
                0,
                (comm.rank() == 0).then(|| (bm.description_length(), cancel.is_cancelled())),
            );
            dl = new_dl;
            if comm.rank() == 0 {
                // Rank 0 counts for the whole cluster: `exchanged` is
                // already the global move total, while `proposed` is
                // rank 0's local share (summing it globally would add
                // a collective to an observe-only path).
                sbp_core::sbp::record_sweep(proposed_since_sync, exchanged);
            }
            relay.emit(ProgressEvent::Sweep {
                iteration: iter_idx,
                sweep: sweeps - 1,
                dl,
                proposed: proposed_since_sync,
                accepted: exchanged,
            });
            proposed_since_sync = 0;
            if cancel_now {
                cancelled = true;
                break;
            }
            if check.record(dl) {
                break;
            }
        }
    }
    Ok(DistributedPhase {
        dl,
        sweeps,
        moves,
        cancelled,
    })
}

/// Runs EDiSt on `n_ranks` simulated ranks; returns the (rank-identical)
/// result and the cluster report.
#[deprecated(
    note = "use `edist::Partitioner` with `Backend::Edist { ranks }`, or the \
                     `sbp_dist::Edist` solver"
)]
pub fn run_edist_cluster(
    graph: &Arc<Graph>,
    n_ranks: usize,
    cost: CostModel,
    cfg: &EdistConfig,
) -> (EdistResult, ClusterReport) {
    let solver = crate::solver::Edist {
        ranks: n_ranks.max(1),
        cost,
        ownership: cfg.ownership,
        sync_period: cfg.sync_period,
        fault: crate::fault::FaultPlan::none(),
    };
    let out = solver.solve(
        graph,
        &RunConfig::from_sbp(cfg.sbp.clone()),
        &mut NoProgress,
    );
    let report = out.cluster.expect("distributed backend reports cluster");
    (
        EdistResult {
            assignment: out.assignment,
            num_blocks: out.num_blocks,
            description_length: out.description_length,
        },
        report,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sbp_graph::fixtures::two_cliques;
    use sbp_mpi::ThreadCluster;

    #[test]
    fn single_rank_recovers_two_cliques() {
        let g = Arc::new(two_cliques(8));
        let (res, _) = run_edist_cluster(&g, 1, CostModel::zero(), &EdistConfig::default());
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment[0], res.assignment[7]);
        assert_ne!(res.assignment[0], res.assignment[8]);
    }

    #[test]
    fn four_ranks_recover_and_agree() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig::default();
        let g2 = Arc::clone(&g);
        let out = ThreadCluster::run(4, CostModel::zero(), move |comm| edist(comm, &g2, &cfg));
        let first = &out.ranks[0].result;
        assert_eq!(first.num_blocks, 2);
        for r in &out.ranks {
            assert_eq!(r.result.assignment, first.assignment);
            assert_eq!(
                r.result.description_length.to_bits(),
                first.description_length.to_bits()
            );
        }
    }

    #[test]
    fn sync_period_two_still_converges() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig {
            sync_period: 2,
            ..EdistConfig::default()
        };
        let (res, _) = run_edist_cluster(&g, 3, CostModel::zero(), &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn modulo_ownership_works_too() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig {
            ownership: OwnershipStrategy::Modulo,
            ..EdistConfig::default()
        };
        let (res, _) = run_edist_cluster(&g, 2, CostModel::zero(), &cfg);
        assert_eq!(res.assignment.len(), 16);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Arc::new(Graph::from_edges(0, Vec::new()));
        let (res, _) = run_edist_cluster(&g, 3, CostModel::zero(), &EdistConfig::default());
        assert!(res.assignment.is_empty());
        assert_eq!(res.num_blocks, 0);
    }

    #[test]
    fn report_counts_collectives() {
        let g = Arc::new(two_cliques(6));
        let (_, rep) = run_edist_cluster(&g, 2, CostModel::hdr100(), &EdistConfig::default());
        assert!(rep.collectives > 0);
        assert!(rep.makespan > 0.0);
        assert_eq!(rep.ranks, 2);
    }
}

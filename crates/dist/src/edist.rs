//! EDiSt — exact distributed stochastic block partitioning (paper
//! Algs. 4–5).
//!
//! Every rank holds the full graph and a replica of the blockmodel; only
//! the *work* is partitioned. Each iteration of the golden-ratio search
//! runs:
//!
//! 1. **Distributed merge phase** (Alg. 4): rank `r` evaluates merge
//!    proposals for the blocks it owns (`b mod n == r`), the candidate
//!    lists are allgathered, and every rank applies the identical best
//!    merge set (the candidate order is normalized by `apply_merges`'
//!    total-order sort, so replicas stay bit-identical).
//! 2. **Distributed MCMC phase** (Alg. 5): rank `r` sweeps the vertices it
//!    owns against its replica, accepted moves are allgathered every
//!    `sync_period` sweeps, and each rank applies its peers' moves. Since
//!    a vertex is moved only by its owner, the post-sync assignment — and
//!    therefore the blockmodel, a pure function of the assignment — is
//!    identical on every rank.
//!
//! Convergence decisions use a description length broadcast from rank 0:
//! all replicas hold the same state, but hash-map iteration order can
//! differ between ranks, and a last-bit difference in the floating-point
//! sum must never make ranks disagree on control flow (that would
//! mismatch the collective schedule).

use crate::ownership::{owned_blocks, OwnershipStrategy};
use crate::{mix_seed, ClusterReport};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbp_core::golden::{BracketEntry, GoldenBracket, NextStep};
use sbp_core::hybrid::{batch_sweep, hybrid_sweep};
use sbp_core::mcmc::{mh_sweep, AcceptedMove, ConvergenceCheck, SweepOutcome};
use sbp_core::merge::{apply_merges, propose_merges, MergeCandidate};
use sbp_core::{Blockmodel, McmcStrategy, SbpConfig};
use sbp_graph::{Graph, Vertex};
use sbp_mpi::{Communicator, CostModel, ThreadCluster};
use std::sync::Arc;

/// EDiSt configuration.
#[derive(Clone, Debug)]
pub struct EdistConfig {
    /// Hyper-parameters of the underlying SBP search.
    pub sbp: SbpConfig,
    /// Vertex-ownership scheme for the MCMC phase.
    pub ownership: OwnershipStrategy,
    /// Sweeps between move exchanges (1 = the paper's every-sweep
    /// allgather; larger values trade staleness for fewer collectives).
    pub sync_period: usize,
}

impl Default for EdistConfig {
    fn default() -> Self {
        EdistConfig {
            sbp: SbpConfig::default(),
            ownership: OwnershipStrategy::SortedBalanced,
            sync_period: 1,
        }
    }
}

/// EDiSt result (identical on every rank).
#[derive(Clone, Debug)]
pub struct EdistResult {
    /// Inferred block assignment.
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
}

fn result_from(entry: BracketEntry) -> EdistResult {
    EdistResult {
        assignment: entry.assignment,
        num_blocks: entry.num_blocks,
        description_length: entry.dl,
    }
}

/// Broadcasts rank 0's description length so every replica records the
/// bit-identical value (see module docs).
fn shared_dl<C: Communicator>(comm: &C, bm: &Blockmodel) -> f64 {
    comm.broadcast(0, (comm.rank() == 0).then(|| bm.description_length()))
}

/// Runs EDiSt on this rank; collective calls must be matched by every rank
/// of `comm`. Returns the same result on every rank.
pub fn edist<C: Communicator>(comm: &C, graph: &Graph, cfg: &EdistConfig) -> EdistResult {
    if graph.num_vertices() == 0 {
        return EdistResult {
            assignment: Vec::new(),
            num_blocks: 0,
            description_length: 0.0,
        };
    }
    let (rank, size) = (comm.rank(), comm.size());
    let ownership = cfg.ownership.partition(graph, size);
    let my_vertices: &[Vertex] = &ownership[rank];
    let mut rng = SmallRng::seed_from_u64(mix_seed(cfg.sbp.seed, 0xED15_7000 + rank as u64));

    let start = Blockmodel::identity(graph);
    let mut bracket = GoldenBracket::new(cfg.sbp.block_reduction_rate);
    bracket.seed(BracketEntry {
        assignment: start.assignment().to_vec(),
        num_blocks: start.num_blocks(),
        dl: shared_dl(comm, &start),
    });

    for iter_idx in 0..cfg.sbp.max_iterations {
        match bracket.next() {
            NextStep::Done(best) => return result_from(best),
            NextStep::Continue {
                start,
                blocks_to_merge,
            } => {
                let bm = Blockmodel::from_assignment(graph, start.assignment, start.num_blocks);

                // ---- distributed merge phase (Alg. 4) ----
                let my_blocks = owned_blocks(bm.num_blocks(), rank, size);
                let merge_seed = mix_seed(cfg.sbp.seed, 0xA5A5_0000 ^ iter_idx as u64);
                let mine = propose_merges(
                    &bm,
                    &my_blocks,
                    cfg.sbp.merge_proposals_per_block,
                    merge_seed,
                );
                let candidates: Vec<MergeCandidate> =
                    comm.allgatherv(mine).into_iter().flatten().collect();
                let (assignment, num_blocks) = apply_merges(&bm, candidates, blocks_to_merge);
                let mut bm = Blockmodel::from_assignment(graph, assignment, num_blocks);

                // ---- distributed MCMC phase (Alg. 5) ----
                let threshold = if bracket.established() {
                    cfg.sbp.threshold_post
                } else {
                    cfg.sbp.threshold_pre
                };
                let dl = mcmc_phase_distributed(
                    comm,
                    graph,
                    &mut bm,
                    my_vertices,
                    cfg,
                    threshold,
                    iter_idx,
                    rank,
                    &mut rng,
                );

                bracket.record(BracketEntry {
                    assignment: bm.assignment().to_vec(),
                    num_blocks: bm.num_blocks(),
                    dl,
                });
            }
        }
    }
    let best = bracket.best().expect("bracket was seeded").clone();
    result_from(best)
}

/// One distributed MCMC phase: sweep owned vertices, exchange moves every
/// `sync_period` sweeps, stop on the shared convergence rule. Returns the
/// final (broadcast) description length.
#[allow(clippy::too_many_arguments)]
fn mcmc_phase_distributed<C: Communicator>(
    comm: &C,
    graph: &Graph,
    bm: &mut Blockmodel,
    my_vertices: &[Vertex],
    cfg: &EdistConfig,
    threshold: f64,
    iter_idx: usize,
    rank: usize,
    rng: &mut SmallRng,
) -> f64 {
    let beta = cfg.sbp.beta;
    let sync_period = cfg.sync_period.max(1);
    let sweep_seed = mix_seed(
        cfg.sbp.seed,
        0x5A5A_0000 ^ ((iter_idx as u64) << 20) ^ rank as u64,
    );
    let initial_dl = shared_dl(comm, bm);
    let mut check = ConvergenceCheck::new(initial_dl, threshold);
    let mut pending: Vec<AcceptedMove> = Vec::new();
    let mut dl = initial_dl;

    let mut sweeps = 0usize;
    while sweeps < cfg.sbp.max_sweeps {
        let outcome: SweepOutcome = match &cfg.sbp.strategy {
            McmcStrategy::MetropolisHastings => mh_sweep(graph, bm, my_vertices, beta, rng),
            McmcStrategy::Hybrid(hcfg) => {
                hybrid_sweep(graph, bm, my_vertices, beta, hcfg, sweep_seed, sweeps)
            }
            McmcStrategy::Batch => batch_sweep(graph, bm, my_vertices, beta, sweep_seed, sweeps),
        };
        pending.extend(outcome.moves);
        sweeps += 1;

        if sweeps.is_multiple_of(sync_period) || sweeps == cfg.sbp.max_sweeps {
            let gathered = comm.allgatherv(std::mem::take(&mut pending));
            for (from_rank, moves) in gathered.into_iter().enumerate() {
                if from_rank == rank {
                    continue; // already applied during the sweep
                }
                for m in moves {
                    bm.move_vertex(graph, m.v, m.to);
                }
            }
            dl = shared_dl(comm, bm);
            if check.record(dl) {
                break;
            }
        }
    }
    dl
}

/// Runs EDiSt on `n_ranks` simulated ranks; returns the (rank-identical)
/// result and the cluster report.
pub fn run_edist_cluster(
    graph: &Arc<Graph>,
    n_ranks: usize,
    cost: CostModel,
    cfg: &EdistConfig,
) -> (EdistResult, ClusterReport) {
    let g = Arc::clone(graph);
    let out = ThreadCluster::run(n_ranks.max(1), cost, move |comm| edist(comm, &g, cfg));
    let report = ClusterReport::from_outcome(&out);
    let result = out
        .ranks
        .into_iter()
        .next()
        .expect("at least one rank")
        .result;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(k: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k + i, k + j, 1));
                }
            }
        }
        edges.push((0, k, 1));
        Graph::from_edges(2 * k as usize, edges)
    }

    #[test]
    fn single_rank_recovers_two_cliques() {
        let g = Arc::new(two_cliques(8));
        let (res, _) = run_edist_cluster(&g, 1, CostModel::zero(), &EdistConfig::default());
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment[0], res.assignment[7]);
        assert_ne!(res.assignment[0], res.assignment[8]);
    }

    #[test]
    fn four_ranks_recover_and_agree() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig::default();
        let g2 = Arc::clone(&g);
        let out = ThreadCluster::run(4, CostModel::zero(), move |comm| edist(comm, &g2, &cfg));
        let first = &out.ranks[0].result;
        assert_eq!(first.num_blocks, 2);
        for r in &out.ranks {
            assert_eq!(r.result.assignment, first.assignment);
            assert_eq!(
                r.result.description_length.to_bits(),
                first.description_length.to_bits()
            );
        }
    }

    #[test]
    fn sync_period_two_still_converges() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig {
            sync_period: 2,
            ..EdistConfig::default()
        };
        let (res, _) = run_edist_cluster(&g, 3, CostModel::zero(), &cfg);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn modulo_ownership_works_too() {
        let g = Arc::new(two_cliques(8));
        let cfg = EdistConfig {
            ownership: OwnershipStrategy::Modulo,
            ..EdistConfig::default()
        };
        let (res, _) = run_edist_cluster(&g, 2, CostModel::zero(), &cfg);
        assert_eq!(res.assignment.len(), 16);
        assert_eq!(res.num_blocks, 2);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Arc::new(Graph::from_edges(0, Vec::new()));
        let (res, _) = run_edist_cluster(&g, 3, CostModel::zero(), &EdistConfig::default());
        assert!(res.assignment.is_empty());
        assert_eq!(res.num_blocks, 0);
    }

    #[test]
    fn report_counts_collectives() {
        let g = Arc::new(two_cliques(6));
        let (_, rep) = run_edist_cluster(&g, 2, CostModel::hdr100(), &EdistConfig::default());
        assert!(rep.collectives > 0);
        assert!(rep.makespan > 0.0);
        assert_eq!(rep.ranks, 2);
    }
}

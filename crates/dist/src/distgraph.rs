//! Distributed graph ingest: each rank reads **only its own** `.sbps`
//! shard, exchanges cut edges point-to-point, and ends with exactly the
//! adjacency of the vertices it owns plus a global ("ghost") degree table
//! — the monolithic [`Graph`] never materializes on any rank.
//!
//! ## What a rank holds after loading
//!
//! * `local()` — a [`Graph`] over the **global** vertex id space whose arc
//!   set is exactly the arcs incident to this rank's owned vertices: all
//!   out-arcs come from the rank's own shard (an arc lives in the shard of
//!   its source's owner), and the in-arcs whose source is peer-owned
//!   arrive through one [`Communicator::alltoallv`] cut-edge exchange.
//!   For an owned vertex `v`, `local().out_edges(v)`, `in_edges(v)` and
//!   `degree(v)` are therefore *complete and identical* to the monolithic
//!   graph's — which is precisely the access pattern of every MCMC sweep
//!   and of `Blockmodel::move_vertex` for owned vertices. Ghost vertices
//!   have partial adjacency; the sharded drivers never walk them.
//! * `out_degree(v)` / `in_degree(v)` — the ghost-degree table: global
//!   weighted degrees of **every** vertex (one allgather of `O(V)`
//!   per-owned entries), needed for load-balanced ownership decisions and
//!   for applying peer moves to the replicated block-degree vectors.
//! * `owned()` / `owner_of(v)` — the ownership the shards were planned
//!   under, so a sharded EDiSt run sweeps exactly the vertex sets an
//!   in-memory run with the same strategy would own.
//!
//! The loader runs *inside* the simulated cluster: its collectives are
//! counted by the [`Communicator`]'s byte/makespan accounting, so shard
//! ingest shows up in [`sbp_mpi::ClusterReport`] like any other phase.

use crate::error::DistError;
use sbp_graph::shard::{shard_paths, ShardError, ShardReader};
use sbp_graph::{Graph, OwnershipStrategy, Vertex, Weight};
use sbp_mpi::Communicator;
use std::path::Path;

/// Per-cluster summary of a sharded ingest, aggregated over ranks (every
/// rank holds the identical report after loading).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardIngestReport {
    /// Global vertex count.
    pub num_vertices: usize,
    /// Global total edge weight `E`.
    pub total_edge_weight: Weight,
    /// Global distinct arc count (Σ shard edges).
    pub total_arcs: usize,
    /// Largest number of edges any rank read from its shard — the
    /// disk-side peak. Compare with `total_arcs / ranks` for skew.
    pub max_rank_shard_edges: usize,
    /// Largest number of arcs any rank retained after the cut exchange
    /// (shard edges + received cut edges) — the memory-side peak the
    /// "no node holds the whole graph" property is asserted on.
    pub max_rank_local_arcs: usize,
    /// Cut arcs exchanged (arcs whose endpoints have different owners).
    pub total_cut_arcs: usize,
    /// Ranks that participated in the load.
    pub ranks: usize,
}

/// One rank's view of a sharded graph. See the module docs for exactly
/// which queries are global-exact.
#[derive(Clone, Debug)]
pub struct DistGraph {
    local: Graph,
    owned: Vec<Vertex>,
    owner_of: Vec<u32>,
    out_degree: Vec<Weight>,
    in_degree: Vec<Weight>,
    total_edge_weight: Weight,
    strategy: OwnershipStrategy,
    shard_edges: usize,
    report: ShardIngestReport,
}

impl DistGraph {
    /// The local graph: global vertex-id space, arcs incident to owned
    /// vertices only.
    #[inline]
    pub fn local(&self) -> &Graph {
        &self.local
    }

    /// Vertices this rank owns (ascending).
    #[inline]
    pub fn owned(&self) -> &[Vertex] {
        &self.owned
    }

    /// Owner rank of any vertex.
    #[inline]
    pub fn owner_of(&self, v: Vertex) -> usize {
        self.owner_of[v as usize] as usize
    }

    /// Global vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.local.num_vertices()
    }

    /// Global total edge weight `E`.
    #[inline]
    pub fn total_edge_weight(&self) -> Weight {
        self.total_edge_weight
    }

    /// Global weighted out-degree of any vertex (ghost-degree table).
    #[inline]
    pub fn out_degree(&self, v: Vertex) -> Weight {
        self.out_degree[v as usize]
    }

    /// Global weighted in-degree of any vertex (ghost-degree table).
    #[inline]
    pub fn in_degree(&self, v: Vertex) -> Weight {
        self.in_degree[v as usize]
    }

    /// Global weighted total degree of any vertex.
    #[inline]
    pub fn degree(&self, v: Vertex) -> Weight {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Ownership strategy the shards were planned under.
    #[inline]
    pub fn strategy(&self) -> OwnershipStrategy {
        self.strategy
    }

    /// Edges this rank read from its own shard file.
    #[inline]
    pub fn shard_edges(&self) -> usize {
        self.shard_edges
    }

    /// Arcs this rank retained after the cut exchange.
    #[inline]
    pub fn local_arcs(&self) -> usize {
        self.local.num_arcs()
    }

    /// Cluster-wide ingest report (identical on every rank).
    #[inline]
    pub fn report(&self) -> &ShardIngestReport {
        &self.report
    }
}

/// Loads the shard directory `dir` across the ranks of `comm`: rank `r`
/// reads shard `r`, cut edges are exchanged with one `alltoallv`, and the
/// ghost-degree table is assembled with one allgather. Collective calls
/// must be matched by every rank.
///
/// # Errors
/// I/O and format problems surface as [`DistError::Shard`]; shards that
/// disagree on ownership (the same vertex claimed twice, or a vertex no
/// shard claims) surface as [`DistError::OwnershipOverlap`] /
/// [`DistError::OwnershipGap`]. The shard count must equal `comm.size()`
/// — validate with [`sbp_graph::shard::validate_shard_dir`] *before*
/// spawning the cluster for a friendlier failure path. A failing rank
/// must abandon the collective schedule afterwards (the sharded runner
/// poisons its peers — see `crate::error`).
pub fn load_dist_graph<C: Communicator>(comm: &C, dir: &Path) -> Result<DistGraph, DistError> {
    let (rank, size) = (comm.rank(), comm.size());
    let paths = shard_paths(dir).map_err(DistError::from)?;
    if paths.len() != size {
        return Err(ShardError::Malformed(format!(
            "{} shards in {} but {} ranks loading",
            paths.len(),
            dir.display(),
            size
        ))
        .into());
    }
    let shard = ShardReader::open(&paths[rank]).map_err(DistError::from)?;
    let header = shard.header().clone();
    if header.shard_index != rank || header.shard_count != size {
        return Err(ShardError::Malformed(format!(
            "{} claims shard {}/{}, expected {}/{}",
            paths[rank].display(),
            header.shard_index,
            header.shard_count,
            rank,
            size
        ))
        .into());
    }
    let n = header.num_vertices;
    let (_, owned, edges) = shard.into_parts();
    let shard_edges = edges.len();

    // Ownership table: every rank learns who owns what (O(V) total).
    let owned_lists = comm.allgatherv(owned.clone());
    let mut owner_of = vec![u32::MAX; n];
    for (r, list) in owned_lists.iter().enumerate() {
        for &v in list {
            if owner_of[v as usize] != u32::MAX {
                return Err(DistError::OwnershipOverlap { vertex: v as usize });
            }
            owner_of[v as usize] = r as u32;
        }
    }
    if let Some(v) = owner_of.iter().position(|&o| o == u32::MAX) {
        return Err(DistError::OwnershipGap { vertex: v });
    }

    // Cut-edge exchange: arc (s, d) lives in owner(s)'s shard; owner(d)
    // needs it as an in-arc. Point-to-point, so no rank sees arcs that are
    // not incident to its owned vertices.
    let mut per_dest: Vec<Vec<(Vertex, Vertex, Weight)>> = vec![Vec::new(); size];
    let mut cut_out = 0usize;
    for &(s, d, w) in &edges {
        let dest = owner_of[d as usize] as usize;
        if dest != rank {
            per_dest[dest].push((s, d, w));
            cut_out += 1;
        }
    }
    let received = comm.alltoallv(per_dest);

    // Local graph: own shard arcs + received cut in-arcs. The sets are
    // disjoint (received arcs have peer-owned sources), so no weight is
    // double-counted by the merge in `Graph::from_edges`.
    let mut local_edges = edges;
    for bucket in received {
        local_edges.extend(bucket);
    }
    let local_arcs = local_edges.len();
    let local = Graph::from_edges(n, local_edges);

    // Ghost-degree table: the local graph answers exact degrees for owned
    // vertices (full incident adjacency present); one allgather spreads
    // them to every rank.
    let mine: Vec<(Vertex, Weight, Weight)> = owned
        .iter()
        .map(|&v| (v, local.out_degree(v), local.in_degree(v)))
        .collect();
    let mut out_degree = vec![0 as Weight; n];
    let mut in_degree = vec![0 as Weight; n];
    for (v, dout, din) in comm.allgatherv(mine).into_iter().flatten() {
        out_degree[v as usize] = dout;
        in_degree[v as usize] = din;
    }
    let total_edge_weight: Weight = out_degree.iter().sum();

    // Aggregate the ingest report (integer maxima/sums — identical on
    // every rank without a broadcast).
    let per_rank = comm.allgatherv(vec![(shard_edges, local_arcs, cut_out)]);
    let mut report = ShardIngestReport {
        num_vertices: n,
        total_edge_weight,
        total_arcs: 0,
        max_rank_shard_edges: 0,
        max_rank_local_arcs: 0,
        total_cut_arcs: 0,
        ranks: size,
    };
    for (se, la, co) in per_rank.into_iter().flatten() {
        report.total_arcs += se;
        report.max_rank_shard_edges = report.max_rank_shard_edges.max(se);
        report.max_rank_local_arcs = report.max_rank_local_arcs.max(la);
        report.total_cut_arcs += co;
    }

    Ok(DistGraph {
        local,
        owned,
        owner_of,
        out_degree,
        in_degree,
        total_edge_weight,
        strategy: header.strategy,
        shard_edges,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::fixtures::two_cliques;
    use sbp_graph::shard::shard_graph;
    use sbp_mpi::{CostModel, ThreadCluster};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("distgraph_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn load_cluster(dir: &Path, n: usize) -> Vec<DistGraph> {
        let out = ThreadCluster::run(n, CostModel::zero(), |comm| {
            load_dist_graph(comm, dir).expect("load")
        });
        out.ranks.into_iter().map(|r| r.result).collect()
    }

    #[test]
    fn loaded_view_matches_monolith_for_owned_vertices() {
        let g = two_cliques(8);
        for strategy in [OwnershipStrategy::Modulo, OwnershipStrategy::SortedBalanced] {
            for n in [1usize, 2, 4] {
                let dir = temp_dir(&format!("view_{n}_{}", strategy.code()));
                shard_graph(&g, &dir, n, strategy).unwrap();
                let ranks = load_cluster(&dir, n);
                let expected_parts = strategy.partition(&g, n);
                for (r, dg) in ranks.iter().enumerate() {
                    assert_eq!(dg.owned(), &expected_parts[r][..], "rank {r}");
                    assert_eq!(dg.num_vertices(), g.num_vertices());
                    assert_eq!(dg.total_edge_weight(), g.total_edge_weight());
                    for &v in dg.owned() {
                        assert_eq!(dg.local().out_edges(v), g.out_edges(v), "out of {v}");
                        assert_eq!(dg.local().in_edges(v), g.in_edges(v), "in of {v}");
                    }
                    // Ghost-degree table is global-exact for EVERY vertex.
                    for v in 0..g.num_vertices() as Vertex {
                        assert_eq!(dg.out_degree(v), g.out_degree(v));
                        assert_eq!(dg.in_degree(v), g.in_degree(v));
                    }
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn no_rank_holds_the_whole_graph() {
        // Two cliques have almost no cut under balanced ownership... use
        // modulo, which cuts heavily, and still every rank must hold
        // strictly fewer arcs than the monolith once there are 2+ ranks.
        let g = two_cliques(12);
        let dir = temp_dir("bound");
        shard_graph(&g, &dir, 4, OwnershipStrategy::Modulo).unwrap();
        let ranks = load_cluster(&dir, 4);
        let report = ranks[0].report();
        assert_eq!(report.total_arcs, g.num_arcs());
        assert_eq!(report.ranks, 4);
        for dg in &ranks {
            assert_eq!(dg.report(), report, "report must be rank-identical");
            assert!(dg.shard_edges() <= dg.local_arcs());
            assert!(
                dg.local_arcs() < g.num_arcs(),
                "rank holds {} of {} arcs",
                dg.local_arcs(),
                g.num_arcs()
            );
        }
        assert!(report.max_rank_local_arcs < g.num_arcs());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_mismatch_is_an_error() {
        let g = two_cliques(4);
        let dir = temp_dir("mismatch");
        shard_graph(&g, &dir, 3, OwnershipStrategy::Modulo).unwrap();
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            load_dist_graph(comm, &dir).is_err()
        });
        assert!(out.ranks.iter().all(|r| r.result));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Divide-and-conquer SBP (paper Alg. 3) — the baseline EDiSt is measured
//! against.
//!
//! Each rank receives a round-robin vertex share, induces the subgraph on
//! it (edges with exactly one endpoint in the share are *dropped*, which is
//! what islands low-degree vertices on sparse graphs — the failure mode of
//! Tables VII and Fig. 2), runs full single-node SBP on its piece, and
//! sends the partial partition to the root. The root offsets the label
//! spaces, fine-tunes the combined partition with `sbp_from` (Alg. 3 line
//! 23), and broadcasts the result.

use crate::{mix_seed, ClusterReport};
use sbp_core::{naive_sbp, sbp, sbp_from, SbpConfig, SbpResult};
use sbp_graph::{induced_subgraph, round_robin_parts, Graph};
use sbp_mpi::{Communicator, CostModel, ThreadCluster};
use std::sync::Arc;

/// Which single-node engine each rank runs on its subgraph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The optimized sparse engine (`sbp_core::sbp`).
    #[default]
    Optimized,
    /// The python-reference-equivalent dense engine (`sbp_core::naive_sbp`)
    /// — Table VI's subject.
    Naive,
}

/// DC-SBP configuration.
#[derive(Clone, Debug, Default)]
pub struct DcsbpConfig {
    /// Hyper-parameters shared with the per-rank and fine-tuning phases.
    pub sbp: SbpConfig,
    /// Single-node engine used on the per-rank subgraphs.
    pub engine: Engine,
    /// Skip the root-side fine-tuning pass (ablation switch). The combined
    /// partition is then only compacted, as in the paper's "no fine-tune"
    /// variant.
    pub skip_finetune: bool,
}

/// DC-SBP result (identical on every rank after the final broadcast).
#[derive(Clone, Debug)]
pub struct DcsbpResult {
    /// Inferred block assignment over the full graph.
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
}

/// Runs DC-SBP on this rank; collective calls must be matched by every rank
/// of `comm`.
pub fn dcsbp<C: Communicator>(comm: &C, graph: &Graph, cfg: &DcsbpConfig) -> DcsbpResult {
    let n_ranks = comm.size();
    let rank = comm.rank();
    let parts = round_robin_parts(graph.num_vertices(), n_ranks);
    let sub = induced_subgraph(graph, &parts[rank]);

    let mut sub_cfg = cfg.sbp.clone();
    sub_cfg.seed = mix_seed(cfg.sbp.seed, 0xDC00 + rank as u64);
    let local: SbpResult = match cfg.engine {
        Engine::Optimized => sbp(&sub.graph, &sub_cfg),
        Engine::Naive => naive_sbp(&sub.graph, &sub_cfg),
    };

    // (global vertex, local label) pairs travel to the root.
    let payload: Vec<(u32, u32)> = local
        .assignment
        .iter()
        .enumerate()
        .map(|(v, &b)| (sub.to_global(v as u32), b))
        .collect();
    let gathered = comm.gatherv(0, payload);

    let root_result = gathered.map(|parts| {
        let mut combined = vec![0u32; graph.num_vertices()];
        let mut offset = 0u32;
        for part in parts {
            let width = part.iter().map(|&(_, b)| b + 1).max().unwrap_or(0);
            for (v, b) in part {
                combined[v as usize] = offset + b;
            }
            offset += width;
        }
        let num_blocks = (offset as usize).max(usize::from(!combined.is_empty()));
        if cfg.skip_finetune {
            let bm =
                sbp_core::Blockmodel::from_assignment(graph, combined, num_blocks).compacted(graph);
            let dl = bm.description_length();
            let nb = bm.num_blocks();
            (bm.into_assignment(), nb, dl)
        } else {
            let r = sbp_from(graph, combined, num_blocks, &cfg.sbp);
            (r.assignment, r.num_blocks, r.description_length)
        }
    });

    let (assignment, num_blocks, description_length) = comm.broadcast(0, root_result);
    DcsbpResult {
        assignment,
        num_blocks,
        description_length,
    }
}

/// Runs DC-SBP on `n_ranks` simulated ranks; returns the (rank-identical)
/// result and the cluster report.
pub fn run_dcsbp_cluster(
    graph: &Arc<Graph>,
    n_ranks: usize,
    cost: CostModel,
    cfg: &DcsbpConfig,
) -> (DcsbpResult, ClusterReport) {
    let g = Arc::clone(graph);
    let out = ThreadCluster::run(n_ranks.max(1), cost, move |comm| dcsbp(comm, &g, cfg));
    let report = ClusterReport::from_outcome(&out);
    let result = out
        .ranks
        .into_iter()
        .next()
        .expect("at least one rank")
        .result;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(k: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j, 1));
                    edges.push((k + i, k + j, 1));
                }
            }
        }
        edges.push((0, k, 1));
        Graph::from_edges(2 * k as usize, edges)
    }

    #[test]
    fn single_rank_recovers_two_cliques() {
        let g = Arc::new(two_cliques(8));
        let (res, rep) = run_dcsbp_cluster(&g, 1, CostModel::zero(), &DcsbpConfig::default());
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment.len(), 16);
        assert!(rep.makespan >= 0.0);
    }

    #[test]
    fn all_ranks_agree_after_broadcast() {
        let g = Arc::new(two_cliques(6));
        let cfg = DcsbpConfig::default();
        let g2 = Arc::clone(&g);
        let out = ThreadCluster::run(3, CostModel::zero(), move |comm| dcsbp(comm, &g2, &cfg));
        let first = &out.ranks[0].result;
        for r in &out.ranks {
            assert_eq!(r.result.assignment, first.assignment);
            assert_eq!(r.result.num_blocks, first.num_blocks);
        }
    }

    #[test]
    fn skip_finetune_still_returns_valid_partition() {
        let g = Arc::new(two_cliques(6));
        let cfg = DcsbpConfig {
            skip_finetune: true,
            ..DcsbpConfig::default()
        };
        let (res, _) = run_dcsbp_cluster(&g, 2, CostModel::zero(), &cfg);
        assert_eq!(res.assignment.len(), 12);
        assert!(res.num_blocks >= 1);
        assert!(res
            .assignment
            .iter()
            .all(|&b| (b as usize) < res.num_blocks));
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Arc::new(Graph::from_edges(0, Vec::new()));
        let (res, _) = run_dcsbp_cluster(&g, 2, CostModel::zero(), &DcsbpConfig::default());
        assert!(res.assignment.is_empty());
        assert_eq!(res.num_blocks, 0);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = Arc::new(two_cliques(2));
        let (res, _) = run_dcsbp_cluster(&g, 6, CostModel::zero(), &DcsbpConfig::default());
        assert_eq!(res.assignment.len(), 4);
    }
}

//! Divide-and-conquer SBP (paper Alg. 3) — the baseline EDiSt is measured
//! against.
//!
//! Each rank receives a round-robin vertex share, induces the subgraph on
//! it (edges with exactly one endpoint in the share are *dropped*, which is
//! what islands low-degree vertices on sparse graphs — the failure mode of
//! Tables VII and Fig. 2), runs full single-node SBP on its piece, and
//! sends the partial partition to the root. The root offsets the label
//! spaces, fine-tunes the combined partition with the shared engine
//! ([`sbp_core::solve_sbp`], Alg. 3 line 23), and broadcasts the result.
//!
//! Cancellation is rank-local during the per-rank solves (no collectives
//! run inside them, so ranks may stop their local searches at different
//! depths without desynchronizing) and honoured again by the root's
//! fine-tuning pass; the root's observed flag is broadcast with the
//! result so every rank reports the same outcome.

use crate::solver::EventRelay;
use crate::{mix_seed, ClusterReport};
use sbp_core::run::{
    CancelToken, NoProgress, ProgressEvent, ProgressSink, RunConfig, RunOutcome, Solver,
};
use sbp_core::{naive_sbp, solve_sbp, IterationStat, SbpConfig};
use sbp_graph::{induced_subgraph, round_robin_parts, Graph};
use sbp_mpi::{Communicator, CostModel};
use std::sync::Arc;

/// Which single-node engine each rank runs on its subgraph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The optimized sparse engine (`sbp_core::solve_sbp`).
    #[default]
    Optimized,
    /// The python-reference-equivalent dense engine (`sbp_core::naive_sbp`)
    /// — Table VI's subject. Unlike the optimized engine it has no
    /// internal cancellation points: the token is only observed between
    /// phases, so a cancelled run still finishes any in-flight per-rank
    /// naive solve.
    Naive,
}

/// DC-SBP configuration.
#[derive(Clone, Debug, Default)]
pub struct DcsbpConfig {
    /// Hyper-parameters shared with the per-rank and fine-tuning phases.
    pub sbp: SbpConfig,
    /// Single-node engine used on the per-rank subgraphs.
    pub engine: Engine,
    /// Skip the root-side fine-tuning pass (ablation switch). The combined
    /// partition is then only compacted, as in the paper's "no fine-tune"
    /// variant.
    pub skip_finetune: bool,
}

/// DC-SBP result (identical on every rank after the final broadcast).
#[derive(Clone, Debug)]
pub struct DcsbpResult {
    /// Inferred block assignment over the full graph.
    pub assignment: Vec<u32>,
    /// Inferred number of blocks.
    pub num_blocks: usize,
    /// Description length of the returned partition.
    pub description_length: f64,
}

/// Runs DC-SBP on this rank; collective calls must be matched by every rank
/// of `comm`.
pub fn dcsbp<C: Communicator>(comm: &C, graph: &Graph, cfg: &DcsbpConfig) -> DcsbpResult {
    let out = dcsbp_run(
        comm,
        graph,
        cfg,
        &CancelToken::default(),
        &EventRelay::disabled(),
    );
    DcsbpResult {
        assignment: out.assignment,
        num_blocks: out.num_blocks,
        description_length: out.description_length,
    }
}

/// Forwards the root fine-tuning pass's iteration-level events to the
/// cluster event relay.
struct RelaySink<'a, 'b> {
    relay: &'a EventRelay<'b>,
}

impl ProgressSink for RelaySink<'_, '_> {
    fn on_event(&mut self, event: &ProgressEvent) {
        // The driver emits its own terminal events; forward only the
        // per-iteration trajectory of the nested solve.
        if matches!(
            event,
            ProgressEvent::Merged { .. } | ProgressEvent::Iteration { .. }
        ) {
            self.relay.emit(event.clone());
        }
    }
}

/// The full DC-SBP driver with trajectory recording, rank-0 progress
/// relay, and cancellation.
pub(crate) fn dcsbp_run<C: Communicator>(
    comm: &C,
    graph: &Graph,
    cfg: &DcsbpConfig,
    cancel: &CancelToken,
    relay: &EventRelay,
) -> RunOutcome {
    let n_ranks = comm.size();
    let rank = comm.rank();
    let parts = round_robin_parts(graph.num_vertices(), n_ranks);
    let sub = induced_subgraph(graph, &parts[rank]);

    relay.emit(ProgressEvent::PhaseStarted { phase: "local-sbp" });
    let mut sub_cfg = cfg.sbp.clone();
    sub_cfg.seed = mix_seed(cfg.sbp.seed, 0xDC00 + rank as u64);
    let local_assignment: Vec<u32> = match cfg.engine {
        Engine::Optimized => {
            let run_cfg = RunConfig {
                sbp: sub_cfg,
                cancel: cancel.clone(),
                ..RunConfig::default()
            };
            solve_sbp(&sub.graph, None, &run_cfg, &mut NoProgress).assignment
        }
        // The naive engine has no internal cancellation points; honour a
        // pre-cancelled token by skipping the local solve outright (one
        // block per rank — the root's combine still sees valid labels).
        Engine::Naive if cancel.is_cancelled() => vec![0; sub.graph.num_vertices()],
        Engine::Naive => naive_sbp(&sub.graph, &sub_cfg).assignment,
    };

    // (global vertex, local label) pairs travel to the root.
    let payload: Vec<(u32, u32)> = local_assignment
        .iter()
        .enumerate()
        .map(|(v, &b)| (sub.to_global(v as u32), b))
        .collect();
    let gathered = comm.gatherv(0, payload);

    let root_result = gathered.map(|parts| {
        relay.emit(ProgressEvent::PhaseStarted { phase: "combine" });
        let (combined, num_blocks) = combine_parts(parts, graph.num_vertices());
        if cfg.skip_finetune {
            let bm =
                sbp_core::Blockmodel::from_assignment(graph, combined, num_blocks).compacted(graph);
            let dl = bm.description_length();
            let nb = bm.num_blocks();
            (
                bm.into_assignment(),
                nb,
                dl,
                Vec::new(),
                cancel.is_cancelled(),
            )
        } else {
            relay.emit(ProgressEvent::PhaseStarted { phase: "finetune" });
            let run_cfg = RunConfig {
                sbp: cfg.sbp.clone(),
                cancel: cancel.clone(),
                ..RunConfig::default()
            };
            let mut sink = RelaySink { relay };
            let r = solve_sbp(graph, Some((combined, num_blocks)), &run_cfg, &mut sink);
            (
                r.assignment,
                r.num_blocks,
                r.description_length,
                r.iterations,
                r.cancelled,
            )
        }
    });

    let (assignment, num_blocks, description_length, iterations, cancelled): (
        Vec<u32>,
        usize,
        f64,
        Vec<IterationStat>,
        bool,
    ) = comm.broadcast(0, root_result);
    if cancelled {
        relay.emit(ProgressEvent::Cancelled {
            iteration: iterations.len(),
        });
    } else {
        relay.emit(ProgressEvent::Finished {
            num_blocks,
            description_length,
        });
    }
    RunOutcome {
        assignment,
        num_blocks,
        description_length,
        iterations,
        cancelled,
        virtual_seconds: comm.virtual_time(),
        cluster: None,
        sampled_vertices: None,
        degraded: None,
    }
}

/// The root-side combine (Alg. 3 lines 20–22): each rank's local label
/// space is shifted past its predecessors'. Shared by the monolithic and
/// sharded drivers — one copy, so label-width handling cannot drift
/// between them. Returns the combined assignment and its label-space
/// width (`max(1)` on non-empty graphs so downstream blockmodels stay
/// valid even if every part came back empty).
pub(crate) fn combine_parts(parts: Vec<Vec<(u32, u32)>>, num_vertices: usize) -> (Vec<u32>, usize) {
    let mut combined = vec![0u32; num_vertices];
    let mut offset = 0u32;
    for part in parts {
        let width = part.iter().map(|&(_, b)| b + 1).max().unwrap_or(0);
        for (v, b) in part {
            combined[v as usize] = offset + b;
        }
        offset += width;
    }
    let num_blocks = (offset as usize).max(usize::from(!combined.is_empty()));
    (combined, num_blocks)
}

/// Dense relabeling of occupied labels, ascending — the assignment-only
/// equivalent of `Blockmodel::compacted` for drivers that have no full
/// graph to rebuild against. Returns the compacted assignment and block
/// count.
pub(crate) fn compact_labels(mut assignment: Vec<u32>, width: usize) -> (Vec<u32>, usize) {
    let mut seen = vec![false; width];
    for &b in &assignment {
        seen[b as usize] = true;
    }
    let mut map = vec![u32::MAX; width];
    let mut next = 0u32;
    for (old, &occupied) in seen.iter().enumerate() {
        if occupied {
            map[old] = next;
            next += 1;
        }
    }
    for b in &mut assignment {
        *b = map[*b as usize];
    }
    (assignment, next as usize)
}

/// Runs DC-SBP on `n_ranks` simulated ranks; returns the (rank-identical)
/// result and the cluster report.
#[deprecated(
    note = "use `edist::Partitioner` with `Backend::DcSbp { ranks }`, or the \
                     `sbp_dist::DcSbp` solver"
)]
pub fn run_dcsbp_cluster(
    graph: &Arc<Graph>,
    n_ranks: usize,
    cost: CostModel,
    cfg: &DcsbpConfig,
) -> (DcsbpResult, ClusterReport) {
    let solver = crate::solver::DcSbp {
        ranks: n_ranks.max(1),
        cost,
        engine: cfg.engine,
        skip_finetune: cfg.skip_finetune,
    };
    let out = solver.solve(
        graph,
        &RunConfig::from_sbp(cfg.sbp.clone()),
        &mut NoProgress,
    );
    let report = out.cluster.expect("distributed backend reports cluster");
    (
        DcsbpResult {
            assignment: out.assignment,
            num_blocks: out.num_blocks,
            description_length: out.description_length,
        },
        report,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sbp_graph::fixtures::two_cliques;
    use sbp_mpi::ThreadCluster;

    #[test]
    fn single_rank_recovers_two_cliques() {
        let g = Arc::new(two_cliques(8));
        let (res, rep) = run_dcsbp_cluster(&g, 1, CostModel::zero(), &DcsbpConfig::default());
        assert_eq!(res.num_blocks, 2);
        assert_eq!(res.assignment.len(), 16);
        assert!(rep.makespan >= 0.0);
    }

    #[test]
    fn all_ranks_agree_after_broadcast() {
        let g = Arc::new(two_cliques(6));
        let cfg = DcsbpConfig::default();
        let g2 = Arc::clone(&g);
        let out = ThreadCluster::run(3, CostModel::zero(), move |comm| dcsbp(comm, &g2, &cfg));
        let first = &out.ranks[0].result;
        for r in &out.ranks {
            assert_eq!(r.result.assignment, first.assignment);
            assert_eq!(r.result.num_blocks, first.num_blocks);
        }
    }

    #[test]
    fn skip_finetune_still_returns_valid_partition() {
        let g = Arc::new(two_cliques(6));
        let cfg = DcsbpConfig {
            skip_finetune: true,
            ..DcsbpConfig::default()
        };
        let (res, _) = run_dcsbp_cluster(&g, 2, CostModel::zero(), &cfg);
        assert_eq!(res.assignment.len(), 12);
        assert!(res.num_blocks >= 1);
        assert!(res
            .assignment
            .iter()
            .all(|&b| (b as usize) < res.num_blocks));
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Arc::new(Graph::from_edges(0, Vec::new()));
        let (res, _) = run_dcsbp_cluster(&g, 2, CostModel::zero(), &DcsbpConfig::default());
        assert!(res.assignment.is_empty());
        assert_eq!(res.num_blocks, 0);
    }

    #[test]
    fn combine_parts_offsets_label_spaces() {
        // Rank 0 labels {0,1} on vertices {0,2}; rank 1 labels {0} on {1,3}.
        let parts = vec![vec![(0u32, 0u32), (2, 1)], vec![(1, 0), (3, 0)]];
        let (combined, width) = combine_parts(parts, 4);
        assert_eq!(combined, vec![0, 2, 1, 2]);
        assert_eq!(width, 3);
        assert_eq!(combine_parts(vec![], 0), (vec![], 0));
        assert_eq!(combine_parts(vec![vec![]], 1), (vec![0], 1));
    }

    #[test]
    fn compact_labels_matches_blockmodel_compacted() {
        let g = sbp_graph::fixtures::two_cliques(3);
        let sparse_labels: Vec<u32> = vec![5, 5, 5, 2, 2, 7];
        let bm = sbp_core::Blockmodel::from_assignment(&g, sparse_labels.clone(), 8).compacted(&g);
        let (compact, nb) = compact_labels(sparse_labels, 8);
        assert_eq!(compact, bm.assignment());
        assert_eq!(nb, bm.num_blocks());
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = Arc::new(two_cliques(2));
        let (res, _) = run_dcsbp_cluster(&g, 6, CostModel::zero(), &DcsbpConfig::default());
        assert_eq!(res.assignment.len(), 4);
    }
}

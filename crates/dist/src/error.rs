//! Typed failure propagation for the distributed runtime.
//!
//! Every failure a distributed driver can survive is a [`DistError`]:
//! malformed collective payloads ([`DecodeError`]), shard-ingest
//! failures, and peers abandoning the collective schedule (rank death,
//! observed as a poison notice). Drivers convert a `DistError` into a
//! degraded best-so-far [`RunOutcome`](sbp_core::RunOutcome) instead of
//! panicking the cluster — see the coordinated-unwind notes on
//! `guard_collectives`.

use sbp_graph::shard::ShardError;
use sbp_mpi::thread::PeerAborted;
use sbp_mpi::Communicator;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::fault::RankDeath;
use sbp_core::DegradedReason;

/// A malformed wire payload detected by one of the strict decoders in
/// [`crate::exchange`]. Re-exported from [`sbp_graph::frame`], where it
/// lives so the TCP transport in `sbp-mpi` shares the same type.
pub use sbp_graph::frame::DecodeError;

/// A failure the distributed runtime survives by unwinding all ranks
/// coordinately and returning best-so-far.
#[derive(Debug)]
pub enum DistError {
    /// A collective payload failed to decode on this rank.
    Decode(DecodeError),
    /// Distributed shard ingest failed on this rank.
    Shard(ShardError),
    /// Two shards both claim ownership of the same vertex.
    OwnershipOverlap {
        /// The doubly-owned vertex.
        vertex: usize,
    },
    /// No shard claims ownership of some vertex.
    OwnershipGap {
        /// The unowned vertex.
        vertex: usize,
    },
    /// A peer rank abandoned the collective schedule; this rank observed
    /// its poison notice mid-collective.
    PeerAborted {
        /// The nearest aborted peer (aborts cascade, so not necessarily
        /// the originating failure).
        rank: usize,
    },
    /// This rank itself was killed by an injected fault
    /// ([`crate::fault::FaultComm`]).
    RankKilled {
        /// The killed rank (this rank).
        rank: usize,
        /// The 0-based collective index at which the kill fired.
        sync_point: u64,
    },
}

impl DistError {
    /// The coarse reason recorded on a degraded
    /// [`RunOutcome`](sbp_core::RunOutcome).
    pub fn degraded_reason(&self) -> DegradedReason {
        match self {
            DistError::Decode(_) => DegradedReason::DecodeFailure,
            DistError::Shard(_) | DistError::OwnershipOverlap { .. } => {
                DegradedReason::ShardLoadFailure
            }
            DistError::OwnershipGap { .. } => DegradedReason::ShardLoadFailure,
            DistError::PeerAborted { .. } | DistError::RankKilled { .. } => {
                DegradedReason::RankFailure
            }
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Decode(e) => write!(f, "collective decode failure: {e}"),
            DistError::Shard(e) => write!(f, "shard ingest failure: {e}"),
            DistError::OwnershipOverlap { vertex } => {
                write!(f, "vertex {vertex} owned by two shards")
            }
            DistError::OwnershipGap { vertex } => {
                write!(f, "vertex {vertex} not owned by any shard")
            }
            DistError::PeerAborted { rank } => {
                write!(f, "peer rank {rank} aborted the collective schedule")
            }
            DistError::RankKilled { rank, sync_point } => {
                write!(f, "rank {rank} killed at sync point {sync_point}")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<DecodeError> for DistError {
    fn from(e: DecodeError) -> Self {
        DistError::Decode(e)
    }
}

impl From<ShardError> for DistError {
    fn from(e: ShardError) -> Self {
        DistError::Shard(e)
    }
}

/// Runs a matched-collective region, converting the two *typed* unwind
/// payloads of the coordinated-unwind protocol into [`DistError`]s:
///
/// * [`PeerAborted`] — a peer poisoned the schedule (its own failure or
///   a cascade); raised by `ThreadComm` from inside a collective;
/// * [`RankDeath`] — an injected kill from [`crate::fault::FaultComm`]
///   fired on this rank.
///
/// Any other panic payload is a genuine bug and is re-raised. On its own
/// local `Err` (e.g. a decode failure) the *caller* must invoke
/// [`Communicator::poison`] before abandoning the schedule, so peers
/// blocked in collectives unwind instead of deadlocking; this helper
/// only performs the payload conversion.
pub(crate) fn guard_collectives<T>(
    f: impl FnOnce() -> Result<T, DistError>,
) -> Result<T, DistError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            if let Some(p) = payload.downcast_ref::<PeerAborted>() {
                Err(DistError::PeerAborted { rank: p.from })
            } else if let Some(d) = payload.downcast_ref::<RankDeath>() {
                Err(DistError::RankKilled {
                    rank: d.rank,
                    sync_point: d.sync_point,
                })
            } else {
                resume_unwind(payload)
            }
        }
    }
}

/// Aborts this rank's participation: wakes peers via
/// [`Communicator::poison`] (unless the failure *was* a peer abort, in
/// which case the originator has already poisoned everyone and
/// re-poisoning is merely redundant) and maps the error to the degraded
/// reason recorded on the outcome.
pub(crate) fn abort_schedule<C: Communicator>(comm: &C, err: &DistError) -> DegradedReason {
    if !matches!(err, DistError::PeerAborted { .. }) {
        comm.poison();
    }
    err.degraded_reason()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_errors_display_their_context() {
        let e = DecodeError::CountExceedsPayload {
            what: "move",
            declared: 1 << 40,
            max: 12,
        };
        let msg = e.to_string();
        assert!(msg.contains("move"), "{msg}");
        assert!(msg.contains("12"), "{msg}");
        let e = DecodeError::SectionOutOfBounds {
            declared: 200,
            available: 3,
        };
        assert!(e.to_string().contains("200"), "{e}");
    }

    #[test]
    fn dist_errors_map_to_degraded_reasons() {
        assert_eq!(
            DistError::Decode(DecodeError::Truncated { what: "move" }).degraded_reason(),
            DegradedReason::DecodeFailure
        );
        assert_eq!(
            DistError::PeerAborted { rank: 3 }.degraded_reason(),
            DegradedReason::RankFailure
        );
        assert_eq!(
            DistError::RankKilled {
                rank: 1,
                sync_point: 7
            }
            .degraded_reason(),
            DegradedReason::RankFailure
        );
        assert_eq!(
            DistError::OwnershipGap { vertex: 5 }.degraded_reason(),
            DegradedReason::ShardLoadFailure
        );
    }

    #[test]
    fn guard_converts_typed_payloads_and_reraises_others() {
        let r = guard_collectives(|| -> Result<(), DistError> {
            std::panic::panic_any(PeerAborted { from: 2 });
        });
        assert!(matches!(r, Err(DistError::PeerAborted { rank: 2 })));

        let r = guard_collectives(|| -> Result<(), DistError> {
            std::panic::panic_any(RankDeath {
                rank: 1,
                sync_point: 4,
            });
        });
        assert!(matches!(
            r,
            Err(DistError::RankKilled {
                rank: 1,
                sync_point: 4
            })
        ));

        let reraised = std::panic::catch_unwind(|| {
            let _ = guard_collectives(|| -> Result<(), DistError> {
                panic!("genuine bug");
            });
        });
        assert!(reraised.is_err());
    }
}

//! [`Solver`] backends for the distributed algorithms, plus the event
//! relay that streams rank 0's progress events out of the simulated
//! cluster to the caller's [`ProgressSink`].
//!
//! The cluster runs on its own scoped thread while the calling thread
//! drains the event channel, so progress callbacks fire live (not after
//! the run). Cancellation flows the other way: the caller's
//! [`sbp_core::CancelToken`] is read by rank 0 and *broadcast* at every
//! checkpoint, so all ranks observe the same decision at the same
//! collective and the schedule never desynchronizes.

use crate::dcsbp::{dcsbp_run, DcsbpConfig, Engine};
use crate::edist::{edist_run, EdistConfig};
use crate::fault::{FaultComm, FaultPlan};
use crate::ownership::OwnershipStrategy;
use sbp_core::run::{ProgressEvent, ProgressSink, RunConfig, RunOutcome, Solver};
use sbp_graph::Graph;
use sbp_mpi::{ClusterReport, Communicator, CostModel, ThreadCluster};
use std::panic::resume_unwind;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// Hands rank 0's progress events to the channel draining on the caller
/// thread. Ranks other than 0 hold an inactive relay, and the legacy
/// shims run with a fully disabled one.
pub(crate) struct EventRelay<'a> {
    sender: Option<&'a Mutex<Sender<ProgressEvent>>>,
    active: bool,
}

impl EventRelay<'_> {
    /// A relay that drops every event (legacy shims, non-zero ranks).
    pub(crate) fn disabled() -> Self {
        EventRelay {
            sender: None,
            active: false,
        }
    }

    /// Emits an event if this relay is rank 0's and a sink is attached.
    pub(crate) fn emit(&self, event: ProgressEvent) {
        if !self.active {
            return;
        }
        if let Some(sender) = self.sender {
            // A dropped receiver just means the caller stopped listening.
            let _ = sender.lock().expect("event relay poisoned").send(event);
        }
    }
}

/// Runs `f` on `n` simulated ranks while draining rank 0's progress
/// events to `progress` on the calling thread.
pub(crate) fn run_cluster_streaming<R, F>(
    n: usize,
    cost: CostModel,
    progress: &mut dyn ProgressSink,
    f: F,
) -> sbp_mpi::ClusterOutcome<R>
where
    R: Send,
    F: Fn(&sbp_mpi::thread::ThreadComm, &EventRelay) -> R + Send + Sync,
{
    let (tx, rx) = std::sync::mpsc::channel::<ProgressEvent>();
    std::thread::scope(|scope| {
        let f = &f;
        let handle = scope.spawn(move || {
            let relay_tx = Mutex::new(tx);
            ThreadCluster::run(n, cost, |comm| {
                let relay = EventRelay {
                    sender: Some(&relay_tx),
                    active: comm.rank() == 0,
                };
                f(comm, &relay)
            })
        });
        // Live-drain until every sender is gone (i.e. the cluster ended).
        for event in rx.iter() {
            progress.on_event(&event);
        }
        handle.join().unwrap_or_else(|e| resume_unwind(e))
    })
}

fn finish_outcome<R>(
    out: sbp_mpi::ClusterOutcome<R>,
    extract: impl Fn(R) -> RunOutcome,
) -> RunOutcome {
    let mut report = ClusterReport::from_outcome(&out);
    let mut outcomes: Vec<RunOutcome> = out.ranks.into_iter().map(|r| extract(r.result)).collect();
    // The drivers read their clocks through the (possibly decorated)
    // communicator, so injected skew shows up in the per-rank outcomes
    // and not in the raw cluster records.
    let driver_makespan = outcomes
        .iter()
        .map(|o| o.virtual_seconds)
        .fold(0.0, f64::max);
    report.makespan = report.makespan.max(driver_makespan);
    // A degraded peer is a cluster-wide fact even when rank 0's own
    // schedule happened to complete before the failure could reach it
    // (the tail of a schedule can be all root-side broadcasts).
    let cascade = outcomes.iter().find_map(|o| o.degraded);
    let mut outcome = outcomes.swap_remove(0);
    outcome.degraded = outcome.degraded.or(cascade);
    outcome.virtual_seconds = report.makespan;
    outcome.cluster = Some(report);
    outcome
}

/// The EDiSt backend (paper Algs. 4–5): full replication, partitioned
/// work, exact inference at any rank count.
#[derive(Clone, Debug)]
pub struct Edist {
    /// Simulated MPI ranks.
    pub ranks: usize,
    /// Interconnect cost model for the virtual clocks.
    pub cost: CostModel,
    /// Vertex-ownership scheme for the MCMC phase.
    pub ownership: OwnershipStrategy,
    /// Sweeps between move exchanges (1 = the paper's every-sweep
    /// allgather).
    pub sync_period: usize,
    /// Deterministic fault injection ([`crate::fault`]); empty = none.
    /// Each rank's communicator is decorated with [`FaultComm`], so an
    /// injected kill/mangle degrades the run coordinately (all survivors
    /// return best-so-far with `degraded` set) instead of crashing it.
    pub fault: FaultPlan,
}

impl Edist {
    /// EDiSt on `ranks` simulated ranks with the default HDR-100
    /// interconnect and ownership scheme.
    pub fn new(ranks: usize) -> Self {
        Edist {
            ranks,
            cost: CostModel::hdr100(),
            ownership: OwnershipStrategy::default(),
            sync_period: 1,
            fault: FaultPlan::none(),
        }
    }
}

impl Default for Edist {
    fn default() -> Self {
        Edist::new(4)
    }
}

impl Solver for Edist {
    fn name(&self) -> String {
        format!("edist(ranks={})", self.ranks.max(1))
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        let n = self.ranks.max(1);
        progress.on_event(&ProgressEvent::Started {
            num_vertices: graph.num_vertices(),
            num_blocks: graph.num_vertices(),
        });
        progress.on_event(&ProgressEvent::ClusterStarted { ranks: n });
        let ecfg = EdistConfig {
            sbp: cfg.sbp.clone(),
            ownership: self.ownership,
            sync_period: self.sync_period,
            checkpoint: cfg.checkpoint.clone(),
            resume: cfg.resume.clone(),
        };
        let cancel = cfg.cancel.clone();
        let fault = self.fault.clone();
        let out = run_cluster_streaming(n, self.cost, progress, |comm, relay| {
            if fault.is_empty() {
                edist_run(comm, graph, &ecfg, &cancel, relay)
            } else {
                let fc = FaultComm::new(comm, fault.clone());
                edist_run(&fc, graph, &ecfg, &cancel, relay)
            }
        });
        // Move-exchange accounting is summed over every rank, like the
        // byte counters the report already carries.
        let (raw, encoded) = out.ranks.iter().fold((0u64, 0u64), |(raw, enc), rank| {
            let x = rank.result.1;
            (raw + x.move_bytes_raw, enc + x.move_bytes_encoded)
        });
        let mut outcome = finish_outcome(out, |(r, _)| r);
        if let Some(report) = outcome.cluster.as_mut() {
            report.move_bytes_raw = raw;
            report.move_bytes_encoded = encoded;
        }
        outcome
    }
}

/// The DC-SBP backend (paper Alg. 3): round-robin data distribution,
/// independent per-rank inference, root-side combination + fine-tuning.
#[derive(Clone, Copy, Debug)]
pub struct DcSbp {
    /// Simulated MPI ranks.
    pub ranks: usize,
    /// Interconnect cost model for the virtual clocks.
    pub cost: CostModel,
    /// Single-node engine used on the per-rank subgraphs.
    pub engine: Engine,
    /// Skip the root-side fine-tuning pass (ablation switch).
    pub skip_finetune: bool,
}

impl DcSbp {
    /// DC-SBP on `ranks` simulated ranks with the default HDR-100
    /// interconnect and the optimized per-rank engine.
    pub fn new(ranks: usize) -> Self {
        DcSbp {
            ranks,
            cost: CostModel::hdr100(),
            engine: Engine::default(),
            skip_finetune: false,
        }
    }
}

impl Default for DcSbp {
    fn default() -> Self {
        DcSbp::new(4)
    }
}

impl Solver for DcSbp {
    fn name(&self) -> String {
        format!("dcsbp(ranks={})", self.ranks.max(1))
    }

    fn solve(&self, graph: &Graph, cfg: &RunConfig, progress: &mut dyn ProgressSink) -> RunOutcome {
        let n = self.ranks.max(1);
        progress.on_event(&ProgressEvent::Started {
            num_vertices: graph.num_vertices(),
            num_blocks: graph.num_vertices(),
        });
        progress.on_event(&ProgressEvent::ClusterStarted { ranks: n });
        let dcfg = DcsbpConfig {
            sbp: cfg.sbp.clone(),
            engine: self.engine,
            skip_finetune: self.skip_finetune,
        };
        let cancel = cfg.cancel.clone();
        let out = run_cluster_streaming(n, self.cost, progress, |comm, relay| {
            dcsbp_run(comm, graph, &dcfg, &cancel, relay)
        });
        finish_outcome(out, |r| r)
    }
}

/// Registers the distributed backends (`edist`, `dcsbp`) into a
/// name-keyed [`SolverRegistry`](sbp_core::registry::SolverRegistry), so
/// the CLI and the `sbp-serve` daemon can resolve them by name alongside
/// the single-node ones.
pub fn register_solvers(reg: &mut sbp_core::registry::SolverRegistry) {
    reg.register("edist", |spec| {
        if spec.ranks == 0 {
            return Err("ranks must be >= 1".into());
        }
        if spec.sync_period == 0 {
            return Err("sync period must be >= 1".into());
        }
        let mut solver = Edist::new(spec.ranks);
        solver.sync_period = spec.sync_period;
        Ok(Box::new(solver))
    });
    reg.register("dcsbp", |spec| {
        if spec.ranks == 0 {
            return Err("ranks must be >= 1".into());
        }
        Ok(Box::new(DcSbp::new(spec.ranks)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_core::registry::{SolverRegistry, SolverSpec};
    use sbp_core::run::{CancelToken, NoProgress, ProgressFn};
    use sbp_core::McmcStrategy;
    use sbp_graph::fixtures::two_cliques;

    #[test]
    fn edist_solver_recovers_and_reports_cluster() {
        let g = two_cliques(8);
        let out = Edist::new(3).solve(&g, &RunConfig::seeded(7), &mut NoProgress);
        assert_eq!(out.num_blocks, 2);
        assert!(!out.iterations.is_empty());
        let rep = out.cluster.expect("distributed backend reports cluster");
        assert_eq!(rep.ranks, 3);
        assert!(rep.collectives > 0);
        assert!(rep.max_rank_bytes <= rep.total_bytes);
        assert!((out.virtual_seconds - rep.makespan).abs() < 1e-12);
        // The move exchange travelled compressed and was accounted for.
        assert!(rep.move_bytes_raw > 0, "no moves exchanged?");
        assert!(
            rep.move_bytes_encoded < rep.move_bytes_raw,
            "varint exchange ({}) not smaller than raw ({})",
            rep.move_bytes_encoded,
            rep.move_bytes_raw
        );
    }

    #[test]
    fn dcsbp_solver_recovers_and_reports_cluster() {
        let g = two_cliques(8);
        let out = DcSbp::new(2).solve(&g, &RunConfig::seeded(1), &mut NoProgress);
        assert_eq!(out.assignment.len(), 16);
        assert_eq!(out.num_blocks, 2);
        assert_eq!(out.cluster.expect("cluster report").ranks, 2);
    }

    #[test]
    fn progress_events_stream_from_rank_zero() {
        let g = two_cliques(6);
        let mut iterations = 0usize;
        let mut started = 0usize;
        let mut sink = ProgressFn(|e: &ProgressEvent| match e {
            ProgressEvent::Iteration { .. } => iterations += 1,
            ProgressEvent::ClusterStarted { ranks } => started = *ranks,
            _ => {}
        });
        let out = Edist::new(2).solve(&g, &RunConfig::seeded(3), &mut sink);
        let _ = sink;
        assert_eq!(started, 2);
        assert_eq!(iterations, out.iterations.len());
        assert!(iterations > 0);
    }

    #[test]
    fn pre_cancelled_edist_returns_identity_on_all_ranks() {
        let g = two_cliques(6);
        let cfg = RunConfig::seeded(2);
        cfg.cancel.cancel();
        let out = Edist::new(3).solve(&g, &cfg, &mut NoProgress);
        assert!(out.cancelled);
        // Nothing ran: the seeded identity bracket entry comes back,
        // consistently on every rank (no collective mismatch / deadlock).
        assert_eq!(out.num_blocks, 12);
    }

    #[test]
    fn registry_resolves_distributed_backends() {
        let mut reg = SolverRegistry::with_core_backends();
        register_solvers(&mut reg);
        let spec = SolverSpec {
            ranks: 3,
            sync_period: 2,
        };
        let edist = reg.build("edist", &spec).unwrap();
        assert_eq!(edist.name(), "edist(ranks=3)");
        assert!(!edist.supports_warm_start());
        let dcsbp = reg.build("dcsbp", &spec).unwrap();
        assert_eq!(dcsbp.name(), "dcsbp(ranks=3)");
        // Registry-built EDiSt actually solves.
        let g = two_cliques(8);
        let out = edist.solve(&g, &RunConfig::seeded(7), &mut NoProgress);
        assert_eq!(out.num_blocks, 2);
        assert!(reg
            .build(
                "edist",
                &SolverSpec {
                    ranks: 0,
                    sync_period: 1
                }
            )
            .is_err());
    }

    #[test]
    fn cancelling_during_run_aborts_consistently() {
        // Cancel from the progress drain thread after the first recorded
        // iteration; the run must end without deadlock and be flagged.
        let g = two_cliques(8);
        let cfg = RunConfig {
            sbp: sbp_core::SbpConfig {
                seed: 5,
                strategy: McmcStrategy::Batch,
                ..Default::default()
            },
            cancel: CancelToken::new(),
            ..RunConfig::default()
        };
        let token = cfg.cancel.clone();
        let mut sink = ProgressFn(move |e: &ProgressEvent| {
            if matches!(e, ProgressEvent::Iteration { .. }) {
                token.cancel();
            }
        });
        let out = Edist::new(2).solve(&g, &cfg, &mut sink);
        // The run either finished just before the token landed or aborted
        // early; in both cases the partition must be coherent.
        assert_eq!(out.assignment.len(), 16);
        assert!(out.num_blocks >= 2);
    }
}

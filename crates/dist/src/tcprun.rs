//! One process = one rank: the real-cluster entrypoint over
//! [`sbp_mpi::TcpComm`].
//!
//! The distributed drivers (`edist_run`, `dcsbp_run`, and the sharded
//! rank body) are already generic over [`Communicator`]; this module is
//! the thin harness a real OS process runs: connect this rank's
//! [`TcpComm`], execute exactly the per-rank body the in-process
//! thread cluster executes, and attach a one-rank view of the
//! [`ClusterReport`]. Because EDiSt is exact, the *result* (assignment,
//! DL, trajectory) is bit-identical to a [`sbp_mpi::ThreadCluster`] run
//! with the same seed, backend, and rank count — only the
//! timing/byte-accounting side of the report differs (see
//! [`run_tcp_rank`] for the exact divergence).
//!
//! Fault handling is inherited unchanged: a peer process that dies
//! mid-run surfaces as a poisoned link inside a collective, the drivers'
//! coordinated unwind converts it into a degraded best-so-far outcome
//! ([`sbp_core::DegradedReason::RankFailure`]), and the bounded socket
//! read timeout guarantees the survivors return instead of hanging.

use crate::dcsbp::{dcsbp_run, DcsbpConfig};
use crate::distgraph::ShardIngestReport;
use crate::edist::{edist_run, EdistConfig};
use crate::exchange::ExchangeStats;
use crate::fault::{FaultComm, FaultPlan};
use crate::sharded::{sharded_rank_body, ShardedBackend};
use crate::solver::EventRelay;
use sbp_core::run::{RunConfig, RunOutcome};
use sbp_graph::{Graph, OwnershipStrategy};
use sbp_mpi::{ClusterReport, Communicator, TcpComm, TcpConfig, TcpError};
use std::path::Path;
use std::time::Instant;

/// Where one TCP rank reads its share of the graph from.
pub enum TcpSource<'a> {
    /// Every process loads the same monolithic graph (the replicated
    /// deployment of paper Algs. 4–5): work is partitioned, data is not.
    Graph(&'a Graph),
    /// A `.sbps` shard directory; this process ingests only its own
    /// shard, memory-mapped via [`sbp_graph::mmap`].
    Shards(&'a Path),
}

/// What [`run_tcp_rank`] returns: the rank-identical outcome with the
/// one-rank [`ClusterReport`] attached, plus the shard-ingest report
/// when the source was sharded.
pub struct TcpRun {
    /// The run result; bit-identical on every rank of the cluster
    /// (coordinated unwind keeps even degraded runs consistent).
    pub outcome: RunOutcome,
    /// Shard-ingest accounting — `Some` for [`TcpSource::Shards`].
    pub ingest: Option<ShardIngestReport>,
}

/// Runs this process's rank of a real multi-process cluster: performs
/// the TCP rendezvous described by `tcp`, executes the same per-rank
/// body the thread simulator runs, and returns the outcome.
///
/// The attached [`ClusterReport`] is necessarily a **one-rank view**: a
/// real process cannot observe its peers' counters without adding a
/// collective the simulator does not perform (which would break
/// schedule equivalence). Concretely, `collectives` / `total_bytes` /
/// `max_rank_bytes` cover this rank only, `makespan` is this rank's
/// wire-time clock, and `wall_seconds` spans rendezvous through solve.
/// Tests therefore assert bit-identity of *results* across transports,
/// never of report counters.
///
/// `fault` composes [`FaultComm`] over the TCP transport exactly as the
/// thread-backed solvers do, so deterministic kill/mangle/delay plans
/// exercise the coordinated unwind over real sockets too.
pub fn run_tcp_rank(
    tcp: &TcpConfig,
    source: TcpSource<'_>,
    backend: ShardedBackend,
    cfg: &RunConfig,
    fault: &FaultPlan,
) -> Result<TcpRun, TcpError> {
    let started = Instant::now();
    let comm = TcpComm::connect(tcp)?;
    let (mut outcome, xstats, ingest) = if fault.is_empty() {
        tcp_rank_body(&comm, &source, backend, cfg)
    } else {
        let fc = FaultComm::new(&comm, fault.clone());
        tcp_rank_body(&fc, &source, backend, cfg)
    };
    let stats = comm.stats();
    let report = ClusterReport {
        makespan: outcome.virtual_seconds.max(comm.virtual_time()),
        collectives: stats.collectives,
        total_bytes: stats.bytes_sent + stats.bytes_received,
        max_rank_bytes: stats.bytes_sent,
        move_bytes_raw: xstats.move_bytes_raw,
        move_bytes_encoded: xstats.move_bytes_encoded,
        ranks: comm.size(),
        wall_seconds: started.elapsed().as_secs_f64(),
    };
    outcome.virtual_seconds = report.makespan;
    outcome.cluster = Some(report);
    Ok(TcpRun { outcome, ingest })
}

/// The per-rank body, shared between the clean and fault-decorated
/// communicators. Sharded sources reuse the exact thread-cluster body
/// (guarded ingest included); monolithic sources mirror the `Edist` /
/// `DcSbp` solver bodies, whose drivers already guard their collective
/// schedules internally.
fn tcp_rank_body<C: Communicator>(
    comm: &C,
    source: &TcpSource<'_>,
    backend: ShardedBackend,
    cfg: &RunConfig,
) -> (RunOutcome, ExchangeStats, Option<ShardIngestReport>) {
    let cancel = cfg.cancel.clone();
    let relay = EventRelay::disabled();
    match source {
        TcpSource::Shards(dir) => {
            let (outcome, xstats, ingest) =
                sharded_rank_body(comm, dir, backend, cfg, &cancel, &relay);
            (outcome, xstats, Some(ingest))
        }
        TcpSource::Graph(graph) => match backend {
            ShardedBackend::Edist { sync_period } => {
                let ecfg = EdistConfig {
                    sbp: cfg.sbp.clone(),
                    // The thread-backed `Edist` solver's default; keeping
                    // it fixed preserves bit-identity with
                    // `partition --backend edist` at the same rank count.
                    ownership: OwnershipStrategy::default(),
                    sync_period,
                    checkpoint: cfg.checkpoint.clone(),
                    resume: cfg.resume.clone(),
                };
                let (outcome, xstats) = edist_run(comm, graph, &ecfg, &cancel, &relay);
                (outcome, xstats, None)
            }
            ShardedBackend::DcSbp { engine } => {
                let dcfg = DcsbpConfig {
                    sbp: cfg.sbp.clone(),
                    engine,
                    skip_finetune: false,
                };
                (
                    dcsbp_run(comm, graph, &dcfg, &cancel, &relay),
                    ExchangeStats::default(),
                    None,
                )
            }
        },
    }
}

//! Deterministic fault injection for the distributed drivers.
//!
//! [`FaultComm`] decorates any [`Communicator`] and executes a
//! [`FaultPlan`] keyed to the communicator's **sync points**: every
//! collective the wrapped rank issues (allgather, alltoall, gather,
//! broadcast, barrier) increments a per-rank counter, and faults fire
//! when the counter reaches their `at_sync` value. Because the drivers
//! issue identical collective schedules on every run (the bit-identity
//! contract), a `(plan, seed)` pair reproduces the exact same failure in
//! `cargo test` every time — no timing, no real network, no flakes.
//!
//! Three fault kinds model the classic distributed failure modes:
//!
//! * [`Fault::Kill`] — the rank abandons the schedule *before*
//!   contributing to collective `at_sync`, by raising the typed
//!   [`RankDeath`] unwind. The driver's collective guard (see
//!   `crate::error`) converts it into [`DistError::RankKilled`], poisons
//!   the peers, and returns best-so-far; peers observe the poison as
//!   [`sbp_mpi::PeerAborted`] and degrade coordinately.
//! * [`Fault::MangleRecv`] — byte payloads *received* by the rank at
//!   collective `at_sync` are corrupted (one bit-flip, then a truncation
//!   to a shorter prefix) with a SplitMix64 stream keyed on
//!   `(plan.seed, at_sync, frame)`. Only `Vec<u8>` frames are mangled —
//!   exactly the wire payloads the strict decoders in
//!   [`crate::exchange`] guard — and only frames from peers, so the
//!   corruption models a lossy interconnect, not local memory
//!   corruption.
//! * [`Fault::Delay`] — from collective `at_sync` onwards the rank's
//!   virtual clock reads `virtual_seconds` late, modeling a straggler.
//!   The skew is local to the decorated rank's own readings (the
//!   underlying simulator still synchronizes the true clocks), which is
//!   sufficient for testing timeout/health reporting paths.
//!
//! [`DistError::RankKilled`]: crate::error::DistError::RankKilled

use sbp_mpi::{CommStats, Communicator, Wire};
use std::any::Any;
use std::cell::Cell;
use std::fmt;

/// Panic payload raised by [`FaultComm`] when a [`Fault::Kill`] fires.
/// Like [`sbp_mpi::PeerAborted`], this is a *typed* unwind: the driver's
/// collective guard downcasts it into a [`DistError`](crate::error::DistError)
/// instead of crashing the process.
#[derive(Clone, Copy)]
pub struct RankDeath {
    /// The rank that was killed.
    pub rank: usize,
    /// The sync point at which it died (collectives issued so far).
    pub sync_point: u64,
}

impl fmt::Debug for RankDeath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} killed by fault plan at sync point {}",
            self.rank, self.sync_point
        )
    }
}

/// One injected fault. `rank` is the rank the fault applies to; `at_sync`
/// is the 0-based index of the collective (as counted by that rank) at
/// which it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The rank abandons the collective schedule before contributing to
    /// collective `at_sync`.
    Kill {
        /// Target rank.
        rank: usize,
        /// Sync point at which the rank dies.
        at_sync: u64,
    },
    /// Byte payloads received by `rank` at collective `at_sync` are
    /// deterministically corrupted.
    MangleRecv {
        /// Target rank.
        rank: usize,
        /// Sync point whose received frames are corrupted.
        at_sync: u64,
    },
    /// From collective `at_sync` onwards, `rank`'s virtual clock reads
    /// `virtual_seconds` late.
    Delay {
        /// Target rank.
        rank: usize,
        /// Sync point from which the skew applies.
        at_sync: u64,
        /// Added virtual seconds.
        virtual_seconds: f64,
    },
}

impl Fault {
    fn rank(&self) -> usize {
        match *self {
            Fault::Kill { rank, .. }
            | Fault::MangleRecv { rank, .. }
            | Fault::Delay { rank, .. } => rank,
        }
    }
}

/// A reproducible schedule of injected faults, applied by [`FaultComm`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Keys the corruption streams of [`Fault::MangleRecv`] entries.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (decorating with it is a no-op).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when the plan has at least one fault targeting `rank`.
    pub fn targets(&self, rank: usize) -> bool {
        self.faults.iter().any(|f| f.rank() == rank)
    }

    /// Parses the CLI fault-plan syntax: comma-separated entries of
    ///
    /// * `kill:R@K` — kill rank `R` at sync point `K`;
    /// * `mangle:R@K` — corrupt rank `R`'s received frames at sync `K`;
    /// * `delay:R@K:SECS` — skew rank `R`'s clock by `SECS` from sync `K`;
    /// * `seed:N` — set the corruption seed (defaults to 0).
    ///
    /// Example: `"seed:7,kill:1@3,mangle:0@2,delay:2@5:1.5"`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` missing `:`"))?;
            if kind == "seed" {
                plan.seed = rest.parse().map_err(|_| format!("bad seed in `{entry}`"))?;
                continue;
            }
            let (rank_s, tail) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault entry `{entry}` missing `@sync`"))?;
            let rank: usize = rank_s
                .parse()
                .map_err(|_| format!("bad rank in `{entry}`"))?;
            let fault = match kind {
                "kill" => Fault::Kill {
                    rank,
                    at_sync: tail
                        .parse()
                        .map_err(|_| format!("bad sync point in `{entry}`"))?,
                },
                "mangle" => Fault::MangleRecv {
                    rank,
                    at_sync: tail
                        .parse()
                        .map_err(|_| format!("bad sync point in `{entry}`"))?,
                },
                "delay" => {
                    let (sync_s, secs_s) = tail
                        .split_once(':')
                        .ok_or_else(|| format!("delay entry `{entry}` missing `:SECS`"))?;
                    Fault::Delay {
                        rank,
                        at_sync: sync_s
                            .parse()
                            .map_err(|_| format!("bad sync point in `{entry}`"))?,
                        virtual_seconds: secs_s
                            .parse()
                            .map_err(|_| format!("bad delay seconds in `{entry}`"))?,
                    }
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Communicator`] decorator that executes a [`FaultPlan`]. See the
/// module docs for the fault model. Wrapping a communicator with an
/// empty plan is behaviorally transparent.
pub struct FaultComm<'a, C: Communicator> {
    inner: &'a C,
    plan: FaultPlan,
    sync: Cell<u64>,
    extra_delay: Cell<f64>,
}

impl<'a, C: Communicator> FaultComm<'a, C> {
    /// Decorates `inner` with `plan`. Faults targeting other ranks are
    /// ignored by this instance (each rank decorates its own handle).
    pub fn new(inner: &'a C, plan: FaultPlan) -> Self {
        FaultComm {
            inner,
            plan,
            sync: Cell::new(0),
            extra_delay: Cell::new(0.0),
        }
    }

    /// Advances the sync-point counter and fires any `Kill`/`Delay`
    /// faults scheduled for this rank at this point. Returns the sync
    /// point just entered.
    fn tick(&self) -> u64 {
        let k = self.sync.get();
        self.sync.set(k + 1);
        let me = self.inner.rank();
        for f in &self.plan.faults {
            match *f {
                Fault::Kill { rank, at_sync } if rank == me && at_sync == k => {
                    // `resume_unwind`, not `panic_any`: the death is
                    // always caught by `guard_collectives`, and skipping
                    // the panic hook keeps backtrace noise out of the
                    // coordinated-unwind path.
                    std::panic::resume_unwind(Box::new(RankDeath {
                        rank: me,
                        sync_point: k,
                    }));
                }
                Fault::Delay {
                    rank,
                    at_sync,
                    virtual_seconds,
                } if rank == me && at_sync == k => {
                    self.extra_delay
                        .set(self.extra_delay.get() + virtual_seconds);
                }
                _ => {}
            }
        }
        k
    }

    /// Corrupts received byte frames if a `MangleRecv` fault fires at
    /// sync point `k`. Non-byte payloads and this rank's own frame are
    /// left untouched.
    fn mangle_frames<T: 'static>(&self, k: u64, frames: &mut [Vec<T>]) {
        let me = self.inner.rank();
        let fires = self.plan.faults.iter().any(
            |f| matches!(*f, Fault::MangleRecv { rank, at_sync } if rank == me && at_sync == k),
        );
        if !fires {
            return;
        }
        let mut state = self.plan.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (from, frame) in frames.iter_mut().enumerate() {
            let any: &mut dyn Any = frame;
            let Some(frame) = any.downcast_mut::<Vec<u8>>() else {
                // Non-byte payload: nothing to corrupt.
                return;
            };
            if from == me || frame.is_empty() {
                continue;
            }
            // One bit-flip anywhere, then a truncation to a strict
            // prefix: the truncation guarantees the frame no longer
            // decodes (strict decoders reject any proper prefix), the
            // flip exercises the value/limit checks too.
            let bit = (splitmix64(&mut state) as usize) % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            let keep = (splitmix64(&mut state) as usize) % frame.len();
            frame.truncate(keep);
        }
    }
}

impl<C: Communicator> Communicator for FaultComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allgatherv<T: Clone + Send + Wire + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        let k = self.tick();
        let mut out = self.inner.allgatherv(local);
        self.mangle_frames(k, &mut out);
        out
    }

    fn alltoallv<T: Clone + Send + Wire + 'static>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let k = self.tick();
        let mut out = self.inner.alltoallv(per_dest);
        self.mangle_frames(k, &mut out);
        out
    }

    fn gatherv<T: Clone + Send + Wire + 'static>(
        &self,
        root: usize,
        local: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let k = self.tick();
        let mut out = self.inner.gatherv(root, local);
        if let Some(frames) = &mut out {
            self.mangle_frames(k, frames);
        }
        out
    }

    fn broadcast<T: Clone + Send + Wire + 'static>(&self, root: usize, data: Option<T>) -> T {
        self.tick();
        self.inner.broadcast(root, data)
    }

    fn barrier(&self) {
        self.tick();
        self.inner.barrier();
    }

    fn virtual_time(&self) -> f64 {
        self.inner.virtual_time() + self.extra_delay.get()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn poison(&self) {
        self.inner.poison();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_mpi::{CostModel, SelfComm, ThreadCluster};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parse_roundtrips_the_documented_syntax() {
        let plan = FaultPlan::parse("seed:7, kill:1@3, mangle:0@2, delay:2@5:1.5").expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![
                Fault::Kill {
                    rank: 1,
                    at_sync: 3
                },
                Fault::MangleRecv {
                    rank: 0,
                    at_sync: 2
                },
                Fault::Delay {
                    rank: 2,
                    at_sync: 5,
                    virtual_seconds: 1.5
                },
            ]
        );
        assert!(plan.targets(1));
        assert!(!plan.targets(3));
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "kill",
            "kill:1",
            "kill:x@3",
            "kill:1@x",
            "delay:1@2",
            "delay:1@2:abc",
            "explode:1@2",
            "seed:banana",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let inner = SelfComm::new();
        let fc = FaultComm::new(&inner, FaultPlan::none());
        assert_eq!(fc.allgatherv(vec![1u8, 2]), vec![vec![1u8, 2]]);
        assert_eq!(fc.broadcast(0, Some(9u32)), 9);
        fc.barrier();
        assert_eq!(fc.stats().collectives, 3);
    }

    #[test]
    fn kill_raises_typed_rank_death_at_the_exact_sync_point() {
        let inner = SelfComm::new();
        let plan = FaultPlan::parse("kill:0@2").expect("parses");
        let fc = FaultComm::new(&inner, plan);
        fc.barrier(); // sync 0
        fc.barrier(); // sync 1
        let err = catch_unwind(AssertUnwindSafe(|| fc.barrier())).expect_err("killed");
        let death = err.downcast_ref::<RankDeath>().expect("typed payload");
        assert_eq!(death.rank, 0);
        assert_eq!(death.sync_point, 2);
    }

    #[test]
    fn delay_skews_only_the_reported_clock() {
        let inner = SelfComm::new();
        let plan = FaultPlan::parse("delay:0@1:2.5").expect("parses");
        let fc = FaultComm::new(&inner, plan);
        fc.barrier(); // sync 0: before the fault
        assert!(fc.virtual_time() < 1.0);
        fc.barrier(); // sync 1: fault fires
        let skewed = fc.virtual_time();
        assert!(skewed >= 2.5, "clock not skewed: {skewed}");
        assert!(inner.virtual_time() < 1.0, "inner clock must be untouched");
    }

    #[test]
    fn mangle_corrupts_only_peer_byte_frames_on_the_target_rank() {
        let payload = |r: usize| vec![r as u8; 32];
        let run = |plan_spec: &'static str| {
            ThreadCluster::run(3, CostModel::zero(), move |comm| {
                let plan = FaultPlan::parse(plan_spec).expect("parses");
                let fc = FaultComm::new(comm, plan);
                fc.allgatherv(payload(fc.rank()))
            })
        };
        let clean = run("");
        let mangled = run("seed:42,mangle:1@0");
        for rank in 0..3 {
            let (c, m) = (&clean.ranks[rank].result, &mangled.ranks[rank].result);
            if rank == 1 {
                assert_eq!(m[1], c[1], "own frame must be untouched");
                assert_ne!(m[0], c[0], "peer frame 0 must be corrupted");
                assert_ne!(m[2], c[2], "peer frame 2 must be corrupted");
                assert!(m[0].len() < c[0].len(), "truncation must shorten");
            } else {
                assert_eq!(m, c, "non-target rank {rank} must see clean frames");
            }
        }
    }

    #[test]
    fn mangle_is_deterministic_for_a_fixed_seed() {
        let run = || {
            ThreadCluster::run(2, CostModel::zero(), |comm| {
                let plan = FaultPlan::parse("seed:9,mangle:0@0").expect("parses");
                let fc = FaultComm::new(comm, plan);
                fc.allgatherv(vec![fc.rank() as u8; 64])
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ranks[0].result, b.ranks[0].result);
    }

    #[test]
    fn mangle_leaves_non_byte_payloads_alone() {
        // u32 frames are not wire payloads; the mangler must skip them
        // even when the fault fires and a peer frame is present.
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            let plan = FaultPlan::parse("mangle:0@0").expect("parses");
            let fc = FaultComm::new(comm, plan);
            fc.allgatherv(vec![fc.rank() as u32; 4])
        });
        assert_eq!(out.ranks[0].result, vec![vec![0u32; 4], vec![1u32; 4]]);
    }
}

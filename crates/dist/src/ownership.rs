//! Vertex- and block-ownership schemes (paper §III-B).
//!
//! EDiSt partitions *work*, not data: every rank holds the full graph and
//! blockmodel but only proposes moves for the vertices (and merges for the
//! blocks) it owns. The ownership scheme therefore controls load balance,
//! which directly sets the BSP makespan: with `v mod n` assignment a rank
//! that draws several hubs stalls every collective.

use sbp_graph::{round_robin_parts, Graph, Vertex};

/// How EDiSt assigns vertices to ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OwnershipStrategy {
    /// `v mod n` — cheap, oblivious to degree skew.
    Modulo,
    /// Sorted-degree balanced (the paper's scheme): vertices are sorted by
    /// descending degree and greedily assigned to the rank with the least
    /// accumulated degree mass — an LPT bound on per-rank work imbalance.
    #[default]
    SortedBalanced,
}

impl OwnershipStrategy {
    /// Materializes the per-rank owned vertex lists.
    pub fn partition(self, graph: &Graph, n_parts: usize) -> Vec<Vec<Vertex>> {
        match self {
            OwnershipStrategy::Modulo => modulo_ownership(graph.num_vertices(), n_parts),
            OwnershipStrategy::SortedBalanced => balanced_ownership(graph, n_parts),
        }
    }
}

/// `v mod n` ownership; identical to DC-SBP's round-robin distribution.
pub fn modulo_ownership(num_vertices: usize, n_parts: usize) -> Vec<Vec<Vertex>> {
    round_robin_parts(num_vertices, n_parts)
}

/// Sorted-degree balanced ownership: descending-degree greedy assignment to
/// the rank with the smallest accumulated (weighted) degree. Deterministic:
/// ties break on the lower vertex id and the lower rank id. Each returned
/// part is sorted ascending.
pub fn balanced_ownership(graph: &Graph, n_parts: usize) -> Vec<Vec<Vertex>> {
    assert!(n_parts > 0, "need at least one part");
    let n = graph.num_vertices();
    let mut order: Vec<Vertex> = (0..n as Vertex).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut load = vec![0i64; n_parts];
    let mut parts: Vec<Vec<Vertex>> = vec![Vec::with_capacity(n / n_parts + 1); n_parts];
    for v in order {
        let target = (0..n_parts)
            .min_by_key(|&p| (load[p], p))
            .expect("n_parts > 0");
        // Count degree-0 vertices as one unit so islands also spread.
        load[target] += graph.degree(v).max(1);
        parts[target].push(v);
    }
    for part in &mut parts {
        part.sort_unstable();
    }
    parts
}

/// Block ownership for the distributed merge phase: block `b` is proposed
/// by rank `b mod n` (paper Alg. 4 line 3).
pub fn owned_blocks(num_blocks: usize, rank: usize, n_ranks: usize) -> Vec<u32> {
    (0..num_blocks as u32)
        .filter(|&b| (b as usize) % n_ranks == rank)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_path() -> Graph {
        // Vertex 0 is a hub of degree 6; 7..10 form a light path.
        let mut edges = vec![];
        for i in 1..7u32 {
            edges.push((0, i, 1));
        }
        edges.push((7, 8, 1));
        edges.push((8, 9, 1));
        Graph::from_edges(10, edges)
    }

    #[test]
    fn balanced_covers_every_vertex_exactly_once() {
        let g = star_plus_path();
        let parts = balanced_ownership(&g, 3);
        let mut all: Vec<Vertex> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn balanced_spreads_degree_mass_better_than_modulo() {
        let g = star_plus_path();
        let mass = |parts: &[Vec<Vertex>]| -> (i64, i64) {
            let loads: Vec<i64> = parts
                .iter()
                .map(|p| p.iter().map(|&v| g.degree(v)).sum())
                .collect();
            (
                loads.iter().copied().max().unwrap_or(0),
                loads.iter().copied().min().unwrap_or(0),
            )
        };
        let (bal_max, _) = mass(&balanced_ownership(&g, 2));
        let (mod_max, _) = mass(&modulo_ownership(g.num_vertices(), 2));
        assert!(
            bal_max <= mod_max,
            "balanced ({bal_max}) worse than modulo ({mod_max})"
        );
    }

    #[test]
    fn balanced_is_deterministic() {
        let g = star_plus_path();
        assert_eq!(balanced_ownership(&g, 4), balanced_ownership(&g, 4));
    }

    #[test]
    fn owned_blocks_partition_the_block_space() {
        let mut all: Vec<u32> = (0..3).flat_map(|r| owned_blocks(10, r, 3)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn single_part_owns_everything() {
        let g = star_plus_path();
        let parts = balanced_ownership(&g, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], (0..10).collect::<Vec<_>>());
    }
}

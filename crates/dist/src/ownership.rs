//! Vertex- and block-ownership schemes (paper §III-B).
//!
//! The vertex-ownership strategies ([`OwnershipStrategy`],
//! [`modulo_ownership`], [`balanced_ownership`]) live in
//! [`sbp_graph::ownership`] since PR 3, because the shard planner in
//! `sbp_graph::shard` must assign edges to shards with exactly the scheme
//! EDiSt will own vertices under — a distributed load then ends with each
//! rank holding precisely its owned adjacency. They are re-exported here
//! so existing `sbp_dist::ownership` paths keep working.
//!
//! Block ownership for the distributed merge phase stays here: it has no
//! ingest-side counterpart.

pub use sbp_graph::ownership::{
    balanced_ownership, balanced_ownership_by_degree, modulo_ownership, OwnershipStrategy,
};

/// Block ownership for the distributed merge phase: block `b` is proposed
/// by rank `b mod n` (paper Alg. 4 line 3).
pub fn owned_blocks(num_blocks: usize, rank: usize, n_ranks: usize) -> Vec<u32> {
    (0..num_blocks as u32)
        .filter(|&b| (b as usize) % n_ranks == rank)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_graph::Graph;

    #[test]
    fn owned_blocks_partition_the_block_space() {
        let mut all: Vec<u32> = (0..3).flat_map(|r| owned_blocks(10, r, 3)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reexported_strategies_still_work() {
        let g = Graph::from_edges(4, vec![(0, 1, 5), (2, 3, 1)]);
        let parts = OwnershipStrategy::SortedBalanced.partition(&g, 2);
        let mut all: Vec<u32> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(modulo_ownership(4, 2), vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(balanced_ownership(&g, 2).len(), 2);
    }
}

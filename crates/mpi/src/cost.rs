//! The LogGP-style collective cost model.

/// Models the time a collective costs on the simulated interconnect:
/// `α · ⌈log₂ n⌉ + β · total_bytes`. The log term models the recursive-
/// doubling stages of tree-based MPI collectives; the linear term models
/// serialization of the gathered payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-stage latency α in seconds.
    pub latency: f64,
    /// Per-byte cost β in seconds (1/bandwidth).
    pub per_byte: f64,
}

impl CostModel {
    /// HDR-100 InfiniBand class (the paper's tinkercliffs interconnect):
    /// ~2 µs stage latency, ~12.5 GB/s effective bandwidth.
    pub fn hdr100() -> Self {
        CostModel {
            latency: 2e-6,
            per_byte: 8e-11,
        }
    }

    /// Commodity 10 GbE class (the paper's infer cluster): ~50 µs latency,
    /// ~1.25 GB/s.
    pub fn ethernet() -> Self {
        CostModel {
            latency: 5e-5,
            per_byte: 8e-10,
        }
    }

    /// Free communication — isolates algorithmic load imbalance in
    /// ablation studies.
    pub fn zero() -> Self {
        CostModel {
            latency: 0.0,
            per_byte: 0.0,
        }
    }

    /// Cost of one collective over `n` ranks moving `total_bytes`.
    pub fn collective(&self, n: usize, total_bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let stages = (n as f64).log2().ceil();
        self.latency * stages + self.per_byte * total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        assert_eq!(CostModel::hdr100().collective(1, 1_000_000), 0.0);
    }

    #[test]
    fn cost_grows_with_ranks_and_bytes() {
        let m = CostModel::hdr100();
        assert!(m.collective(4, 100) < m.collective(64, 100));
        assert!(m.collective(4, 100) < m.collective(4, 1_000_000));
    }

    #[test]
    fn zero_model_is_zero() {
        assert_eq!(CostModel::zero().collective(64, 1 << 30), 0.0);
    }

    #[test]
    fn ethernet_slower_than_ib() {
        let e = CostModel::ethernet().collective(16, 1 << 20);
        let i = CostModel::hdr100().collective(16, 1 << 20);
        assert!(e > i);
    }

    #[test]
    fn log_stages_exact_for_powers_of_two() {
        let m = CostModel {
            latency: 1.0,
            per_byte: 0.0,
        };
        assert_eq!(m.collective(2, 0), 1.0);
        assert_eq!(m.collective(8, 0), 3.0);
        assert_eq!(m.collective(64, 0), 6.0);
    }
}

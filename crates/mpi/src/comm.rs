//! The communicator abstraction and the trivial single-rank implementation.

use crate::wire::Wire;
use std::cell::Cell;

/// Communication statistics accumulated by a rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Collectives this rank participated in.
    pub collectives: u64,
    /// Payload bytes this rank contributed.
    pub bytes_sent: u64,
    /// Payload bytes this rank received from peers.
    pub bytes_received: u64,
}

/// MPI-style communicator. The distributed algorithms in `sbp-dist` are
/// written against this trait only, so they run identically on the trivial
/// single-rank communicator, the in-process thread cluster, or (in
/// principle) real MPI bindings.
///
/// All collectives are *matched by call order* across ranks, exactly like
/// MPI: every rank must invoke the same sequence of collectives.
pub trait Communicator {
    /// This rank's id, `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// `MPI_Allgatherv`: every rank contributes `local`; every rank
    /// receives all contributions, indexed by rank.
    fn allgatherv<T: Clone + Send + Wire + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>>;

    /// `MPI_Alltoallv`: rank `r` sends `per_dest[d]` to rank `d` and
    /// receives one vector from every rank, indexed by source. Unlike
    /// [`Communicator::allgatherv`] the payloads are point-to-point — the
    /// sharded-ingest cut-edge exchange depends on this, since routing cut
    /// edges through an allgather would hand every rank the whole graph.
    ///
    /// # Panics
    /// Panics if `per_dest.len() != self.size()`.
    fn alltoallv<T: Clone + Send + Wire + 'static>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>>;

    /// `MPI_Gatherv`: contributions travel to `root`, which receives
    /// `Some(all)`; other ranks receive `None`.
    fn gatherv<T: Clone + Send + Wire + 'static>(
        &self,
        root: usize,
        local: Vec<T>,
    ) -> Option<Vec<Vec<T>>>;

    /// `MPI_Bcast`: `root` supplies `Some(data)`; every rank returns the
    /// root's value. Non-root ranks pass `None`.
    fn broadcast<T: Clone + Send + Wire + 'static>(&self, root: usize, data: Option<T>) -> T;

    /// Synchronization barrier (also synchronizes virtual clocks).
    fn barrier(&self);

    /// Current virtual-clock reading in seconds: accumulated thread CPU
    /// time plus modeled communication costs (see crate docs).
    fn virtual_time(&self) -> f64;

    /// Communication statistics so far.
    fn stats(&self) -> CommStats;

    /// Notifies every peer that this rank is abandoning the collective
    /// schedule (coordinated-unwind protocol). Peers blocked in — or later
    /// entering — a collective observe the notice as a typed
    /// [`PeerAborted`](crate::thread::PeerAborted) unwind instead of
    /// deadlocking. A rank MUST call this before returning early from a
    /// matched-collective region, and MUST NOT issue further collectives
    /// afterwards. The default is a no-op, which is correct for
    /// single-rank communicators (there are no peers to wake).
    fn poison(&self) {}
}

/// The single-rank communicator: all collectives are identities and the
/// virtual clock is plain thread CPU time. This is the "shared memory
/// baseline" configuration of the paper's figures.
pub struct SelfComm {
    start_cpu: f64,
    stats: Cell<CommStats>,
}

impl SelfComm {
    /// Creates a single-rank communicator; the virtual clock starts now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        SelfComm {
            start_cpu: crate::cputime::thread_cpu_time(),
            stats: Cell::new(CommStats::default()),
        }
    }

    fn bump(&self) {
        let mut s = self.stats.get();
        s.collectives += 1;
        self.stats.set(s);
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn allgatherv<T: Clone + Send + Wire + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        self.bump();
        vec![local]
    }

    fn alltoallv<T: Clone + Send + Wire + 'static>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(per_dest.len(), 1, "single-rank communicator has one dest");
        self.bump();
        per_dest
    }

    fn gatherv<T: Clone + Send + Wire + 'static>(
        &self,
        root: usize,
        local: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        assert_eq!(root, 0, "single-rank communicator only has rank 0");
        self.bump();
        Some(vec![local])
    }

    fn broadcast<T: Clone + Send + Wire + 'static>(&self, root: usize, data: Option<T>) -> T {
        assert_eq!(root, 0, "single-rank communicator only has rank 0");
        self.bump();
        data.expect("broadcast root must supply data")
    }

    fn barrier(&self) {
        self.bump();
    }

    fn virtual_time(&self) -> f64 {
        crate::cputime::thread_cpu_time() - self.start_cpu
    }

    fn stats(&self) -> CommStats {
        self.stats.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selfcomm_identity_collectives() {
        let c = SelfComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.allgatherv(vec![1, 2, 3]), vec![vec![1, 2, 3]]);
        assert_eq!(c.alltoallv(vec![vec![7u8]]), vec![vec![7u8]]);
        assert_eq!(c.gatherv(0, vec![9]), Some(vec![vec![9]]));
        assert_eq!(c.broadcast(0, Some(42)), 42);
        c.barrier();
        assert_eq!(c.stats().collectives, 5);
    }

    #[test]
    fn selfcomm_clock_advances_with_work() {
        let c = SelfComm::new();
        let t0 = c.virtual_time();
        let mut x = 0u64;
        for i in 0..3_000_000u64 {
            x = x.wrapping_add(i ^ (i << 3));
        }
        std::hint::black_box(x);
        assert!(c.virtual_time() > t0);
    }

    #[test]
    #[should_panic(expected = "rank 0")]
    fn selfcomm_rejects_nonzero_root() {
        let c = SelfComm::new();
        c.gatherv::<u8>(1, vec![]);
    }
}

//! Aggregate communication/runtime reporting for cluster runs.
//!
//! [`ClusterReport`] condenses a [`ClusterOutcome`]
//! into the numbers the benchmark harness and the unified `Partitioner`
//! API surface: BSP makespan, collective counts, and wire-byte totals,
//! including the per-rank maximum for load-imbalance visibility.

use crate::thread::ClusterOutcome;

/// Aggregate communication/runtime report of a simulated cluster run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterReport {
    /// BSP makespan: the maximum final virtual clock across ranks (s).
    pub makespan: f64,
    /// Collective participations summed across **all** ranks (one
    /// allgather on an `n`-rank cluster counts `n`).
    pub collectives: u64,
    /// Total payload bytes moved across the simulated interconnect
    /// (sum of every rank's sent bytes).
    pub total_bytes: u64,
    /// Bytes sent by the busiest single rank — compare against
    /// `total_bytes / ranks` to spot communication imbalance.
    pub max_rank_bytes: u64,
    /// Bytes the EDiSt move exchange *would* have sent as raw fixed-width
    /// `(vertex, block)` pairs, summed over ranks. Zero for backends
    /// without a move exchange.
    pub move_bytes_raw: u64,
    /// Bytes the move exchange actually sent after delta + varint
    /// encoding (see `sbp_graph::varint`). Compare with
    /// [`ClusterReport::move_bytes_raw`] for the compression ratio the
    /// paper's ablation 2 measures.
    pub move_bytes_encoded: u64,
    /// Number of ranks.
    pub ranks: usize,
    /// Real elapsed wall time of the cluster run (s) — the physical
    /// twin of the virtual [`ClusterReport::makespan`]. Meaningful on
    /// real transports (TCP); on the in-process simulator it measures
    /// the host, not the modeled cluster.
    pub wall_seconds: f64,
}

impl ClusterReport {
    /// Summarizes a [`ClusterOutcome`], aggregating statistics over every
    /// rank (not just rank 0). The move-exchange counters start at zero;
    /// drivers that compress an exchange fill them in afterwards.
    pub fn from_outcome<R>(out: &ClusterOutcome<R>) -> Self {
        ClusterReport {
            makespan: out.makespan(),
            collectives: out.ranks.iter().map(|r| r.stats.collectives).sum(),
            total_bytes: out.total_bytes(),
            max_rank_bytes: out
                .ranks
                .iter()
                .map(|r| r.stats.bytes_sent)
                .max()
                .unwrap_or(0),
            move_bytes_raw: 0,
            move_bytes_encoded: 0,
            ranks: out.ranks.len(),
            wall_seconds: out.wall_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::thread::ThreadCluster;
    use crate::Communicator;

    #[test]
    fn report_aggregates_across_all_ranks() {
        // Rank 1 sends a bigger payload than the others; the report must
        // see every rank's traffic, not just rank 0's.
        let out = ThreadCluster::run(3, CostModel::zero(), |comm| {
            let payload = if comm.rank() == 1 {
                vec![0u64; 100]
            } else {
                vec![0u64; 1]
            };
            comm.allgatherv(payload);
        });
        let rep = ClusterReport::from_outcome(&out);
        assert_eq!(rep.ranks, 3);
        // One allgather, three participants.
        assert_eq!(rep.collectives, 3);
        assert_eq!(rep.total_bytes, 800 + 8 + 8);
        assert_eq!(rep.max_rank_bytes, 800);
        assert!(rep.max_rank_bytes <= rep.total_bytes);
    }

    #[test]
    fn empty_outcome_is_all_zero() {
        let out: ClusterOutcome<()> = ClusterOutcome {
            ranks: Vec::new(),
            wall_seconds: 0.0,
        };
        let rep = ClusterReport::from_outcome(&out);
        assert_eq!(rep.collectives, 0);
        assert_eq!(rep.max_rank_bytes, 0);
        assert_eq!(rep.ranks, 0);
    }
}

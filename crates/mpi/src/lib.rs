//! # sbp-mpi — the distributed-computing substrate
//!
//! The paper evaluates EDiSt with MPI on a 64-node InfiniBand cluster. This
//! crate substitutes that environment with an **in-process cluster
//! simulator** (see DESIGN.md §3 for the substitution rationale):
//!
//! * every MPI rank is a real OS thread executing the actual distributed
//!   algorithm; ranks interact *only* through the [`Communicator`] trait,
//!   whose collectives have `MPI_Allgatherv`/`MPI_Gatherv`/`MPI_Bcast`
//!   semantics — so the algorithms are genuinely distributed programs;
//! * runtimes are reported through **virtual clocks**: between collectives
//!   each rank accumulates its measured *thread CPU time* (correct even
//!   when 64 rank threads share one physical core), and at each collective
//!   all participating clocks synchronize to the maximum plus a LogGP-style
//!   communication cost `α·⌈log₂ n⌉ + β·bytes` from a configurable
//!   [`CostModel`]. The resulting BSP makespan is the "runtime" reported by
//!   the benchmark harness.
//!
//! [`SelfComm`] is the trivial single-rank communicator (shared-memory
//! baseline); [`ThreadCluster`] spawns `n` rank threads and returns their
//! results plus the makespan and communication statistics.

pub mod comm;
pub mod cost;
pub mod cputime;
pub mod report;
pub mod tcp;
pub mod thread;
pub mod wire;

pub use comm::{CommStats, Communicator, SelfComm};
pub use cost::CostModel;
pub use cputime::thread_cpu_time;
pub use report::ClusterReport;
pub use tcp::{TcpComm, TcpConfig, TcpError};
pub use thread::{ClusterOutcome, PeerAborted, RankOutcome, ThreadCluster};
pub use wire::Wire;

//! Per-thread CPU time measurement.
//!
//! `std::time::Instant` measures wall time, which over-reports a rank's
//! compute when many rank threads share few cores (the thread is charged
//! for time it spent descheduled). `CLOCK_THREAD_CPUTIME_ID` charges each
//! thread only for cycles it actually executed, which is what the virtual
//! clocks must accumulate.

// Minimal hand-rolled binding: the build container has no crates.io
// access, so the `libc` crate is unavailable; `clock_gettime` lives in the
// C library std already links against.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    /// `CLOCK_THREAD_CPUTIME_ID` from `<time.h>` (Linux UAPI, stable ABI).
    pub const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        pub fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
}

/// Seconds of CPU time consumed by the calling thread.
///
/// Falls back to a process-wide monotonic clock on platforms without
/// `clock_gettime` thread clocks (never on Linux, where the paper's
/// experiments and ours run).
pub fn thread_cpu_time() -> f64 {
    // The hand-rolled timespec assumes 64-bit time_t/long; 32-bit targets
    // fall back to the wall clock below.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        let mut ts = sys::Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: ts is a valid, writable timespec; the clock id is a
        // compile-time constant supported on all Linux kernels we target.
        let rc = unsafe { sys::clock_gettime(sys::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
        ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_nondecreasing() {
        let a = thread_cpu_time();
        let b = thread_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn busy_loop_accumulates_cpu_time() {
        let a = thread_cpu_time();
        let mut x = 0u64;
        for i in 0..5_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_time();
        assert!(b > a, "busy loop consumed no CPU time");
    }

    #[test]
    fn sleeping_does_not_accumulate_cpu_time() {
        let a = thread_cpu_time();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let b = thread_cpu_time();
        // Sleeping burns far less than 50ms of CPU.
        assert!(b - a < 0.020, "sleep charged {}s of CPU", b - a);
    }
}

//! Per-thread CPU time measurement.
//!
//! `std::time::Instant` measures wall time, which over-reports a rank's
//! compute when many rank threads share few cores (the thread is charged
//! for time it spent descheduled). `CLOCK_THREAD_CPUTIME_ID` charges each
//! thread only for cycles it actually executed, which is what the virtual
//! clocks must accumulate.

/// Seconds of CPU time consumed by the calling thread.
///
/// Falls back to a process-wide monotonic clock on platforms without
/// `clock_gettime` thread clocks (never on Linux, where the paper's
/// experiments and ours run).
pub fn thread_cpu_time() -> f64 {
    #[cfg(target_os = "linux")]
    {
        let mut ts = libc::timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: ts is a valid, writable timespec; the clock id is a
        // compile-time constant supported on all Linux kernels we target.
        let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
        ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
    }
    #[cfg(not(target_os = "linux"))]
    {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_nondecreasing() {
        let a = thread_cpu_time();
        let b = thread_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn busy_loop_accumulates_cpu_time() {
        let a = thread_cpu_time();
        let mut x = 0u64;
        for i in 0..5_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_time();
        assert!(b > a, "busy loop consumed no CPU time");
    }

    #[test]
    fn sleeping_does_not_accumulate_cpu_time() {
        let a = thread_cpu_time();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let b = thread_cpu_time();
        // Sleeping burns far less than 50ms of CPU.
        assert!(b - a < 0.020, "sleep charged {}s of CPU", b - a);
    }
}

//! The in-process thread cluster: rank threads + channel collectives +
//! virtual clocks.

use crate::comm::{CommStats, Communicator};
use crate::cost::CostModel;
use crate::cputime::thread_cpu_time;
use crate::wire::Wire;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

enum Envelope {
    Data {
        from: usize,
        t: f64,
        bytes: usize,
        payload: Box<dyn Any + Send>,
    },
    /// A peer rank abandoned the collective schedule (panic or typed
    /// abort); unwind this rank too instead of deadlocking.
    Poison { from: usize },
}

/// Panic payload raised when a collective observes a peer's poison
/// notice. Fault-aware drivers `catch_unwind` around their collective
/// regions and downcast to this type to convert peer death into a typed
/// error (returning best-so-far instead of crashing); payloads of any
/// other type are genuine bugs and must be re-raised via
/// `resume_unwind`.
#[derive(Clone, Copy)]
pub struct PeerAborted {
    /// The rank whose poison notice this rank observed. With cascading
    /// aborts this is the *nearest* aborted peer, not necessarily the
    /// originating failure.
    pub from: usize,
}

impl std::fmt::Debug for PeerAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer rank {} aborted the collective schedule", self.from)
    }
}

/// A buffered incoming message: (virtual clock, payload bytes, payload).
type Buffered = (f64, usize, Box<dyn Any + Send>);

/// Per-rank communicator handle for the thread cluster. Not `Sync`: each
/// rank thread owns exactly one.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Out-of-order arrivals, queued per source rank.
    pending: RefCell<Vec<VecDeque<Buffered>>>,
    cost: CostModel,
    vclock: Cell<f64>,
    last_cpu: Cell<f64>,
    stats: Cell<CommStats>,
}

impl ThreadComm {
    fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
        cost: CostModel,
    ) -> Self {
        ThreadComm {
            rank,
            size,
            senders,
            receiver,
            pending: RefCell::new((0..size).map(|_| VecDeque::new()).collect()),
            cost,
            vclock: Cell::new(0.0),
            last_cpu: Cell::new(thread_cpu_time()),
            stats: Cell::new(CommStats::default()),
        }
    }

    /// Accrues CPU time since the last collective into the virtual clock
    /// and returns the updated reading.
    fn accrue_busy(&self) -> f64 {
        let now = thread_cpu_time();
        let busy = (now - self.last_cpu.get()).max(0.0);
        let t = self.vclock.get() + busy;
        self.vclock.set(t);
        t
    }

    /// Marks the end of a collective: local (de)serialization work inside
    /// the collective is replaced by the modeled cost, not double-counted.
    fn finish_collective(&self) {
        self.last_cpu.set(thread_cpu_time());
    }

    fn send_to(&self, dest: usize, t: f64, bytes: usize, payload: Box<dyn Any + Send>) {
        // A closed peer channel means that rank already abandoned the
        // schedule (coordinated unwind) and its thread returned; its
        // poison notice is necessarily in our queue already, so the next
        // recv unwinds this rank. Dropping the send instead of panicking
        // keeps the abort race-free.
        let _ = self.senders[dest].send(Envelope::Data {
            from: self.rank,
            t,
            bytes,
            payload,
        });
    }

    /// Receives the next matched envelope from rank `from`, buffering
    /// out-of-order arrivals from other ranks.
    fn recv_from(&self, from: usize) -> Buffered {
        if let Some(hit) = self.pending.borrow_mut()[from].pop_front() {
            return hit;
        }
        loop {
            match self
                .receiver
                .recv()
                .expect("cluster channel closed while awaiting collective")
            {
                Envelope::Data {
                    from: f,
                    t,
                    bytes,
                    payload,
                } => {
                    if f == from {
                        return (t, bytes, payload);
                    }
                    self.pending.borrow_mut()[f].push_back((t, bytes, payload));
                }
                Envelope::Poison { from } => {
                    // `resume_unwind` skips the panic hook: the poison
                    // is part of the coordinated-unwind protocol and is
                    // always caught at the rank boundary, so a backtrace
                    // would be pure noise.
                    std::panic::resume_unwind(Box::new(PeerAborted { from }));
                }
            }
        }
    }

    fn add_stats(&self, sent: usize, received: usize) {
        let mut s = self.stats.get();
        s.collectives += 1;
        s.bytes_sent += sent as u64;
        s.bytes_received += received as u64;
        self.stats.set(s);
    }

    fn poison_peers(&self) {
        for (i, s) in self.senders.iter().enumerate() {
            if i != self.rank {
                let _ = s.send(Envelope::Poison { from: self.rank });
            }
        }
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn allgatherv<T: Clone + Send + Wire + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        // Implemented as gather-to-0 + broadcast: identical semantics and
        // modeled cost to a mesh exchange, but O(n) channel messages
        // instead of O(n²) — the mesh's thread wake-ups dominate wall time
        // when many rank threads share few cores. The *virtual* cost stays
        // the LogGP collective model either way.
        let my_t = self.accrue_busy();
        let my_bytes = local.len() * std::mem::size_of::<T>();
        if self.size == 1 {
            self.vclock.set(my_t);
            self.add_stats(0, 0);
            self.finish_collective();
            return vec![local];
        }
        if self.rank != 0 {
            self.send_to(0, my_t, my_bytes, Box::new(local));
            let (t_sync, total_bytes, payload) = self.recv_from(0);
            self.vclock.set(t_sync);
            self.add_stats(my_bytes, total_bytes - my_bytes);
            self.finish_collective();
            return *payload
                .downcast::<Vec<Vec<T>>>()
                .expect("collective type mismatch across ranks");
        }
        // Root: assemble, synchronize clocks, redistribute.
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        let mut t_max = my_t;
        let mut total_bytes = my_bytes;
        result[0] = Some(local);
        #[allow(clippy::needless_range_loop)] // `from` is a rank id, not just an index
        for from in 1..self.size {
            let (t, bytes, payload) = self.recv_from(from);
            t_max = t_max.max(t);
            total_bytes += bytes;
            result[from] = Some(
                *payload
                    .downcast::<Vec<T>>()
                    .expect("collective type mismatch across ranks"),
            );
        }
        let assembled: Vec<Vec<T>> = result
            .into_iter()
            .map(|r| r.expect("every rank slot filled"))
            .collect();
        let t_sync = t_max + self.cost.collective(self.size, total_bytes);
        for dest in 1..self.size {
            self.send_to(dest, t_sync, total_bytes, Box::new(assembled.clone()));
        }
        self.vclock.set(t_sync);
        self.add_stats(my_bytes, total_bytes - my_bytes);
        self.finish_collective();
        assembled
    }

    fn alltoallv<T: Clone + Send + Wire + 'static>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            per_dest.len(),
            self.size,
            "alltoallv needs one payload per rank"
        );
        let my_t = self.accrue_busy();
        let elem = std::mem::size_of::<T>();
        if self.size == 1 {
            self.vclock.set(my_t);
            self.add_stats(0, 0);
            self.finish_collective();
            return per_dest;
        }
        // True point-to-point mesh: rank r's bucket for rank d travels
        // directly, so — unlike the allgather — no rank ever observes
        // traffic that is not addressed to it.
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        let mut sent_bytes = 0usize;
        for (dest, payload) in per_dest.into_iter().enumerate() {
            if dest == self.rank {
                result[dest] = Some(payload);
            } else {
                let bytes = payload.len() * elem;
                sent_bytes += bytes;
                self.send_to(dest, my_t, bytes, Box::new(payload));
            }
        }
        let mut t_max = my_t;
        let mut received_bytes = 0usize;
        #[allow(clippy::needless_range_loop)] // `from` is a rank id, not just an index
        for from in 0..self.size {
            if from == self.rank {
                continue;
            }
            let (t, bytes, payload) = self.recv_from(from);
            t_max = t_max.max(t);
            received_bytes += bytes;
            result[from] = Some(
                *payload
                    .downcast::<Vec<T>>()
                    .expect("collective type mismatch across ranks"),
            );
        }
        self.vclock
            .set(t_max + self.cost.collective(self.size, sent_bytes + received_bytes));
        self.add_stats(sent_bytes, received_bytes);
        self.finish_collective();
        result
            .into_iter()
            .map(|r| r.expect("every rank slot filled"))
            .collect()
    }

    fn gatherv<T: Clone + Send + Wire + 'static>(
        &self,
        root: usize,
        local: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        assert!(root < self.size, "gather root out of range");
        let my_t = self.accrue_busy();
        let my_bytes = local.len() * std::mem::size_of::<T>();
        if self.rank != root {
            self.send_to(root, my_t, my_bytes, Box::new(local));
            self.add_stats(my_bytes, 0);
            self.finish_collective();
            return None;
        }
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        result[self.rank] = Some(local);
        let mut t_max = my_t;
        let mut total_bytes = my_bytes;
        let mut received = 0usize;
        #[allow(clippy::needless_range_loop)] // `from` is a rank id, not just an index
        for from in 0..self.size {
            if from == root {
                continue;
            }
            let (t, bytes, payload) = self.recv_from(from);
            t_max = t_max.max(t);
            total_bytes += bytes;
            received += bytes;
            result[from] = Some(
                *payload
                    .downcast::<Vec<T>>()
                    .expect("collective type mismatch across ranks"),
            );
        }
        self.vclock
            .set(t_max + self.cost.collective(self.size, total_bytes));
        self.add_stats(0, received);
        self.finish_collective();
        Some(
            result
                .into_iter()
                .map(|r| r.expect("every rank slot filled"))
                .collect(),
        )
    }

    fn broadcast<T: Clone + Send + Wire + 'static>(&self, root: usize, data: Option<T>) -> T {
        assert!(root < self.size, "broadcast root out of range");
        let my_t = self.accrue_busy();
        if self.rank == root {
            let data = data.expect("broadcast root must supply data");
            let bytes = std::mem::size_of::<T>();
            for dest in 0..self.size {
                if dest != root {
                    self.send_to(dest, my_t, bytes, Box::new(data.clone()));
                }
            }
            self.vclock
                .set(my_t + self.cost.collective(self.size, bytes));
            self.add_stats(bytes * (self.size - 1), 0);
            self.finish_collective();
            data
        } else {
            let (t, bytes, payload) = self.recv_from(root);
            self.vclock
                .set(my_t.max(t) + self.cost.collective(self.size, bytes));
            self.add_stats(0, bytes);
            self.finish_collective();
            *payload
                .downcast::<T>()
                .expect("collective type mismatch across ranks")
        }
    }

    fn barrier(&self) {
        // A zero-payload allgather has exactly barrier semantics and
        // synchronizes the virtual clocks.
        let _ = self.allgatherv::<u8>(Vec::new());
    }

    fn virtual_time(&self) -> f64 {
        self.vclock.get() + (thread_cpu_time() - self.last_cpu.get()).max(0.0)
    }

    fn stats(&self) -> CommStats {
        self.stats.get()
    }

    fn poison(&self) {
        self.poison_peers();
    }
}

/// What one rank produced.
#[derive(Clone, Debug)]
pub struct RankOutcome<R> {
    /// The closure's return value.
    pub result: R,
    /// Final virtual-clock reading (BSP time of this rank).
    pub virtual_time: f64,
    /// Communication statistics.
    pub stats: CommStats,
}

/// Outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterOutcome<R> {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankOutcome<R>>,
    /// Real elapsed wall time of the whole cluster run (s) — the
    /// physical twin of the virtual-clock [`ClusterOutcome::makespan`].
    /// On the simulator the two differ wildly (rank threads share
    /// cores); on a real transport they converge.
    pub wall_seconds: f64,
}

impl<R> ClusterOutcome<R> {
    /// The BSP makespan: the maximum final virtual clock — the simulated
    /// wall time of the distributed run.
    pub fn makespan(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.virtual_time)
            .fold(0.0, f64::max)
    }

    /// Total bytes moved across the simulated interconnect.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.stats.bytes_sent).sum()
    }

    /// Rank 0's result (where gather-style algorithms place the answer).
    pub fn root(&self) -> &R {
        &self.ranks[0].result
    }
}

/// Spawns `n` rank threads running `f` and collects their outcomes.
pub struct ThreadCluster;

impl ThreadCluster {
    /// Runs `f(comm)` on `n` rank threads connected by an all-to-all
    /// channel mesh with the given [`CostModel`]. Panics in any rank are
    /// propagated (peers are poisoned first, so nothing deadlocks).
    pub fn run<R, F>(n: usize, cost: CostModel, f: F) -> ClusterOutcome<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Send + Sync,
    {
        assert!(n > 0, "need at least one rank");
        let started = std::time::Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let f = &f;
        let outcomes: Vec<RankOutcome<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, receiver)| {
                    let senders = senders.clone();
                    scope.spawn(move || {
                        let comm = ThreadComm::new(rank, n, senders, receiver, cost);
                        let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        match result {
                            Ok(result) => {
                                // Tail compute after the last collective.
                                let vt = comm.virtual_time();
                                RankOutcome {
                                    result,
                                    virtual_time: vt,
                                    stats: comm.stats(),
                                }
                            }
                            Err(e) => {
                                comm.poison_peers();
                                resume_unwind(e);
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(o) => o,
                    Err(e) => resume_unwind(e),
                })
                .collect()
        });
        ClusterOutcome {
            ranks: outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_returns_rank_ordered_contributions() {
        let out = ThreadCluster::run(4, CostModel::zero(), |comm| {
            let local = vec![comm.rank() as u32 * 10, comm.rank() as u32 * 10 + 1];
            comm.allgatherv(local)
        });
        for rank in 0..4 {
            let gathered = &out.ranks[rank].result;
            assert_eq!(gathered.len(), 4);
            for (src, part) in gathered.iter().enumerate() {
                assert_eq!(part, &vec![src as u32 * 10, src as u32 * 10 + 1]);
            }
        }
    }

    #[test]
    fn allgather_identical_across_ranks() {
        let out = ThreadCluster::run(8, CostModel::zero(), |comm| {
            comm.allgatherv(vec![comm.rank() * 7])
        });
        let first = &out.ranks[0].result;
        for r in &out.ranks {
            assert_eq!(&r.result, first);
        }
    }

    #[test]
    fn alltoallv_routes_point_to_point() {
        let out = ThreadCluster::run(3, CostModel::zero(), |comm| {
            // Rank r sends [r*10 + d] to rank d.
            let per_dest: Vec<Vec<u32>> = (0..3)
                .map(|d| vec![comm.rank() as u32 * 10 + d as u32])
                .collect();
            comm.alltoallv(per_dest)
        });
        for (rank, r) in out.ranks.iter().enumerate() {
            let got = &r.result;
            assert_eq!(got.len(), 3);
            for (src, payload) in got.iter().enumerate() {
                assert_eq!(payload, &vec![src as u32 * 10 + rank as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_counts_only_addressed_bytes() {
        // Rank 0 sends 100 u64s to rank 1 and nothing to rank 2; rank 2
        // must receive zero bytes — an allgather would have charged it.
        let out = ThreadCluster::run(3, CostModel::zero(), |comm| {
            let mut per_dest = vec![Vec::new(); 3];
            if comm.rank() == 0 {
                per_dest[1] = vec![0u64; 100];
            }
            comm.alltoallv(per_dest);
            comm.stats()
        });
        assert_eq!(out.ranks[0].result.bytes_sent, 800);
        assert_eq!(out.ranks[1].result.bytes_received, 800);
        assert_eq!(out.ranks[2].result.bytes_received, 0);
        assert_eq!(out.ranks[2].result.bytes_sent, 0);
    }

    #[test]
    fn alltoallv_with_empty_payloads_and_self_delivery() {
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            let mut per_dest: Vec<Vec<u8>> = vec![Vec::new(); 2];
            per_dest[comm.rank()] = vec![comm.rank() as u8; 3]; // to self only
            comm.alltoallv(per_dest)
        });
        for (rank, r) in out.ranks.iter().enumerate() {
            assert_eq!(r.result[rank], vec![rank as u8; 3]);
            assert!(r.result[1 - rank].is_empty());
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let out = ThreadCluster::run(3, CostModel::zero(), |comm| {
            comm.gatherv(1, vec![comm.rank() as u8])
        });
        assert!(out.ranks[0].result.is_none());
        assert!(out.ranks[2].result.is_none());
        let root = out.ranks[1].result.as_ref().expect("root has data");
        assert_eq!(root, &vec![vec![0u8], vec![1], vec![2]]);
    }

    #[test]
    fn broadcast_distributes_root_value() {
        let out = ThreadCluster::run(5, CostModel::zero(), |comm| {
            let data = (comm.rank() == 2).then_some(String::from("hello"));
            comm.broadcast(2, data)
        });
        for r in &out.ranks {
            assert_eq!(r.result, "hello");
        }
    }

    #[test]
    fn empty_payload_allgather() {
        let out = ThreadCluster::run(3, CostModel::zero(), |comm| {
            comm.allgatherv::<u64>(Vec::new())
        });
        for r in &out.ranks {
            assert_eq!(r.result, vec![Vec::<u64>::new(); 3]);
        }
    }

    #[test]
    fn multiple_collectives_in_sequence() {
        let out = ThreadCluster::run(4, CostModel::zero(), |comm| {
            let a = comm.allgatherv(vec![comm.rank()]);
            comm.barrier();
            comm.allgatherv(vec![a.len() * 100 + comm.rank()])
        });
        for r in &out.ranks {
            assert_eq!(r.result, vec![vec![400], vec![401], vec![402], vec![403]]);
        }
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = ThreadCluster::run(1, CostModel::hdr100(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.allgatherv(vec![1, 2, 3])
        });
        assert_eq!(out.ranks[0].result, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn virtual_clock_includes_comm_cost() {
        // With an enormous per-collective latency the makespan must be
        // dominated by the modeled cost even though real time is tiny.
        let big = CostModel {
            latency: 10.0,
            per_byte: 0.0,
        };
        let out = ThreadCluster::run(2, big, |comm| {
            comm.barrier();
            comm.barrier();
        });
        // Two barriers × ceil(log2 2)=1 stage × 10s = 20s of virtual time.
        assert!(out.makespan() >= 20.0, "makespan {}", out.makespan());
        assert!(out.makespan() < 25.0, "makespan {}", out.makespan());
    }

    #[test]
    fn virtual_clock_tracks_slowest_rank() {
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                // Busy-spin some CPU.
                let mut x = 0u64;
                for i in 0..20_000_000u64 {
                    x = x.wrapping_add(i * i);
                }
                std::hint::black_box(x);
            }
            comm.barrier();
            comm.virtual_time()
        });
        // After the barrier both clocks equal the slow rank's time.
        let (t0, t1) = (out.ranks[0].result, out.ranks[1].result);
        assert!(
            (t0 - t1).abs() < 0.05 * t0.max(t1).max(1e-3),
            "clocks diverged: {t0} vs {t1}"
        );
    }

    #[test]
    fn stats_count_collectives_and_bytes() {
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            comm.allgatherv(vec![0u64; 100]);
            comm.stats()
        });
        for r in &out.ranks {
            assert_eq!(r.result.collectives, 1);
            assert_eq!(r.result.bytes_sent, 800);
            assert_eq!(r.result.bytes_received, 800);
        }
    }

    #[test]
    fn panicking_rank_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            ThreadCluster::run(3, CostModel::zero(), |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                comm.barrier();
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn out_of_order_arrival_is_buffered() {
        // Rank 1 races ahead sending two collectives' payloads before rank
        // 0 finishes its compute; rank 0 must match them in order.
        let out = ThreadCluster::run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let mut x = 0u64;
                for i in 0..5_000_000u64 {
                    x = x.wrapping_add(i);
                }
                std::hint::black_box(x);
            }
            let a = comm.allgatherv(vec![comm.rank() as u32 + 10]);
            let b = comm.allgatherv(vec![comm.rank() as u32 + 20]);
            (a, b)
        });
        for r in &out.ranks {
            assert_eq!(r.result.0, vec![vec![10], vec![11]]);
            assert_eq!(r.result.1, vec![vec![20], vec![21]]);
        }
    }
}

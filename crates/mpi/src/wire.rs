//! Canonical byte encoding for collective payloads.
//!
//! The in-process [`ThreadComm`](crate::thread::ThreadComm) moves
//! payloads between rank threads as `Box<dyn Any>` — no serialization at
//! all. A real transport needs actual bytes, so every type that travels
//! through a [`Communicator`](crate::Communicator) collective implements
//! [`Wire`]: a strict, canonical, self-delimiting encoding built on the
//! workspace varint codec ([`sbp_graph::varint`]).
//!
//! The encoding is **canonical** (one byte string per value — integers
//! are varints, floats are fixed-width `to_bits`), which is load-bearing
//! for the exactness story: a TCP cluster and the thread simulator must
//! produce bit-identical results, so nothing about the representation
//! may depend on the transport.
//!
//! Decoders follow the same discipline as every other decoder in the
//! workspace (see [`sbp_graph::frame`]): typed [`DecodeError`]s, never
//! panics, and no allocation sized from attacker-controlled data before
//! it is bounds-checked against the bytes actually present.

use sbp_graph::frame::DecodeError;
use sbp_graph::varint::{read_i64, read_u64, write_i64, write_u64};

/// A value with a canonical wire encoding, usable as a collective
/// payload element on any [`Communicator`](crate::Communicator)
/// implementation, including real transports.
pub trait Wire: Sized {
    /// Appends this value's canonical encoding to `buf`.
    fn wire_write(&self, buf: &mut Vec<u8>);

    /// Decodes one value starting at `*pos`, advancing `*pos` past it.
    /// Strict: truncation and out-of-domain values return a typed error.
    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError>;
}

/// Encodes one value into a fresh buffer.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.wire_write(&mut buf);
    buf
}

/// Decodes exactly one value from `buf`, rejecting trailing bytes.
pub fn decode<T: Wire>(buf: &[u8]) -> Result<T, DecodeError> {
    let mut pos = 0usize;
    let value = T::wire_read(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes { what: "wire value" });
    }
    Ok(value)
}

const TRUNCATED: DecodeError = DecodeError::Truncated { what: "wire value" };

impl Wire for u64 {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        write_u64(buf, *self);
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        read_u64(buf, pos).ok_or(TRUNCATED)
    }
}

impl Wire for i64 {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        write_i64(buf, *self);
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        read_i64(buf, pos).ok_or(TRUNCATED)
    }
}

/// Narrow unsigned integers travel as varint `u64` with a range check.
macro_rules! wire_unsigned {
    ($($t:ty => $what:literal),* $(,)?) => {$(
        impl Wire for $t {
            fn wire_write(&self, buf: &mut Vec<u8>) {
                write_u64(buf, *self as u64);
            }

            fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
                let raw = read_u64(buf, pos).ok_or(TRUNCATED)?;
                <$t>::try_from(raw).map_err(|_| DecodeError::ValueOutOfRange { what: $what })
            }
        }
    )*};
}

wire_unsigned!(u8 => "wire u8", u16 => "wire u16", u32 => "wire u32", usize => "wire usize");

impl Wire for i32 {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        write_i64(buf, i64::from(*self));
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let raw = read_i64(buf, pos).ok_or(TRUNCATED)?;
        i32::try_from(raw).map_err(|_| DecodeError::ValueOutOfRange { what: "wire i32" })
    }
}

impl Wire for f64 {
    /// Fixed-width little-endian `to_bits`, preserving every bit pattern
    /// (including NaN payloads and signed zeros) — DL values must
    /// survive the wire bit-exactly.
    fn wire_write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= buf.len())
            .ok_or(TRUNCATED)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&buf[*pos..end]);
        *pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }
}

impl Wire for bool {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let byte = *buf.get(*pos).ok_or(TRUNCATED)?;
        *pos += 1;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::ValueOutOfRange { what: "wire bool" }),
        }
    }
}

impl Wire for String {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        write_u64(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let len = read_u64(buf, pos).ok_or(TRUNCATED)?;
        let remaining = (buf.len() - *pos) as u64;
        if len > remaining {
            return Err(DecodeError::CountExceedsPayload {
                what: "wire string",
                declared: len,
                max: remaining,
            });
        }
        let end = *pos + len as usize;
        let s = std::str::from_utf8(&buf[*pos..end])
            .map_err(|_| DecodeError::ValueOutOfRange { what: "wire utf8" })?
            .to_string();
        *pos = end;
        Ok(s)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_write(&self, buf: &mut Vec<u8>) {
        write_u64(buf, self.len() as u64);
        for item in self {
            item.wire_write(buf);
        }
    }

    fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let count = read_u64(buf, pos).ok_or(TRUNCATED)?;
        // Every element encodes to at least one byte, so a count beyond
        // the remaining bytes is hostile — reject before allocating.
        let remaining = (buf.len() - *pos) as u64;
        if count > remaining {
            return Err(DecodeError::CountExceedsPayload {
                what: "wire vec",
                declared: count,
                max: remaining,
            });
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(T::wire_read(buf, pos)?);
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn wire_write(&self, buf: &mut Vec<u8>) {
                $(self.$idx.wire_write(buf);)+
            }

            fn wire_read(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
                Ok(($($name::wire_read(buf, pos)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let buf = encode(&value);
        assert_eq!(decode::<T>(&buf).expect("roundtrip"), value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(u32::MAX);
        roundtrip(usize::MAX);
        roundtrip(255u8);
        roundtrip(-7i32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for x in [
            0.0f64,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            -f64::NAN,
        ] {
            let buf = encode(&x);
            let back = decode::<f64>(&buf).expect("roundtrip");
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
        roundtrip((42u32, -1i64));
        roundtrip((1u32, 2u32, 3i64));
        roundtrip((vec![7u32], 9usize, 2.5f64, vec![1u8], true));
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        let buf = encode(&(vec![1u32, 2, 3], String::from("tail"), 1.25f64));
        for cut in 0..buf.len() {
            let r = decode::<(Vec<u32>, String, f64)>(&buf[..cut]);
            assert!(r.is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = encode(&7u64);
        buf.push(0);
        assert!(matches!(
            decode::<u64>(&buf),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        sbp_graph::varint::write_u64(&mut buf, u64::MAX);
        buf.push(0);
        assert!(matches!(
            decode::<Vec<u8>>(&buf),
            Err(DecodeError::CountExceedsPayload { .. })
        ));
        let mut buf = Vec::new();
        sbp_graph::varint::write_u64(&mut buf, 1 << 50);
        assert!(matches!(
            decode::<String>(&buf),
            Err(DecodeError::CountExceedsPayload { .. })
        ));
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let buf = encode(&(u64::from(u32::MAX) + 1));
        assert!(matches!(
            decode::<u32>(&buf),
            Err(DecodeError::ValueOutOfRange { .. })
        ));
        let buf = vec![2u8];
        assert!(matches!(
            decode::<bool>(&buf),
            Err(DecodeError::ValueOutOfRange { .. })
        ));
        let buf = encode(&vec![0xffu8, 0xfe]);
        assert!(matches!(
            decode::<String>(&buf),
            Err(DecodeError::ValueOutOfRange { .. })
        ));
    }
}

//! `TcpComm`: a real multi-process transport over `std::net`.
//!
//! The thread cluster ([`crate::thread::ThreadCluster`]) simulates an
//! MPI job inside one process. This module is the *physical* twin: `n`
//! OS processes rendezvous over TCP, establish a full mesh, and run the
//! exact same [`Communicator`] collectives point-to-point. Because every
//! payload travels through the canonical [`crate::wire`] encoding, a TCP
//! cluster produces bit-identical results to the simulator at the same
//! rank count and seed — the property the `tcp` test tree asserts.
//!
//! ## Rendezvous
//!
//! Rank 0 is the coordinator: it binds `coordinator` and waits for one
//! `HELLO{session, rank, ranks, listen_addr}` from every other rank.
//! Peers bind their own mesh listener *first*, then dial the coordinator
//! (with bounded retry so start order does not matter) and send HELLO.
//! Once all ranks are present the coordinator answers every peer with
//! `WELCOME{session, peer_listen_addrs}`; invalid HELLOs (wrong session,
//! duplicate rank, rank out of range, ranks mismatch) are answered with
//! a typed `ERROR` frame and fail the whole rendezvous — a misconfigured
//! launch dies loudly on both ends instead of hanging.
//!
//! After WELCOME, peers complete the mesh: rank `i` dials every rank
//! `j ∈ 1..i` (sending `MESH{session, from}`) and accepts connections
//! from every rank `> i`. Listeners exist before any dial happens, so
//! the kernel's listen backlog absorbs all ordering races. Nobody dials
//! rank 0 — the coordinator reuses the HELLO connections as its links.
//!
//! ## Frames
//!
//! Every message is one frame: `[kind u8][varint payload length]
//! [payload][checksum u64 LE]`. The checksum is seeded: handshake frames
//! (HELLO/WELCOME/MESH/ERROR) use a fixed public seed so a coordinator
//! can decode a HELLO from a *different session* and reject it with a
//! typed error, while DATA/POISON frames are sealed with the session id
//! — frames from a stale or foreign run are rejected as corrupt rather
//! than silently decoded. Frame and handshake decoders are strict and
//! pure (exported for the fuzz harness): typed [`TcpError`]s, never
//! panics, and no allocation sized by hostile input before it is
//! bounds-checked.
//!
//! ## Failure semantics
//!
//! The coordinated-unwind protocol of the thread cluster carries over:
//! [`Communicator::poison`] writes a POISON frame to every peer, and a
//! rank observing poison unwinds with [`PeerAborted`]. A *link-level*
//! failure (EOF, reset, read timeout, corrupt frame) additionally
//! cascades poison to all other peers before unwinding — a SIGKILLed
//! process cannot poison anyone itself, so its neighbours do it on its
//! behalf, and survivors converge on `PeerAborted` within one bounded
//! read timeout instead of hanging.

use crate::comm::{CommStats, Communicator};
use crate::thread::PeerAborted;
use crate::wire::{self, Wire};
use sbp_graph::frame::{concat_sections, split_sections, DecodeError};
use sbp_graph::varint::write_u64;
use std::cell::{Cell, RefCell};
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::resume_unwind;
use std::time::{Duration, Instant};

/// Frame kind: a collective payload.
pub const KIND_DATA: u8 = 1;
/// Frame kind: coordinated-unwind notice (empty payload).
pub const KIND_POISON: u8 = 2;
/// Frame kind: peer → coordinator rendezvous request.
pub const KIND_HELLO: u8 = 3;
/// Frame kind: coordinator → peer rendezvous acceptance.
pub const KIND_WELCOME: u8 = 4;
/// Frame kind: mesh-connection introduction.
pub const KIND_MESH: u8 = 5;
/// Frame kind: typed rendezvous rejection.
pub const KIND_ERROR: u8 = 6;

/// Hard ceiling on a DATA frame payload (2 GiB). Collective payloads in
/// this workspace are far smaller; anything bigger is corruption.
pub const MAX_FRAME_BYTES: u64 = 1 << 31;

/// Ceiling on handshake frame payloads — a rank map is tiny, so a large
/// declared length on an unauthenticated connection is hostile.
pub const MAX_HANDSHAKE_BYTES: u64 = 1 << 20;

/// Checksum seed for handshake frames. Fixed and public by design: the
/// coordinator must be able to decode a HELLO carrying the *wrong*
/// session id in order to reject it with a typed error.
const HANDSHAKE_SEED: u64 = 0x5b70_7463_7073_6273; // "sbsp tcp" flavored

/// `ERROR` frame code: session id mismatch.
const CODE_WRONG_SESSION: u32 = 1;
/// `ERROR` frame code: two ranks claimed the same id.
const CODE_DUPLICATE_RANK: u32 = 2;
/// `ERROR` frame code: rank outside `0..ranks`.
const CODE_RANK_OUT_OF_RANGE: u32 = 3;
/// `ERROR` frame code: world-size disagreement.
const CODE_RANKS_MISMATCH: u32 = 4;

/// Anything that can go wrong establishing or using a TCP cluster.
#[derive(Clone, Debug, PartialEq)]
pub enum TcpError {
    /// An OS-level socket error (message carried as text so the error
    /// stays `Clone` + `PartialEq` for tests).
    Io(String),
    /// Could not reach a peer/coordinator within the retry budget.
    ConnectFailed {
        /// The address dialed.
        addr: String,
        /// The last OS error observed.
        detail: String,
    },
    /// A handshake phase exceeded its deadline.
    Timeout {
        /// Which phase timed out.
        what: &'static str,
    },
    /// A frame payload failed strict decoding.
    BadFrame(DecodeError),
    /// A frame arrived with a checksum that does not match its bytes
    /// under the expected seed (corruption, or a frame from a foreign
    /// session).
    ChecksumMismatch,
    /// A frame declared a payload larger than the applicable cap.
    FrameTooLarge {
        /// The declared payload length.
        declared: u64,
    },
    /// A structurally valid frame of the wrong kind for this protocol
    /// point.
    UnexpectedFrame {
        /// What the protocol expected here.
        expected: &'static str,
        /// The frame kind actually received.
        got: u8,
    },
    /// HELLO/MESH carried a different session id.
    WrongSession {
        /// This process's session id.
        expected: u64,
        /// The session id on the wire.
        got: u64,
    },
    /// Two connections claimed the same rank.
    DuplicateRank {
        /// The contested rank.
        rank: usize,
    },
    /// A rank id outside `0..ranks`.
    RankOutOfRange {
        /// The claimed rank.
        rank: usize,
        /// The world size.
        ranks: usize,
    },
    /// Peers disagree about the world size.
    RanksMismatch {
        /// This process's world size.
        expected: usize,
        /// The world size on the wire.
        got: usize,
    },
    /// The coordinator rejected this rank's HELLO with a typed ERROR
    /// frame.
    Rejected {
        /// The machine-readable rejection code (`CODE_*`).
        code: u32,
        /// Human-readable detail from the coordinator.
        message: String,
    },
    /// The [`TcpConfig`] itself is unusable (bad rank/ranks/address).
    BadConfig(String),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(msg) => write!(f, "socket error: {msg}"),
            TcpError::ConnectFailed { addr, detail } => {
                write!(f, "could not connect to {addr}: {detail}")
            }
            TcpError::Timeout { what } => write!(f, "{what} timed out"),
            TcpError::BadFrame(e) => write!(f, "malformed frame: {e}"),
            TcpError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            TcpError::FrameTooLarge { declared } => {
                write!(f, "frame declares {declared} payload bytes, over the cap")
            }
            TcpError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected}, got frame kind {got}")
            }
            TcpError::WrongSession { expected, got } => {
                write!(
                    f,
                    "session mismatch: ours {expected:#x}, peer sent {got:#x}"
                )
            }
            TcpError::DuplicateRank { rank } => {
                write!(f, "two connections claimed rank {rank}")
            }
            TcpError::RankOutOfRange { rank, ranks } => {
                write!(f, "rank {rank} outside world of {ranks}")
            }
            TcpError::RanksMismatch { expected, got } => {
                write!(f, "world-size mismatch: ours {expected}, peer sent {got}")
            }
            TcpError::Rejected { code, message } => {
                write!(f, "coordinator rejected handshake (code {code}): {message}")
            }
            TcpError::BadConfig(msg) => write!(f, "bad cluster config: {msg}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<io::Error> for TcpError {
    fn from(e: io::Error) -> Self {
        TcpError::Io(e.to_string())
    }
}

impl From<DecodeError> for TcpError {
    fn from(e: DecodeError) -> Self {
        TcpError::BadFrame(e)
    }
}

/// splitmix64 finalizer — the workspace's standard bit mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Seeded frame checksum: mixes the seed, kind, and length, then every
/// (zero-padded) 8-byte chunk of the payload. Not cryptographic — it
/// detects corruption and cross-session frames, not adversaries.
fn frame_checksum(seed: u64, kind: u8, payload: &[u8]) -> u64 {
    let mut h = mix64(seed ^ u64::from(kind) ^ ((payload.len() as u64) << 8));
    for chunk in payload.chunks(8) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(block));
    }
    h
}

/// The checksum seed a frame of `kind` is sealed with: handshake frames
/// use the fixed public seed, data-phase frames the session id.
#[inline]
fn frame_seed(session: u64, kind: u8) -> u64 {
    match kind {
        KIND_DATA | KIND_POISON => session,
        _ => HANDSHAKE_SEED,
    }
}

/// Encodes one complete frame: `[kind][varint len][payload][checksum]`.
pub fn encode_frame(session: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 20);
    buf.push(kind);
    write_u64(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    let sum = frame_checksum(frame_seed(session, kind), kind, payload);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Decodes exactly one frame from a byte slice, rejecting trailing
/// bytes. This is the pure twin of the streaming reader, exported so the
/// fuzz harness can hammer the decoder without sockets.
pub fn decode_frame(session: u64, buf: &[u8]) -> Result<(u8, Vec<u8>), TcpError> {
    let truncated = || TcpError::BadFrame(DecodeError::Truncated { what: "tcp frame" });
    let kind = *buf.first().ok_or_else(truncated)?;
    if !(KIND_DATA..=KIND_ERROR).contains(&kind) {
        return Err(TcpError::UnexpectedFrame {
            expected: "known frame kind",
            got: kind,
        });
    }
    let mut pos = 1usize;
    let len = sbp_graph::varint::read_u64(buf, &mut pos).ok_or_else(truncated)?;
    let cap = frame_cap(kind);
    if len > cap {
        return Err(TcpError::FrameTooLarge { declared: len });
    }
    let need = (len as usize).checked_add(8).ok_or_else(truncated)?;
    if buf.len() - pos < need {
        return Err(truncated());
    }
    let payload = &buf[pos..pos + len as usize];
    pos += len as usize;
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&buf[pos..pos + 8]);
    pos += 8;
    if pos != buf.len() {
        return Err(TcpError::BadFrame(DecodeError::TrailingBytes {
            what: "tcp frame",
        }));
    }
    let expect = frame_checksum(frame_seed(session, kind), kind, payload);
    if u64::from_le_bytes(sum) != expect {
        return Err(TcpError::ChecksumMismatch);
    }
    Ok((kind, payload.to_vec()))
}

/// The payload cap applicable to a frame kind.
#[inline]
fn frame_cap(kind: u8) -> u64 {
    match kind {
        KIND_DATA | KIND_POISON => MAX_FRAME_BYTES,
        _ => MAX_HANDSHAKE_BYTES,
    }
}

/// Reads one frame off a stream. The declared length is checked against
/// the per-kind cap *before* the payload buffer is allocated.
fn read_frame<R: Read>(r: &mut R, session: u64) -> Result<(u8, Vec<u8>), TcpError> {
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let kind = kind[0];
    if !(KIND_DATA..=KIND_ERROR).contains(&kind) {
        return Err(TcpError::UnexpectedFrame {
            expected: "known frame kind",
            got: kind,
        });
    }
    // LEB128 off the stream, one byte at a time (at most ten).
    let mut len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        let byte = b[0];
        if shift == 63 && byte > 1 {
            return Err(TcpError::BadFrame(DecodeError::ValueOutOfRange {
                what: "frame length varint",
            }));
        }
        len |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(TcpError::BadFrame(DecodeError::ValueOutOfRange {
                what: "frame length varint",
            }));
        }
    }
    if len > frame_cap(kind) {
        return Err(TcpError::FrameTooLarge { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let expect = frame_checksum(frame_seed(session, kind), kind, &payload);
    if u64::from_le_bytes(sum) != expect {
        return Err(TcpError::ChecksumMismatch);
    }
    Ok((kind, payload))
}

/// A peer's rendezvous request.
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    /// Session id the peer was launched with.
    pub session: u64,
    /// The rank this connection claims.
    pub rank: usize,
    /// The world size the peer believes in.
    pub ranks: usize,
    /// Address the peer's mesh listener is bound to.
    pub listen: String,
}

/// Encodes a HELLO payload (session framing via [`concat_sections`]).
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let head = wire::encode(&(h.session, h.rank as u64, h.ranks as u64));
    concat_sections([&head, h.listen.as_bytes()])
}

/// Strictly decodes a HELLO payload.
pub fn decode_hello(buf: &[u8]) -> Result<Hello, TcpError> {
    let [head, listen] = split_sections::<2>(buf)?;
    let (session, rank, ranks): (u64, u64, u64) = wire::decode(head)?;
    let listen = std::str::from_utf8(listen)
        .map_err(|_| TcpError::BadFrame(DecodeError::ValueOutOfRange { what: "hello addr" }))?
        .to_string();
    let to_usize = |v: u64| {
        usize::try_from(v)
            .map_err(|_| TcpError::BadFrame(DecodeError::ValueOutOfRange { what: "hello rank" }))
    };
    Ok(Hello {
        session,
        rank: to_usize(rank)?,
        ranks: to_usize(ranks)?,
        listen,
    })
}

/// The coordinator's rendezvous acceptance: the full rank → listen-addr
/// map (slot 0 is empty; nobody dials the coordinator's mesh slot).
#[derive(Clone, Debug, PartialEq)]
pub struct Welcome {
    /// Session id, echoed for confirmation.
    pub session: u64,
    /// Mesh listener address of every rank, indexed by rank.
    pub peers: Vec<String>,
}

/// Encodes a WELCOME payload.
pub fn encode_welcome(w: &Welcome) -> Vec<u8> {
    concat_sections([&wire::encode(&w.session), &wire::encode(&w.peers)])
}

/// Strictly decodes a WELCOME payload.
pub fn decode_welcome(buf: &[u8]) -> Result<Welcome, TcpError> {
    let [head, peers] = split_sections::<2>(buf)?;
    Ok(Welcome {
        session: wire::decode(head)?,
        peers: wire::decode(peers)?,
    })
}

/// Strictly decodes a MESH payload into `(session, from_rank)`.
pub fn decode_mesh(buf: &[u8]) -> Result<(u64, u64), TcpError> {
    Ok(wire::decode(buf)?)
}

/// Strictly decodes an ERROR payload into `(code, message)`.
pub fn decode_error_frame(buf: &[u8]) -> Result<(u32, String), TcpError> {
    Ok(wire::decode(buf)?)
}

/// Configuration for joining a TCP cluster.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Shared session id; all ranks must agree (seeds DATA checksums).
    pub session: u64,
    /// This process's rank, `0..ranks`. Rank 0 is the coordinator.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// `host:port` the coordinator binds (rank 0) / dials (others).
    pub coordinator: String,
    /// Host the mesh listener binds on (always port 0 → ephemeral).
    pub listen_host: String,
    /// Deadline for the whole rendezvous + mesh establishment.
    pub handshake_timeout: Duration,
    /// Retry budget for dialing a not-yet-listening peer.
    pub connect_timeout: Duration,
    /// Post-handshake read/write backstop: a rank blocked longer than
    /// this on one peer treats the link as dead (poison-cascades and
    /// unwinds with [`PeerAborted`]). `None` means block forever.
    pub read_timeout: Option<Duration>,
}

impl TcpConfig {
    /// A config with production-grade default timeouts.
    pub fn new(session: u64, rank: usize, ranks: usize, coordinator: impl Into<String>) -> Self {
        TcpConfig {
            session,
            rank,
            ranks,
            coordinator: coordinator.into(),
            listen_host: "127.0.0.1".to_string(),
            handshake_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// One established peer connection. The writer half is the stream
/// itself; the reader half wraps a kernel-level clone in a `BufReader`
/// so varint headers do not cost one syscall per byte.
struct Link {
    writer: TcpStream,
    reader: RefCell<BufReader<TcpStream>>,
}

impl Link {
    fn new(stream: TcpStream) -> Result<Link, TcpError> {
        let clone = stream.try_clone()?;
        Ok(Link {
            writer: stream,
            reader: RefCell::new(BufReader::new(clone)),
        })
    }
}

/// A real multi-process communicator over TCP. See the module docs for
/// the rendezvous and failure protocols.
pub struct TcpComm {
    rank: usize,
    size: usize,
    session: u64,
    /// Peer links indexed by rank; `None` at our own slot (and
    /// everywhere when `size == 1`).
    links: Vec<Option<Link>>,
    started: Instant,
    stats: Cell<CommStats>,
}

/// Dials `addr` with bounded retry, for peers that may not be listening
/// yet (start order is unconstrained).
fn dial_retry(addr: &str, budget: Duration) -> Result<TcpStream, TcpError> {
    let deadline = Instant::now() + budget;
    let mut last = String::from("no address resolved");
    loop {
        match addr.to_socket_addrs() {
            Ok(mut addrs) => {
                if let Some(sa) = addrs.next() {
                    let attempt = Duration::from_millis(250)
                        .min(deadline.saturating_duration_since(Instant::now()))
                        .max(Duration::from_millis(10));
                    match TcpStream::connect_timeout(&sa, attempt) {
                        Ok(s) => return Ok(s),
                        Err(e) => last = e.to_string(),
                    }
                }
            }
            Err(e) => {
                return Err(TcpError::BadConfig(format!("cannot resolve {addr}: {e}")));
            }
        }
        if Instant::now() >= deadline {
            return Err(TcpError::ConnectFailed {
                addr: addr.to_string(),
                detail: last,
            });
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Accepts one connection from a non-blocking listener before
/// `deadline`, returning the stream switched back to blocking mode.
fn accept_deadline(
    listener: &TcpListener,
    deadline: Instant,
    what: &'static str,
) -> Result<(TcpStream, SocketAddr), TcpError> {
    loop {
        match listener.accept() {
            Ok((stream, addr)) => {
                // Non-blocking status inheritance is platform-dependent:
                // force the accepted socket into blocking mode.
                stream.set_nonblocking(false)?;
                return Ok((stream, addr));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TcpError::Timeout { what });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn send_error_frame(stream: &mut TcpStream, code: u32, message: &str) {
    let payload = wire::encode(&(code, message.to_string()));
    let frame = encode_frame(0, KIND_ERROR, &payload);
    let _ = stream.write_all(&frame);
}

/// Rank 0: collect HELLOs, validate, answer with WELCOMEs. Returns the
/// per-rank links (slot 0 = `None`).
fn coordinator_handshake(cfg: &TcpConfig) -> Result<Vec<Option<Link>>, TcpError> {
    let listener = TcpListener::bind(&cfg.coordinator)
        .map_err(|e| TcpError::BadConfig(format!("cannot bind {}: {e}", cfg.coordinator)))?;
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + cfg.handshake_timeout;

    let mut hellos: Vec<Option<(TcpStream, String)>> = Vec::new();
    hellos.resize_with(cfg.ranks, || None);
    let mut present = 0usize;
    while present + 1 < cfg.ranks {
        let (mut stream, _) = accept_deadline(&listener, deadline, "rendezvous accept")?;
        stream.set_read_timeout(Some(cfg.handshake_timeout))?;
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let (kind, payload) = read_frame(&mut reader, cfg.session)?;
        if kind != KIND_HELLO {
            return Err(TcpError::UnexpectedFrame {
                expected: "HELLO",
                got: kind,
            });
        }
        let hello = decode_hello(&payload)?;
        if hello.session != cfg.session {
            let err = TcpError::WrongSession {
                expected: cfg.session,
                got: hello.session,
            };
            send_error_frame(&mut stream, CODE_WRONG_SESSION, &err.to_string());
            return Err(err);
        }
        if hello.rank == 0 || hello.rank >= cfg.ranks {
            let err = TcpError::RankOutOfRange {
                rank: hello.rank,
                ranks: cfg.ranks,
            };
            send_error_frame(&mut stream, CODE_RANK_OUT_OF_RANGE, &err.to_string());
            return Err(err);
        }
        if hello.ranks != cfg.ranks {
            let err = TcpError::RanksMismatch {
                expected: cfg.ranks,
                got: hello.ranks,
            };
            send_error_frame(&mut stream, CODE_RANKS_MISMATCH, &err.to_string());
            return Err(err);
        }
        if hellos[hello.rank].is_some() {
            let err = TcpError::DuplicateRank { rank: hello.rank };
            send_error_frame(&mut stream, CODE_DUPLICATE_RANK, &err.to_string());
            return Err(err);
        }
        hellos[hello.rank] = Some((stream, hello.listen));
        present += 1;
    }

    let mut peers = vec![String::new(); cfg.ranks];
    for (r, slot) in hellos.iter().enumerate().skip(1) {
        peers[r] = slot.as_ref().expect("all ranks present").1.clone();
    }
    let welcome = encode_frame(
        cfg.session,
        KIND_WELCOME,
        &encode_welcome(&Welcome {
            session: cfg.session,
            peers,
        }),
    );
    let mut links: Vec<Option<Link>> = Vec::new();
    links.resize_with(cfg.ranks, || None);
    for (r, slot) in hellos.into_iter().enumerate().skip(1) {
        let (mut stream, _) = slot.expect("all ranks present");
        stream.write_all(&welcome)?;
        links[r] = Some(Link::new(stream)?);
    }
    Ok(links)
}

/// Ranks 1..n: dial the coordinator, HELLO, await WELCOME, then build
/// the mesh (dial lower ranks, accept higher ranks).
fn peer_handshake(cfg: &TcpConfig) -> Result<Vec<Option<Link>>, TcpError> {
    // Bind the mesh listener *before* announcing its address.
    let listener = TcpListener::bind((cfg.listen_host.as_str(), 0u16))
        .map_err(|e| TcpError::BadConfig(format!("cannot bind {}: {e}", cfg.listen_host)))?;
    let listen = listener.local_addr()?.to_string();
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + cfg.handshake_timeout;

    let mut coord = dial_retry(&cfg.coordinator, cfg.connect_timeout)?;
    coord.set_nodelay(true)?;
    coord.set_read_timeout(Some(cfg.handshake_timeout))?;
    let hello = Hello {
        session: cfg.session,
        rank: cfg.rank,
        ranks: cfg.ranks,
        listen,
    };
    coord.write_all(&encode_frame(
        cfg.session,
        KIND_HELLO,
        &encode_hello(&hello),
    ))?;
    let mut coord_reader = BufReader::new(coord.try_clone()?);
    let welcome = match read_frame(&mut coord_reader, cfg.session)? {
        (KIND_WELCOME, payload) => decode_welcome(&payload)?,
        (KIND_ERROR, payload) => {
            let (code, message) = decode_error_frame(&payload)?;
            return Err(TcpError::Rejected { code, message });
        }
        (kind, _) => {
            return Err(TcpError::UnexpectedFrame {
                expected: "WELCOME",
                got: kind,
            });
        }
    };
    if welcome.session != cfg.session {
        return Err(TcpError::WrongSession {
            expected: cfg.session,
            got: welcome.session,
        });
    }
    if welcome.peers.len() != cfg.ranks {
        return Err(TcpError::RanksMismatch {
            expected: cfg.ranks,
            got: welcome.peers.len(),
        });
    }

    let mut links: Vec<Option<Link>> = Vec::new();
    links.resize_with(cfg.ranks, || None);
    // Dial every lower rank (but never rank 0 — that link already
    // exists: the HELLO connection).
    let mesh_payload = wire::encode(&(cfg.session, cfg.rank as u64));
    for (j, slot) in links.iter_mut().enumerate().take(cfg.rank).skip(1) {
        let mut stream = dial_retry(&welcome.peers[j], cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.write_all(&encode_frame(cfg.session, KIND_MESH, &mesh_payload))?;
        *slot = Some(Link::new(stream)?);
    }
    // Accept every higher rank, in whatever order they arrive.
    let mut expected = cfg.ranks - 1 - cfg.rank;
    while expected > 0 {
        let (stream, _) = accept_deadline(&listener, deadline, "mesh accept")?;
        stream.set_read_timeout(Some(cfg.handshake_timeout))?;
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let (kind, payload) = read_frame(&mut reader, cfg.session)?;
        if kind != KIND_MESH {
            return Err(TcpError::UnexpectedFrame {
                expected: "MESH",
                got: kind,
            });
        }
        let (session, from) = decode_mesh(&payload)?;
        if session != cfg.session {
            return Err(TcpError::WrongSession {
                expected: cfg.session,
                got: session,
            });
        }
        let from = usize::try_from(from).unwrap_or(usize::MAX);
        if from <= cfg.rank || from >= cfg.ranks {
            return Err(TcpError::RankOutOfRange {
                rank: from,
                ranks: cfg.ranks,
            });
        }
        if links[from].is_some() {
            return Err(TcpError::DuplicateRank { rank: from });
        }
        links[from] = Some(Link {
            writer: stream,
            reader: RefCell::new(reader),
        });
        expected -= 1;
    }
    links[0] = Some(Link {
        writer: coord,
        reader: RefCell::new(coord_reader),
    });
    Ok(links)
}

impl TcpComm {
    /// Joins (or, for rank 0, coordinates) a TCP cluster. Blocks until
    /// the full mesh is established or a typed error is known.
    pub fn connect(cfg: &TcpConfig) -> Result<TcpComm, TcpError> {
        if cfg.ranks == 0 {
            return Err(TcpError::BadConfig("ranks must be >= 1".to_string()));
        }
        if cfg.rank >= cfg.ranks {
            return Err(TcpError::BadConfig(format!(
                "rank {} outside world of {}",
                cfg.rank, cfg.ranks
            )));
        }
        let links = if cfg.ranks == 1 {
            Vec::new()
        } else if cfg.rank == 0 {
            coordinator_handshake(cfg)?
        } else {
            peer_handshake(cfg)?
        };
        // Switch every link from handshake deadlines to the steady-state
        // backstop.
        for link in links.iter().flatten() {
            link.writer.set_read_timeout(cfg.read_timeout)?;
            link.writer.set_write_timeout(cfg.read_timeout)?;
        }
        Ok(TcpComm {
            rank: cfg.rank,
            size: cfg.ranks,
            session: cfg.session,
            links,
            started: Instant::now(),
            stats: Cell::new(CommStats::default()),
        })
    }

    fn link(&self, peer: usize) -> &Link {
        self.links[peer]
            .as_ref()
            .expect("no link to self or out-of-range peer")
    }

    fn bump(&self, sent: u64, received: u64) {
        let mut s = self.stats.get();
        s.bytes_sent += sent;
        s.bytes_received += received;
        self.stats.set(s);
    }

    fn bump_collective(&self) {
        let mut s = self.stats.get();
        s.collectives += 1;
        self.stats.set(s);
    }

    /// Writes POISON to every peer except `skip` (best-effort).
    fn poison_peers(&self, skip: Option<usize>) {
        let frame = encode_frame(self.session, KIND_POISON, &[]);
        for (r, link) in self.links.iter().enumerate() {
            if Some(r) == skip {
                continue;
            }
            if let Some(l) = link {
                let _ = (&l.writer).write_all(&frame);
            }
        }
    }

    /// Link-level failure on the connection to `from`: cascade poison to
    /// everyone else (the failed peer may be SIGKILLed and unable to
    /// poison anyone itself), then unwind.
    fn fail_link(&self, from: usize) -> ! {
        self.poison_peers(Some(from));
        resume_unwind(Box::new(PeerAborted { from }))
    }

    /// Sends one DATA frame carrying `payload` to `dest`.
    fn send_bytes(&self, dest: usize, payload: &[u8]) {
        let frame = encode_frame(self.session, KIND_DATA, payload);
        if (&self.link(dest).writer).write_all(&frame).is_err() {
            self.fail_link(dest);
        }
        self.bump(payload.len() as u64, 0);
    }

    /// Receives one DATA frame from `src`. POISON unwinds (no cascade —
    /// the originator reached every peer directly); any link failure
    /// cascades then unwinds.
    fn recv_bytes(&self, src: usize) -> Vec<u8> {
        let link = self.link(src);
        let mut reader = link.reader.borrow_mut();
        match read_frame(&mut *reader, self.session) {
            Ok((KIND_DATA, payload)) => {
                drop(reader);
                self.bump(0, payload.len() as u64);
                payload
            }
            Ok((KIND_POISON, _)) => {
                drop(reader);
                resume_unwind(Box::new(PeerAborted { from: src }))
            }
            Ok(_) | Err(_) => {
                drop(reader);
                self.fail_link(src)
            }
        }
    }

    /// Decodes a received payload; corrupt data from an established peer
    /// is a link failure, not a recoverable error.
    fn decode_or_fail<T: Wire>(&self, src: usize, payload: &[u8]) -> T {
        match wire::decode(payload) {
            Ok(v) => v,
            Err(_) => self.fail_link(src),
        }
    }
}

impl Communicator for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn allgatherv<T: Clone + Send + Wire + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        self.bump_collective();
        if self.size == 1 {
            return vec![local];
        }
        // Star topology mirroring the thread cluster: gather to rank 0,
        // broadcast the assembled result.
        if self.rank == 0 {
            let mut all = Vec::with_capacity(self.size);
            all.push(local);
            for src in 1..self.size {
                let payload = self.recv_bytes(src);
                all.push(self.decode_or_fail::<Vec<T>>(src, &payload));
            }
            let encoded = wire::encode(&all);
            for dest in 1..self.size {
                self.send_bytes(dest, &encoded);
            }
            all
        } else {
            self.send_bytes(0, &wire::encode(&local));
            let payload = self.recv_bytes(0);
            self.decode_or_fail::<Vec<Vec<T>>>(0, &payload)
        }
    }

    fn alltoallv<T: Clone + Send + Wire + 'static>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(per_dest.len(), self.size, "one destination vector per rank");
        self.bump_collective();
        if self.size == 1 {
            return per_dest;
        }
        let mut own: Option<Vec<T>> = None;
        let mut outgoing: Vec<(usize, Vec<u8>)> = Vec::with_capacity(self.size - 1);
        for (dest, chunk) in per_dest.into_iter().enumerate() {
            if dest == self.rank {
                own = Some(chunk);
            } else {
                let payload = wire::encode(&chunk);
                self.bump(payload.len() as u64, 0);
                outgoing.push((dest, encode_frame(self.session, KIND_DATA, &payload)));
            }
        }
        // One writer thread drains all sends while this thread receives
        // in rank order; independent progress on both halves breaks the
        // send/receive cycle a naive sequential exchange would deadlock
        // on once payloads exceed the kernel socket buffers.
        let streams: Vec<(&TcpStream, Vec<u8>)> = outgoing
            .into_iter()
            .map(|(dest, frame)| (&self.link(dest).writer, frame))
            .collect();
        let received = std::thread::scope(|scope| {
            let writer = scope.spawn(move || {
                for (stream, frame) in &streams {
                    let mut w: &TcpStream = stream;
                    if w.write_all(frame).is_err() {
                        return false;
                    }
                }
                true
            });
            let mut received: Vec<Vec<T>> = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == self.rank {
                    received.push(own.take().expect("own chunk present"));
                } else {
                    let payload = self.recv_bytes(src);
                    received.push(self.decode_or_fail::<Vec<T>>(src, &payload));
                }
            }
            if !writer.join().unwrap_or(false) {
                // A write failed: some peer is gone. The reads above
                // happened to succeed, but the schedule is broken.
                self.poison_peers(None);
                resume_unwind(Box::new(PeerAborted { from: self.rank }));
            }
            received
        });
        received
    }

    fn gatherv<T: Clone + Send + Wire + 'static>(
        &self,
        root: usize,
        local: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        assert!(root < self.size, "gather root out of range");
        self.bump_collective();
        if self.size == 1 {
            return Some(vec![local]);
        }
        if self.rank == root {
            let mut all: Vec<Vec<T>> = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == root {
                    all.push(local.clone());
                } else {
                    let payload = self.recv_bytes(src);
                    all.push(self.decode_or_fail::<Vec<T>>(src, &payload));
                }
            }
            Some(all)
        } else {
            self.send_bytes(root, &wire::encode(&local));
            None
        }
    }

    fn broadcast<T: Clone + Send + Wire + 'static>(&self, root: usize, data: Option<T>) -> T {
        assert!(root < self.size, "broadcast root out of range");
        self.bump_collective();
        if self.rank == root {
            let value = data.expect("broadcast root must supply data");
            if self.size > 1 {
                let encoded = wire::encode(&value);
                for dest in 0..self.size {
                    if dest != root {
                        self.send_bytes(dest, &encoded);
                    }
                }
            }
            value
        } else {
            let payload = self.recv_bytes(root);
            self.decode_or_fail::<T>(root, &payload)
        }
    }

    fn barrier(&self) {
        // An empty allgather is a correct (if chatty) barrier; the
        // collective count is bumped inside allgatherv.
        let _ = self.allgatherv::<u8>(Vec::new());
    }

    fn virtual_time(&self) -> f64 {
        // On a real transport the "virtual" clock *is* wall time.
        self.started.elapsed().as_secs_f64()
    }

    fn stats(&self) -> CommStats {
        self.stats.get()
    }

    fn poison(&self) {
        self.poison_peers(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Reserves a localhost `host:port` by binding an ephemeral port and
    /// immediately releasing it.
    fn free_addr() -> String {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        l.local_addr().expect("local addr").to_string()
    }

    fn test_cfg(session: u64, rank: usize, ranks: usize, coordinator: &str) -> TcpConfig {
        let mut cfg = TcpConfig::new(session, rank, ranks, coordinator);
        cfg.handshake_timeout = Duration::from_secs(10);
        cfg.connect_timeout = Duration::from_secs(5);
        cfg.read_timeout = Some(Duration::from_secs(10));
        cfg
    }

    /// Runs `f` on `n` connected TCP ranks (threads in this process) and
    /// returns the per-rank results in rank order.
    fn tcp_cluster<R: Send>(n: usize, f: impl Fn(&TcpComm) -> R + Sync) -> Vec<R> {
        let coordinator = free_addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let coordinator = coordinator.clone();
                    let f = &f;
                    scope.spawn(move || {
                        let cfg = test_cfg(0xDEAD_BEEF, rank, n, &coordinator);
                        let comm = TcpComm::connect(&cfg).expect("connect");
                        f(&comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank"))
                .collect()
        })
    }

    #[test]
    fn frame_roundtrip_and_corruption() {
        let frame = encode_frame(7, KIND_DATA, b"hello frames");
        let (kind, payload) = decode_frame(7, &frame).expect("roundtrip");
        assert_eq!(kind, KIND_DATA);
        assert_eq!(payload, b"hello frames");
        // Wrong session seed → checksum mismatch, not garbage.
        assert_eq!(decode_frame(8, &frame), Err(TcpError::ChecksumMismatch));
        // Flip a payload bit → checksum mismatch.
        let mut bad = frame.clone();
        bad[3] ^= 1;
        assert_eq!(decode_frame(7, &bad), Err(TcpError::ChecksumMismatch));
        // Truncations are typed.
        for cut in 0..frame.len() {
            assert!(decode_frame(7, &frame[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes rejected.
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode_frame(7, &long),
            Err(TcpError::BadFrame(DecodeError::TrailingBytes { .. }))
        ));
        // Unknown kind rejected.
        assert!(matches!(
            decode_frame(7, &[99, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(TcpError::UnexpectedFrame { .. })
        ));
        // Hostile declared length rejected before allocation.
        let mut hostile = vec![KIND_HELLO];
        write_u64(&mut hostile, u64::MAX / 2);
        assert!(matches!(
            decode_frame(7, &hostile),
            Err(TcpError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn handshake_payloads_roundtrip() {
        let h = Hello {
            session: 42,
            rank: 3,
            ranks: 8,
            listen: "127.0.0.1:5555".to_string(),
        };
        assert_eq!(decode_hello(&encode_hello(&h)).expect("hello"), h);
        let w = Welcome {
            session: 42,
            peers: vec![String::new(), "127.0.0.1:1".into(), "127.0.0.1:2".into()],
        };
        assert_eq!(decode_welcome(&encode_welcome(&w)).expect("welcome"), w);
    }

    #[test]
    fn single_rank_needs_no_sockets() {
        let cfg = test_cfg(1, 0, 1, "127.0.0.1:1"); // never dialed
        let comm = TcpComm::connect(&cfg).expect("trivial cluster");
        assert_eq!(comm.allgatherv(vec![5u64]), vec![vec![5u64]]);
        assert_eq!(comm.broadcast(0, Some(9u32)), 9);
        assert_eq!(comm.stats().collectives, 2);
    }

    #[test]
    fn collectives_match_expected_topology() {
        let results = tcp_cluster(3, |comm| {
            let r = comm.rank() as u64;
            let gathered = comm.allgatherv(vec![r, r * 10]);
            let exchanged =
                comm.alltoallv(vec![vec![r * 100], vec![r * 100 + 1], vec![r * 100 + 2]]);
            let rooted = comm.gatherv(1, vec![r]);
            let bcast = comm.broadcast(2, if comm.rank() == 2 { Some(77u64) } else { None });
            comm.barrier();
            (gathered, exchanged, rooted, bcast, comm.stats())
        });
        for (rank, (gathered, exchanged, rooted, bcast, stats)) in results.iter().enumerate() {
            assert_eq!(
                *gathered,
                vec![vec![0, 0], vec![1, 10], vec![2, 20]],
                "rank {rank} allgatherv"
            );
            let r = rank as u64;
            assert_eq!(
                *exchanged,
                vec![vec![r], vec![100 + r], vec![200 + r]],
                "rank {rank} alltoallv"
            );
            if rank == 1 {
                assert_eq!(*rooted, Some(vec![vec![0], vec![1], vec![2]]));
            } else {
                assert_eq!(*rooted, None);
            }
            assert_eq!(*bcast, 77);
            assert_eq!(stats.collectives, 5, "rank {rank}");
            assert!(stats.bytes_sent > 0, "rank {rank} sent nothing");
        }
    }

    #[test]
    fn wrong_session_is_rejected_on_both_ends() {
        let coordinator = free_addr();
        let (coord_res, peer_res) = std::thread::scope(|scope| {
            let c = coordinator.clone();
            let coord = scope.spawn(move || TcpComm::connect(&test_cfg(1, 0, 2, &c)));
            let c = coordinator.clone();
            let peer = scope.spawn(move || TcpComm::connect(&test_cfg(2, 1, 2, &c)));
            (coord.join().expect("coord"), peer.join().expect("peer"))
        });
        assert_eq!(
            coord_res
                .err()
                .map(|e| matches!(e, TcpError::WrongSession { .. })),
            Some(true)
        );
        assert!(matches!(
            peer_res.err(),
            Some(TcpError::Rejected {
                code: CODE_WRONG_SESSION,
                ..
            })
        ));
    }

    #[test]
    fn duplicate_rank_is_rejected() {
        let coordinator = free_addr();
        let (coord_res, dup_errs) = std::thread::scope(|scope| {
            let c = coordinator.clone();
            let coord = scope.spawn(move || TcpComm::connect(&test_cfg(5, 0, 3, &c)));
            let dups: Vec<_> = (0..2)
                .map(|_| {
                    let c = coordinator.clone();
                    scope.spawn(move || {
                        let mut cfg = test_cfg(5, 1, 3, &c);
                        // Keep the losers from waiting out the full
                        // handshake window once the coordinator dies.
                        cfg.handshake_timeout = Duration::from_secs(5);
                        TcpComm::connect(&cfg)
                    })
                })
                .collect();
            (
                coord.join().expect("coord"),
                dups.into_iter()
                    .map(|h| h.join().expect("dup"))
                    .collect::<Vec<_>>(),
            )
        });
        assert!(matches!(
            coord_res.err(),
            Some(TcpError::DuplicateRank { rank: 1 })
        ));
        // One of the two duplicates is told explicitly; the other sees
        // its connection die (coordinator exits) — both are typed errors,
        // neither hangs.
        assert!(dup_errs.iter().all(|r| r.is_err()));
        assert!(dup_errs.iter().any(|r| matches!(
            r.as_ref().err(),
            Some(TcpError::Rejected {
                code: CODE_DUPLICATE_RANK,
                ..
            })
        )));
    }

    #[test]
    fn dead_coordinator_yields_connect_failed() {
        let mut cfg = test_cfg(9, 1, 2, &free_addr());
        cfg.connect_timeout = Duration::from_millis(300);
        let started = Instant::now();
        let err = TcpComm::connect(&cfg)
            .map(|_| ())
            .expect_err("nobody listening");
        assert!(matches!(err, TcpError::ConnectFailed { .. }), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retry unbounded"
        );
    }

    #[test]
    fn coordinator_times_out_without_peers() {
        let mut cfg = test_cfg(9, 0, 2, &free_addr());
        cfg.handshake_timeout = Duration::from_millis(300);
        let err = TcpComm::connect(&cfg)
            .map(|_| ())
            .expect_err("no peers ever arrive");
        assert!(matches!(err, TcpError::Timeout { .. }), "{err}");
    }

    #[test]
    fn poison_unwinds_blocked_peer() {
        let results = tcp_cluster(2, |comm| {
            if comm.rank() == 1 {
                comm.poison();
                return true; // abandoned the schedule
            }
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                comm.allgatherv(vec![1u64]);
            }));
            match unwound {
                Ok(_) => false,
                Err(payload) => payload.downcast_ref::<PeerAborted>().is_some(),
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn dropped_peer_cascades_to_survivors() {
        // Rank 2 vanishes without poisoning (socket close = what the OS
        // does on SIGKILL). Rank 1 hits EOF and must cascade so rank 0
        // (blocked on rank 1's contribution, not rank 2's) unwinds too.
        let results = tcp_cluster(3, |comm| {
            if comm.rank() == 2 {
                return true; // drop the comm: closes every socket
            }
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                // Rank order makes rank 0 read rank 1 first while rank 1
                // is stuck on the dead rank 2.
                if comm.rank() == 1 {
                    let _ = comm.recv_bytes(2);
                }
                comm.allgatherv(vec![comm.rank() as u64]);
            }));
            match unwound {
                Ok(_) => false,
                Err(payload) => payload.downcast_ref::<PeerAborted>().is_some(),
            }
        });
        assert_eq!(results, vec![true, true, true]);
    }

    #[test]
    fn wall_clock_advances() {
        let cfg = test_cfg(1, 0, 1, "127.0.0.1:1");
        let comm = TcpComm::connect(&cfg).expect("trivial");
        let t0 = comm.virtual_time();
        std::thread::sleep(Duration::from_millis(10));
        assert!(comm.virtual_time() > t0);
    }
}

//! Adjusted Rand index.

use crate::contingency::ContingencyTable;

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand index between two partitions.
///
/// Ranges in `(-1, 1]`; 1 means identical partitions (up to relabeling), 0 is
/// the expected score of a random partition pair with the same marginals.
/// Like NMI, this is chance-corrected, making it a useful cross-check on the
/// NMI numbers reported for Tables VII/VIII.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    if t.n < 2 {
        return 1.0;
    }
    let sum_ij: f64 = t.counts.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = t.row_sums.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = t.col_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(t.n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are all-singletons or all-one-cluster: identical
        // structure, ARI defined as 1.
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_scores_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![5, 5, 2, 2];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_partitions_score_at_or_below_chance() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        // Exact value for this configuration is -0.5 (anti-correlated).
        let v = adjusted_rand_index(&a, &b);
        assert!((v - (-0.5)).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn degenerate_single_cluster_pair() {
        let a = vec![0, 0, 0];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn all_singletons_pair() {
        let a = vec![0, 1, 2, 3];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn ari_can_go_negative() {
        // Anti-correlated partitions can dip below 0 (worse than chance).
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![0, 1, 1, 2, 2, 0];
        assert!(adjusted_rand_index(&a, &b) < 0.1);
    }

    #[test]
    fn symmetry() {
        let a = vec![0, 0, 1, 2, 2, 1];
        let b = vec![1, 0, 1, 2, 0, 1];
        let d = adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a);
        assert!(d.abs() < 1e-12);
    }
}

//! Pairwise precision / recall / F1 — the Graph Challenge's primary
//! accuracy metrics (Kao et al. HPEC'17, the paper's \[9\]).
//!
//! Every unordered vertex pair is classified by whether the two vertices
//! share a block in the candidate partition and in the truth:
//! *precision* = P(together in truth | together in candidate),
//! *recall* = P(together in candidate | together in truth). Computed in
//! O(contingency-table) via pair-counting sums, never enumerating pairs.

use crate::contingency::ContingencyTable;

/// Pairwise scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairwiseScores {
    /// Of the pairs the candidate groups together, the fraction the truth
    /// also groups together.
    pub precision: f64,
    /// Of the pairs the truth groups together, the fraction the candidate
    /// also groups together.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Computes pairwise precision/recall/F1 of `candidate` against `truth`.
///
/// Degenerate conventions: when the candidate puts no pair together,
/// precision is 1.0 if the truth also has no pairs, else 0.0 (and
/// symmetrically for recall).
pub fn pairwise_scores(candidate: &[u32], truth: &[u32]) -> PairwiseScores {
    let t = ContingencyTable::new(truth, candidate);
    let together_both: f64 = t.counts.values().map(|&c| choose2(c)).sum();
    let together_truth: f64 = t.row_sums.iter().map(|&c| choose2(c)).sum();
    let together_cand: f64 = t.col_sums.iter().map(|&c| choose2(c)).sum();
    let ratio = |num: f64, den: f64| {
        if den == 0.0 {
            if num == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            num / den
        }
    };
    let precision = ratio(together_both, together_cand);
    let recall = ratio(together_both, together_truth);
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let a = vec![0, 0, 1, 1, 2];
        let s = pairwise_scores(&a, &a);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn relabeling_is_perfect() {
        let a = vec![0, 0, 1, 1];
        let b = vec![9, 9, 3, 3];
        let s = pairwise_scores(&a, &b);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn oversegmentation_keeps_precision_loses_recall() {
        let truth = vec![0, 0, 0, 0];
        let cand = vec![0, 0, 1, 1];
        let s = pairwise_scores(&cand, &truth);
        // Every candidate pair is also a truth pair...
        assert_eq!(s.precision, 1.0);
        // ...but 4 of 6 truth pairs were split: recall = 2/6.
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn undersegmentation_keeps_recall_loses_precision() {
        let truth = vec![0, 0, 1, 1];
        let cand = vec![0, 0, 0, 0];
        let s = pairwise_scores(&cand, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_vs_all_singletons() {
        let a = vec![0, 1, 2, 3];
        let s = pairwise_scores(&a, &a);
        // No pairs anywhere: convention 1.0 across the board.
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn singletons_vs_one_block() {
        let cand = vec![0, 1, 2, 3];
        let truth = vec![0, 0, 0, 0];
        let s = pairwise_scores(&cand, &truth);
        assert_eq!(s.precision, 1.0); // vacuous: no candidate pairs
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let cand = vec![0, 0, 1, 1, 1, 1];
        let s = pairwise_scores(&cand, &truth);
        let expect = 2.0 * s.precision * s.recall / (s.precision + s.recall);
        assert!((s.f1 - expect).abs() < 1e-12);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }
}

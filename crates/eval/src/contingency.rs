//! Contingency tables between two labelings.

use std::collections::HashMap;

/// A sparse contingency table between two partitions of the same item set.
///
/// Rows index distinct labels of partition `a`, columns distinct labels of
/// partition `b`; `counts[(i, j)]` is the number of items with label pair
/// `(a_i, b_j)`. Marginals are precomputed.
#[derive(Clone, Debug)]
pub struct ContingencyTable {
    /// Sparse joint counts keyed by (row index, col index).
    pub counts: HashMap<(usize, usize), u64>,
    /// Row marginals (items per `a`-label).
    pub row_sums: Vec<u64>,
    /// Column marginals (items per `b`-label).
    pub col_sums: Vec<u64>,
    /// Total number of items.
    pub n: u64,
}

impl ContingencyTable {
    /// Builds the table from two equal-length label vectors. Labels are
    /// compacted internally, so they may be arbitrary `u32` values.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "partitions must label the same items");
        let mut a_ids: HashMap<u32, usize> = HashMap::new();
        let mut b_ids: HashMap<u32, usize> = HashMap::new();
        let mut counts: HashMap<(usize, usize), u64> = HashMap::new();
        for (&la, &lb) in a.iter().zip(b.iter()) {
            let next_a = a_ids.len();
            let ia = *a_ids.entry(la).or_insert(next_a);
            let next_b = b_ids.len();
            let ib = *b_ids.entry(lb).or_insert(next_b);
            *counts.entry((ia, ib)).or_insert(0) += 1;
        }
        let mut row_sums = vec![0u64; a_ids.len()];
        let mut col_sums = vec![0u64; b_ids.len()];
        for (&(i, j), &c) in &counts {
            row_sums[i] += c;
            col_sums[j] += c;
        }
        ContingencyTable {
            counts,
            row_sums,
            col_sums,
            n: a.len() as u64,
        }
    }

    /// Number of distinct labels in partition `a`.
    pub fn num_rows(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of distinct labels in partition `b`.
    pub fn num_cols(&self) -> usize {
        self.col_sums.len()
    }

    /// Shannon entropy (nats) of the row marginal distribution.
    pub fn row_entropy(&self) -> f64 {
        marginal_entropy(&self.row_sums, self.n)
    }

    /// Shannon entropy (nats) of the column marginal distribution.
    pub fn col_entropy(&self) -> f64 {
        marginal_entropy(&self.col_sums, self.n)
    }

    /// Mutual information (nats) between the two labelings.
    pub fn mutual_information(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut mi = 0.0;
        for (&(i, j), &c) in &self.counts {
            let p = c as f64 / n;
            let pa = self.row_sums[i] as f64 / n;
            let pb = self.col_sums[j] as f64 / n;
            mi += p * (p / (pa * pb)).ln();
        }
        // Numerical noise can push MI a hair below zero.
        mi.max(0.0)
    }
}

fn marginal_entropy(sums: &[u64], n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    -sums
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_have_diagonal_table() {
        let a = vec![0, 0, 1, 1, 2];
        let t = ContingencyTable::new(&a, &a);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.counts.len(), 3); // diagonal only
        assert!((t.mutual_information() - t.row_entropy()).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_zero_mi() {
        // Perfectly independent: every (row, col) combination equally likely.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let t = ContingencyTable::new(&a, &b);
        assert!(t.mutual_information().abs() < 1e-12);
    }

    #[test]
    fn non_contiguous_labels_are_compacted() {
        let a = vec![7, 7, 900, 900];
        let b = vec![3, 3, 5, 5];
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 2);
        assert!((t.mutual_information() - (2f64).ln().min(t.row_entropy())).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_k_labels() {
        let a: Vec<u32> = (0..8).map(|i| i / 2).collect(); // 4 labels × 2 items
        let t = ContingencyTable::new(&a, &a);
        assert!((t.row_entropy() - (4f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let t = ContingencyTable::new(&[], &[]);
        assert_eq!(t.n, 0);
        assert_eq!(t.mutual_information(), 0.0);
        assert_eq!(t.row_entropy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        ContingencyTable::new(&[0, 1], &[0]);
    }
}

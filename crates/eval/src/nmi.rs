//! Normalized mutual information.

use crate::contingency::ContingencyTable;

/// Normalization convention for NMI. The paper does not state which variant
/// the authors used; `Arithmetic` (`2·I/(H_a+H_b)`) is the scikit-learn
/// default and the Graph Challenge convention, so it is our default too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NmiNormalization {
    /// `2 I / (H_a + H_b)` — default.
    #[default]
    Arithmetic,
    /// `I / max(H_a, H_b)` — most conservative.
    Max,
    /// `I / sqrt(H_a · H_b)` — geometric.
    Sqrt,
    /// `I / min(H_a, H_b)` — most permissive.
    Min,
}

/// Normalized mutual information between two partitions with the default
/// (arithmetic) normalization. Returns a value in `[0, 1]`.
///
/// Degenerate conventions, matching scikit-learn: if **both** partitions are
/// single-cluster (zero entropy) they are identical up to relabeling → 1.0;
/// if exactly one has zero entropy, NMI is 0.0.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    nmi_variant(a, b, NmiNormalization::Arithmetic)
}

/// NMI with an explicit normalization variant.
pub fn nmi_variant(a: &[u32], b: &[u32], norm: NmiNormalization) -> f64 {
    let t = ContingencyTable::new(a, b);
    let (ha, hb) = (t.row_entropy(), t.col_entropy());
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    let i = t.mutual_information();
    let denom = match norm {
        NmiNormalization::Arithmetic => 0.5 * (ha + hb),
        NmiNormalization::Max => ha.max(hb),
        NmiNormalization::Sqrt => (ha * hb).sqrt(),
        NmiNormalization::Min => ha.min(hb),
    };
    (i / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        for norm in [
            NmiNormalization::Arithmetic,
            NmiNormalization::Max,
            NmiNormalization::Sqrt,
            NmiNormalization::Min,
        ] {
            assert!((nmi_variant(&a, &a, norm) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn relabeled_partitions_score_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![9, 9, 4, 4];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_zero() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        assert!(nmi(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_conventions() {
        let single = vec![0, 0, 0, 0];
        let multi = vec![0, 1, 2, 3];
        assert_eq!(nmi(&single, &single), 1.0);
        assert_eq!(nmi(&single, &multi), 0.0);
        assert_eq!(nmi(&multi, &single), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = vec![0, 0, 1, 1, 2, 0, 1];
        let b = vec![1, 1, 1, 0, 0, 2, 2];
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_in_open_interval() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1]; // one item flipped
        let v = nmi(&a, &b);
        assert!(v > 0.0 && v < 1.0, "got {v}");
    }

    #[test]
    fn normalization_ordering() {
        // min-normalized >= sqrt >= arithmetic... not strictly; but
        // min >= arithmetic >= max always holds (denominators reversed).
        let a = vec![0, 0, 0, 0, 1, 1, 2, 2];
        let b = vec![0, 0, 1, 1, 1, 1, 2, 2];
        let vmin = nmi_variant(&a, &b, NmiNormalization::Min);
        let varith = nmi_variant(&a, &b, NmiNormalization::Arithmetic);
        let vmax = nmi_variant(&a, &b, NmiNormalization::Max);
        assert!(vmin >= varith && varith >= vmax);
    }

    #[test]
    fn known_value_half_split() {
        // a = two clusters of 2; b = one cluster of 4 split as {0,1},{2,3}
        // but a groups {0,2},{1,3}: fully independent -> 0.
        let a = vec![0, 1, 0, 1];
        let b = vec![0, 0, 1, 1];
        assert!(nmi(&a, &b).abs() < 1e-12);
    }
}

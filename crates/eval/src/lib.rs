//! # sbp-eval — partition-quality metrics
//!
//! Implements the accuracy metrics used in the paper's evaluation:
//!
//! * [`mod@nmi`] — normalized mutual information between a candidate partition
//!   and the ground truth (Tables VI–VIII, Figs. 2 and 4);
//! * [`dlnorm`] — normalized description length `DL / DL_null`, the
//!   ground-truth-free metric used for the real-world graphs (Fig. 6);
//! * [`ari`] — adjusted Rand index, provided as a sanity cross-check
//!   (not reported in the paper but standard in the community-detection
//!   literature);
//! * [`pairwise`] — pairwise precision/recall/F1, the Graph Challenge's
//!   primary metrics (the paper's \[9\]).
//!
//! All metrics accept partitions as `&[u32]` label vectors; labels need not
//! be contiguous.

pub mod ari;
pub mod contingency;
pub mod dlnorm;
pub mod nmi;
pub mod pairwise;

pub use ari::adjusted_rand_index;
pub use contingency::ContingencyTable;
pub use dlnorm::{dl_null, normalized_dl};
pub use nmi::{nmi, nmi_variant, NmiNormalization};
pub use pairwise::{pairwise_scores, PairwiseScores};

//! Normalized description length (paper §V-E).
//!
//! Real-world graphs have no ground-truth communities, so the paper scores
//! them with `DL_norm = DL / DL_null`, where `DL_null` is the description
//! length of the *null blockmodel* that assigns every vertex to a single
//! community. Lower is better; a good partition compresses the graph far
//! below the null model.

/// `h(x) = (1+x)·ln(1+x) − x·ln(x)` — the binary-entropy-like term of the
/// description-length model complexity (paper Eq. 2).
pub fn h(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    (1.0 + x) * (1.0 + x).ln() - x * x.ln()
}

/// Description length of the null (single-community) blockmodel of a graph
/// with `num_vertices` vertices and total edge weight `num_edges`.
///
/// With `C = 1`: the model term is `E·h(1/E) + V·ln(1) = E·h(1/E)` and the
/// likelihood term is `−L = −E·ln(E/(E·E)) = E·ln(E)` (the single blockmodel
/// cell holds all `E` edges, and the community out/in degrees are both `E`).
pub fn dl_null(num_vertices: usize, num_edges: i64) -> f64 {
    let _ = num_vertices; // V·ln(1) = 0; kept in the signature for clarity.
    if num_edges <= 0 {
        return 0.0;
    }
    let e = num_edges as f64;
    e * h(1.0 / e) + e * e.ln()
}

/// `DL_norm = DL / DL_null` (paper §V-E). Lower is better.
///
/// Returns `f64::INFINITY` when the null DL is zero (edgeless graph) and the
/// candidate DL is positive.
pub fn normalized_dl(dl: f64, num_vertices: usize, num_edges: i64) -> f64 {
    let null = dl_null(num_vertices, num_edges);
    if null == 0.0 {
        if dl == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        dl / null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_known_values() {
        assert_eq!(h(0.0), 0.0);
        // h(1) = 2 ln 2 - 0 = 2 ln 2
        assert!((h(1.0) - 2.0 * (2f64).ln()).abs() < 1e-12);
        // h is increasing for x > 0
        assert!(h(2.0) > h(1.0));
    }

    #[test]
    fn h_negative_clamped() {
        assert_eq!(h(-1.0), 0.0);
    }

    #[test]
    fn dl_null_grows_with_edges() {
        let a = dl_null(100, 100);
        let b = dl_null(100, 1000);
        assert!(b > a && a > 0.0);
    }

    #[test]
    fn dl_null_edge_cases() {
        assert_eq!(dl_null(10, 0), 0.0);
        assert_eq!(dl_null(0, 0), 0.0);
    }

    #[test]
    fn normalized_dl_of_null_model_is_one() {
        let null = dl_null(50, 200);
        assert!((normalized_dl(null, 50, 200) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn better_partition_scores_below_one() {
        let null = dl_null(50, 200);
        assert!(normalized_dl(0.7 * null, 50, 200) < 1.0);
    }

    #[test]
    fn edgeless_graph_conventions() {
        assert_eq!(normalized_dl(0.0, 10, 0), 1.0);
        assert_eq!(normalized_dl(5.0, 10, 0), f64::INFINITY);
    }

    #[test]
    fn dl_null_matches_manual_formula() {
        let e = 64f64;
        let manual =
            e * ((1.0 + 1.0 / e) * (1.0 + 1.0 / e).ln() - (1.0 / e) * (1.0 / e).ln()) + e * e.ln();
        assert!((dl_null(10, 64) - manual).abs() < 1e-9);
    }
}

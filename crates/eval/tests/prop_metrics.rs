//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use sbp_eval::{adjusted_rand_index, nmi, nmi_variant, NmiNormalization};

fn arb_partition_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (2usize..60).prop_flat_map(|n| {
        let labels_a = proptest::collection::vec(0u32..6, n);
        let labels_b = proptest::collection::vec(0u32..6, n);
        (labels_a, labels_b)
    })
}

proptest! {
    #[test]
    fn nmi_in_unit_interval((a, b) in arb_partition_pair()) {
        let v = nmi(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn nmi_symmetric((a, b) in arb_partition_pair()) {
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-10);
    }

    #[test]
    fn nmi_self_is_one(a in proptest::collection::vec(0u32..6, 2..60)) {
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nmi_invariant_under_relabeling(a in proptest::collection::vec(0u32..5, 2..60), offset in 1u32..100) {
        let b: Vec<u32> = a.iter().map(|&x| (x + offset) * 7).collect();
        prop_assert!((nmi(&a, &b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nmi_normalization_ordering((a, b) in arb_partition_pair()) {
        let vmin = nmi_variant(&a, &b, NmiNormalization::Min);
        let varith = nmi_variant(&a, &b, NmiNormalization::Arithmetic);
        let vsqrt = nmi_variant(&a, &b, NmiNormalization::Sqrt);
        let vmax = nmi_variant(&a, &b, NmiNormalization::Max);
        // min >= {sqrt, arithmetic} >= max (AM-GM gives sqrt >= arithmetic
        // is false in general; but both sit between min and max).
        prop_assert!(vmin + 1e-12 >= varith);
        prop_assert!(vmin + 1e-12 >= vsqrt);
        prop_assert!(varith + 1e-12 >= vmax);
        prop_assert!(vsqrt + 1e-12 >= vmax);
    }

    #[test]
    fn ari_symmetric((a, b) in arb_partition_pair()) {
        let d = adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a);
        prop_assert!(d.abs() < 1e-10);
    }

    #[test]
    fn ari_self_is_one(a in proptest::collection::vec(0u32..6, 2..60)) {
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ari_at_most_one((a, b) in arb_partition_pair()) {
        prop_assert!(adjusted_rand_index(&a, &b) <= 1.0 + 1e-12);
    }
}

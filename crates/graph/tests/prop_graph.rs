//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use sbp_graph::io::{parse_edge_list, parse_matrix_market, write_edge_list, write_matrix_market};
use sbp_graph::{induced_subgraph, island_fraction_round_robin, round_robin_parts, Graph};

/// Strategy producing a vertex count and an arbitrary (possibly duplicated)
/// weighted edge list over it.
fn arb_graph_input() -> impl Strategy<Value = (usize, Vec<(u32, u32, i64)>)> {
    (1usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1i64..5);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #[test]
    fn construction_preserves_total_weight((n, edges) in arb_graph_input()) {
        let total: i64 = edges.iter().map(|&(_, _, w)| w).sum();
        let g = Graph::from_edges(n, edges);
        prop_assert_eq!(g.total_edge_weight(), total);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn degrees_sum_to_total((n, edges) in arb_graph_input()) {
        let g = Graph::from_edges(n, edges);
        let out_sum: i64 = (0..n as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: i64 = (0..n as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.total_edge_weight());
        prop_assert_eq!(in_sum, g.total_edge_weight());
    }

    #[test]
    fn edge_list_roundtrip((n, edges) in arb_graph_input()) {
        let g = Graph::from_edges(n, edges);
        let g2 = parse_edge_list(&write_edge_list(&g), g.num_vertices()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn matrix_market_roundtrip((n, edges) in arb_graph_input()) {
        let g = Graph::from_edges(n, edges);
        if g.num_arcs() > 0 {
            let g2 = parse_matrix_market(&write_matrix_market(&g)).unwrap();
            prop_assert_eq!(g, g2);
        }
    }

    #[test]
    fn round_robin_parts_partition_vertices(n in 1usize..60, k in 1usize..10) {
        let parts = round_robin_parts(n, k);
        let mut all: Vec<u32> = parts.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn island_census_matches_materialization((n, edges) in arb_graph_input(), k in 1usize..6) {
        let g = Graph::from_edges(n, edges);
        let rep = island_fraction_round_robin(&g, k);
        let mut expected = 0usize;
        for part in round_robin_parts(n, k) {
            let sub = induced_subgraph(&g, &part);
            expected += (0..sub.graph.num_vertices() as u32)
                .filter(|&v| sub.graph.degree(v) == 0)
                .count();
        }
        prop_assert_eq!(rep.islands, expected);
    }

    #[test]
    fn subgraph_degree_never_exceeds_parent((n, edges) in arb_graph_input(), k in 1usize..4) {
        let g = Graph::from_edges(n, edges);
        for part in round_robin_parts(n, k) {
            let sub = induced_subgraph(&g, &part);
            for local in 0..sub.graph.num_vertices() as u32 {
                let global = sub.to_global(local);
                prop_assert!(sub.graph.degree(local) <= g.degree(global));
            }
        }
    }
}
